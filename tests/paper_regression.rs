//! Paper-number regression bands: every headline quantity of the paper
//! must reproduce within a documented tolerance at reduced scale (the
//! full-scale numbers are recorded in EXPERIMENTS.md).
//!
//! Tolerances are deliberately loose enough to survive generator
//! re-seeding but tight enough that a calibration regression (wrong
//! coefficient, broken optimizer) trips them.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_bench::run_paper_traces;
use h2p_core::prototype;
use h2p_tco::TcoAnalysis;
use h2p_teg::{TegDevice, TegModule};
use h2p_units::{DegC, Watts};

/// Runs once at 10 % of paper scale (131/100/100 servers).
fn runs() -> Vec<h2p_bench::TraceRunSummary> {
    run_paper_traces(0.1)
}

#[test]
fn fig14_policy_averages_in_band() {
    let runs = runs();
    let mean = |policy: &str| {
        let vals: Vec<f64> = runs
            .iter()
            .filter(|r| r.policy == policy)
            .map(|r| r.result.average_teg_power().unwrap().value())
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let orig = mean("TEG_Original");
    let lb = mean("TEG_LoadBalance");
    // Paper: 3.694 W and 4.177 W. Accept ±12 %.
    assert!((3.25..=4.14).contains(&orig), "original mean {orig}");
    assert!((3.68..=4.68).contains(&lb), "loadbalance mean {lb}");
    // Paper improvement: 13.08 %. Accept 8-22 %.
    let improvement = lb / orig - 1.0;
    assert!(
        (0.08..=0.22).contains(&improvement),
        "improvement {improvement}"
    );
}

#[test]
fn fig14_per_trace_orderings_match_paper() {
    let runs = runs();
    let get = |kind: &str, policy: &str| {
        runs.iter()
            .find(|r| r.kind.name() == kind && r.policy == policy)
            .expect("all six runs present")
            .result
            .average_teg_power()
            .unwrap()
            .value()
    };
    // LoadBalance ordering: drastic > irregular > common (paper
    // 4.349 > 4.203 > 3.979).
    assert!(get("drastic", "TEG_LoadBalance") > get("irregular", "TEG_LoadBalance"));
    assert!(get("irregular", "TEG_LoadBalance") > get("common", "TEG_LoadBalance"));
    // Common is the weakest class under both policies (paper: 3.586 and
    // 3.979 are the per-policy minima).
    for policy in ["TEG_Original", "TEG_LoadBalance"] {
        assert!(get("common", policy) <= get("drastic", policy));
        assert!(get("common", policy) <= get("irregular", policy));
    }
    // Load balancing wins on every trace.
    for kind in ["drastic", "irregular", "common"] {
        assert!(get(kind, "TEG_LoadBalance") > get(kind, "TEG_Original"));
    }
}

#[test]
fn fig15_pre_band() {
    let runs = runs();
    for r in &runs {
        let pre = r.result.pre();
        // Paper band 11.9-16.2 %; our calibration sits at 8-15 %
        // (documented divergence: the paper's Fig. 14 and Fig. 15 are
        // mutually over-constrained — see EXPERIMENTS.md).
        assert!(
            (0.07..=0.20).contains(&pre),
            "{}/{}: PRE {pre}",
            r.kind.name(),
            r.policy
        );
    }
    // Balancing improves PRE on every trace (the Fig. 15 ordering).
    for kind in ["drastic", "irregular", "common"] {
        let get = |policy: &str| {
            runs.iter()
                .find(|r| r.kind.name() == kind && r.policy == policy)
                .expect("present")
                .result
                .pre()
        };
        assert!(get("TEG_LoadBalance") > get("TEG_Original"), "{kind}");
    }
}

#[test]
fn no_thermal_violations_at_scale() {
    for r in runs() {
        assert_eq!(
            r.result.total_violations(),
            0,
            "{}/{}",
            r.kind.name(),
            r.policy
        );
    }
}

#[test]
fn tco_headlines_from_simulated_averages() {
    let runs = runs();
    let tco = TcoAnalysis::paper_default();
    let lb_mean: f64 = {
        let vals: Vec<f64> = runs
            .iter()
            .filter(|r| r.policy == "TEG_LoadBalance")
            .map(|r| r.result.average_teg_power().unwrap().value())
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let reduction = tco.reduction(Watts::new(lb_mean));
    // Paper: up to 0.57 %. Accept 0.4-0.8 %.
    assert!(
        (0.004..=0.008).contains(&reduction),
        "reduction {reduction}"
    );
    let be = tco.break_even(Watts::new(lb_mean)).to_days();
    // Paper: 920 days. Accept 700-1100.
    assert!((700.0..=1100.0).contains(&be), "break-even {be}");
}

#[test]
fn eq3_per_teg_voltage_slope_and_intercept_are_exact() {
    // Eq. 3: v = 0.0448·ΔT − 0.0051. The slope is the paper's headline
    // per-device coefficient; lock it exactly (no tolerance band — any
    // recalibration of the device model must update this test).
    let device = TegDevice::sp1848_27145();
    for dt in [2.0, 10.0, 25.0, 40.0] {
        let v0 = device.open_circuit_voltage(DegC::new(dt)).value();
        let v1 = device.open_circuit_voltage(DegC::new(dt + 1.0)).value();
        assert!((v1 - v0 - 0.0448).abs() < 1e-12, "slope at ΔT = {dt}");
    }
    let v25 = device.open_circuit_voltage(DegC::new(25.0)).value();
    assert!((v25 - (0.0448 * 25.0 - 0.0051)).abs() < 1e-12);
}

#[test]
fn fig8_twelve_teg_module_power_at_dt25() {
    // Paper claim: 12 series TEGs deliver "higher than 1.8 W" at
    // ΔT = 25 °C; our calibrated module lands at 2.173 W (EXPERIMENTS.md
    // Fig. 8 table). Lock the calibrated value to 1 mW.
    let module = TegModule::paper_module();
    assert_eq!(module.count(), 12);
    let p = module.max_power(DegC::new(25.0)).value();
    assert!(p > 1.8, "paper floor: {p} W");
    assert!((p - 2.173).abs() < 1e-3, "calibrated value drifted: {p} W");
}

#[test]
fn fig9_outlet_minus_inlet_band() {
    // ΔT_out−in over the measured load range must stay in the
    // documented 0.2-3.7 °C band (paper band 1-3.5 °C; our idle floor
    // is lower — see EXPERIMENTS.md Fig. 9 divergence note), and must
    // be monotone in utilization at fixed flow and inlet.
    // The documented band is measured at the prototype's 20 L/H branch
    // flow (0.2 °C at idle, 3.7 °C at 100 %).
    let points =
        prototype::fig9_outlet_campaign(&[0.0, 0.15, 0.3, 0.45, 0.6, 0.8, 1.0], &[20.0], &[30.0])
            .unwrap();
    let deltas: Vec<f64> = points.iter().map(|p| p.delta_out_in.value()).collect();
    for (i, d) in deltas.iter().enumerate() {
        assert!((0.15..=4.0).contains(d), "point {i}: ΔT_out−in = {d}");
    }
    // Non-decreasing everywhere (the 5 W idle-power floor flattens the
    // first segment), strictly rising over the full range.
    for pair in deltas.windows(2) {
        assert!(pair[1] >= pair[0], "ΔT_out−in must not fall with load");
    }
    assert!(deltas[deltas.len() - 1] > deltas[0] + 1.0);
    // Flow shrinks the rise (ṁ·c_p): 250 L/H strictly below 20 L/H.
    let low = prototype::fig9_outlet_campaign(&[0.6], &[20.0], &[30.0]).unwrap();
    let high = prototype::fig9_outlet_campaign(&[0.6], &[250.0], &[30.0]).unwrap();
    assert!(high[0].delta_out_in.value() < low[0].delta_out_in.value());
}

#[test]
fn exact_paper_numbers_from_published_averages() {
    // Independent of our simulation: plugging the paper's own published
    // averages into the TCO layer must reproduce its Sec. V-D numbers
    // exactly.
    let tco = TcoAnalysis::paper_default();
    assert!((tco.reduction(Watts::new(4.177)) - 0.0057).abs() < 3e-4);
    assert!((tco.reduction(Watts::new(3.694)) - 0.0049).abs() < 3e-4);
    assert!((tco.break_even(Watts::new(4.177)).to_days() - 920.0).abs() < 2.0);
    assert!((tco.daily_generation(Watts::new(4.177)).value() - 10_024.8).abs() < 0.1);
}
