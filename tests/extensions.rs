//! Integration tests of the extension subsystems working together:
//! the escalation ladder (setting → TEC → throttle), power
//! conditioning, buffer dispatch over simulated series, facility
//! coupling and reliability-adjusted economics.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p::cooling::hybrid::HotSpotController;
use h2p::core::facility::FacilityLoop;
use h2p::prelude::*;
use h2p::teg::converter::{BoostConverter, MpptTracker};
use h2p::teg::reliability::ModuleReliability;

#[test]
fn escalation_ladder_always_ends_safe() {
    // For a sweep of sudden loads arriving at the warm operating point:
    // 1. if the new die temperature is safe, nothing to do;
    // 2. else if the TEC can pump the overshoot, it does;
    // 3. else the throttle cuts load until the hard limit holds.
    let server = ServerModel::paper_default();
    let tec = HotSpotController::default();
    let throttle = ThrottleController::at_max_operating();
    let t_safe = Celsius::new(62.0);
    let flow = LitersPerHour::new(60.0);
    let inlet = server
        .max_safe_inlet(Utilization::new(0.15).unwrap(), flow, t_safe)
        .unwrap();
    let coupling = server.cold_plate().resistance(flow).unwrap();

    for spike in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let u = Utilization::new(spike).unwrap();
        let op = server.operating_point(u, flow, inlet).unwrap();
        if op.cpu_temperature <= t_safe {
            continue; // rung 1
        }
        let action = tec.act(op.cpu_temperature, t_safe, op.outlet, coupling);
        if action.target_met {
            continue; // rung 2
        }
        // rung 3: throttle to the hard envelope.
        let decision = throttle.throttle(&server, u, flow, inlet).unwrap();
        let final_op = server
            .operating_point(decision.admitted, flow, inlet)
            .unwrap();
        assert!(
            final_op.cpu_temperature <= throttle.limit() + DegC::new(1e-6),
            "spike {spike}: ladder failed at {}",
            final_op.cpu_temperature
        );
    }
}

#[test]
fn conditioned_harvest_close_to_reported() {
    // Chain the simulator's reported available power through MPPT + boost:
    // the delivered power stays within the conditioning budget (~90 %).
    let cluster = TraceGenerator::paper(TraceKind::Common, 77)
        .with_servers(40)
        .with_steps(12)
        .generate();
    let sim = Simulator::paper_default().unwrap();
    let run = sim.run(&cluster, &LoadBalance).unwrap();
    let module = TegModule::paper_module();
    let converter = BoostConverter::typical_harvester();
    // Reconstruct the mean ΔT from the reported mean outlet.
    let mean_outlet: f64 = run
        .steps()
        .iter()
        .map(|s| s.mean_outlet.value())
        .sum::<f64>()
        / run.steps().len() as f64;
    let dt = DegC::new(mean_outlet - 20.0);
    let mut tracker = MpptTracker::new(&module).unwrap();
    let tracked = tracker.settle(&module, dt, 300).unwrap();
    let v_in = module.open_circuit_voltage(dt) * 0.5;
    let delivered = converter.output(tracked, v_in);
    let available = module.max_power(dt);
    assert!(delivered.value() > 0.85 * available.value());
    assert!(delivered <= available);
    // And the reconstructed available power matches the simulator's
    // reported average within the utilization spread.
    assert!((available.value() - run.average_teg_power().unwrap().value()).abs() < 0.7);
}

#[test]
fn dispatch_over_simulated_series_covers_steady_lighting() {
    use h2p::storage::dispatch::greedy_dispatch;

    let cluster = TraceGenerator::paper(TraceKind::Drastic, 5)
        .with_servers(80)
        .generate();
    let sim = Simulator::paper_default().unwrap();
    let run = sim.run(&cluster, &Original).unwrap();
    let generation: Vec<Watts> = run.steps().iter().map(|s| s.teg_power_per_server).collect();
    // A steady lighting load at 90 % of the mean harvest.
    let demand_level = run.average_teg_power().unwrap() * 0.9;
    let demand = vec![demand_level; generation.len()];
    let mut buffer = HybridBuffer::paper_default();
    let plan = greedy_dispatch(&mut buffer, &generation, &demand, run.interval()).unwrap();
    assert!(plan.coverage() > 0.97, "coverage {}", plan.coverage());
    assert!(
        plan.utilization() > 0.9,
        "utilization {}",
        plan.utilization()
    );
}

#[test]
fn simulator_setpoints_are_facility_feasible() {
    // Every inlet set-point the optimizer chose during a run must be
    // holdable by the CDU against tower-cooled facility water.
    let cluster = TraceGenerator::paper(TraceKind::Irregular, 13)
        .with_servers(40)
        .with_steps(48)
        .generate();
    let sim = Simulator::paper_default().unwrap();
    let run = sim.run(&cluster, &LoadBalance).unwrap();
    let facility = FacilityLoop::paper_default();
    for step in run.steps() {
        let tcs_flow = LitersPerHour::new(40.0 * 60.0);
        let feasible = facility
            .holds_setpoint(
                step.mean_inlet,
                step.mean_outlet.max(step.mean_inlet),
                tcs_flow,
            )
            .unwrap();
        assert!(feasible, "setpoint {} infeasible", step.mean_inlet);
    }
}

#[test]
fn reliability_adjusted_economics_still_close() {
    // Price the expected output decay into the paper's headline: with
    // bypass wiring the 920-day payback moves by under 5 %.
    let tco = TcoAnalysis::paper_default();
    let nominal = tco.break_even(Watts::new(4.177)).to_days();
    let stretch = ModuleReliability::paper_default().break_even_stretch(nominal);
    assert!(stretch < 1.05, "stretch {stretch}");
    let adjusted = nominal * stretch;
    assert!((900.0..=1000.0).contains(&adjusted), "adjusted {adjusted}");
}

#[test]
fn consolidation_hurts_h2p_end_to_end() {
    let cluster = TraceGenerator::paper(TraceKind::Common, 21)
        .with_servers(80)
        .with_steps(24)
        .generate();
    let dc = Datacenter::paper_default().unwrap();
    let packed = dc.evaluate(&cluster, &Consolidate).unwrap();
    let spread = dc.evaluate(&cluster, &Original).unwrap();
    let balanced = dc.evaluate(&cluster, &LoadBalance).unwrap();
    assert!(packed.average_generation < spread.average_generation);
    assert!(spread.average_generation < balanced.average_generation);
    assert!(packed.tco_reduction < balanced.tco_reduction);
}
