//! Cross-crate property-based tests (proptest): invariants that must
//! hold for arbitrary inputs, not just the calibrated operating points.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p::prelude::*;
use h2p::server::LookupSpace;
use h2p::stats::{order_stats, Normal};
use proptest::prelude::*;

fn utilization() -> impl Strategy<Value = Utilization> {
    (0.0..=1.0f64).prop_map(|v| Utilization::new(v).expect("in range"))
}

fn loads(max_len: usize) -> impl Strategy<Value = Vec<Utilization>> {
    proptest::collection::vec(utilization(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduling_conserves_total_load(ls in loads(64), step in 0.0..=1.0f64) {
        let total: f64 = ls.iter().map(|u| u.value()).sum();
        for policy in [
            &Original as &dyn SchedulingPolicy,
            &LoadBalance,
            &BoundedMigration::new(step),
        ] {
            let out = policy.schedule(&ls);
            let new_total: f64 = out.iter().map(|u| u.value()).sum();
            prop_assert!((new_total - total).abs() < 1e-6, "{}", policy.name());
            for u in &out {
                prop_assert!((0.0..=1.0).contains(&u.value()));
            }
        }
    }

    #[test]
    fn scheduling_never_raises_the_peak(ls in loads(64)) {
        let peak = Utilization::max_of(&ls);
        for policy in [&Original as &dyn SchedulingPolicy, &LoadBalance] {
            let out = policy.schedule(&ls);
            prop_assert!(Utilization::max_of(&out) <= peak);
        }
        let out = BoundedMigration::new(0.2).schedule(&ls);
        prop_assert!(Utilization::max_of(&out) <= peak);
    }

    #[test]
    fn control_plane_ordering(ls in loads(64)) {
        // U_avg <= U_max always: balancing can only admit warmer water.
        let avg = LoadBalance.control_utilization(&ls);
        let max = Original.control_utilization(&ls);
        prop_assert!(avg <= max);
    }

    #[test]
    fn teg_power_monotone_in_dt(a in 0.0..60.0f64, b in 0.0..60.0f64) {
        let module = TegModule::paper_module();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            module.max_power(DegC::new(lo)) <= module.max_power(DegC::new(hi))
        );
    }

    #[test]
    fn teg_matched_load_is_global_optimum(dt in 1.0..50.0f64, factor in 0.05..20.0f64) {
        let module = TegModule::paper_module();
        let matched = module
            .power_into_load(DegC::new(dt), module.optimal_load())
            .expect("positive load");
        let other = module
            .power_into_load(DegC::new(dt), module.optimal_load() * factor)
            .expect("positive load");
        prop_assert!(other <= matched + Watts::new(1e-12));
    }

    #[test]
    fn operating_point_physical_ordering(
        u in utilization(),
        flow in 10.0..400.0f64,
        inlet in 15.0..60.0f64,
    ) {
        let server = ServerModel::paper_default();
        let op = server
            .operating_point(u, LitersPerHour::new(flow), Celsius::new(inlet))
            .expect("stable for calibrated model");
        // Die >= outlet >= inlet: heat flows downhill.
        prop_assert!(op.cpu_temperature >= op.outlet - DegC::new(1e-9));
        prop_assert!(op.outlet.value() >= inlet - 1e-9);
        prop_assert!(op.cpu_power.value() > 0.0);
    }

    #[test]
    fn operating_point_monotone_in_utilization(
        flow in 10.0..400.0f64,
        inlet in 15.0..60.0f64,
        a in 0.0..=1.0f64,
        b in 0.0..=1.0f64,
    ) {
        let server = ServerModel::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t = |x: f64| {
            server
                .operating_point(
                    Utilization::new(x).expect("in range"),
                    LitersPerHour::new(flow),
                    Celsius::new(inlet),
                )
                .expect("stable")
                .cpu_temperature
        };
        prop_assert!(t(lo) <= t(hi) + DegC::new(1e-9));
    }

    #[test]
    fn lookup_interpolation_brackets_model(
        u in 0.01..0.99f64,
        flow in 21.0..249.0f64,
        inlet in 21.0..59.0f64,
    ) {
        // Trilinear interpolation of a smooth monotone field stays close
        // to the model everywhere on the grid interior.
        let model = ServerModel::paper_default();
        let space = LookupSpace::paper_grid(&model).expect("builds");
        let uu = Utilization::new(u).expect("in range");
        let approx = space
            .cpu_temperature(uu, LitersPerHour::new(flow), Celsius::new(inlet))
            .expect("inside grid")
            .value();
        let exact = model
            .operating_point(uu, LitersPerHour::new(flow), Celsius::new(inlet))
            .expect("stable")
            .cpu_temperature
            .value();
        prop_assert!((approx - exact).abs() < 1.0, "{approx} vs {exact}");
    }

    #[test]
    fn expected_max_bounds(mu in -50.0..80.0f64, sigma in 0.1..10.0f64, n in 1usize..500) {
        let dist = Normal::new(mu, sigma).expect("valid");
        let e = order_stats::expected_max(dist, n);
        prop_assert!(e >= mu - 1e-6);
        prop_assert!(e <= order_stats::expected_max_upper_bound(dist, n) + 1e-6);
    }

    #[test]
    fn buffer_never_creates_energy(
        offers in proptest::collection::vec(0.0..50.0f64, 1..20),
    ) {
        let mut buffer = HybridBuffer::paper_default();
        let dt = Seconds::minutes(5.0);
        let mut offered = Joules::zero();
        for o in offers {
            offered += buffer.offer(Watts::new(o), dt);
        }
        let mut recovered = Joules::zero();
        for _ in 0..200 {
            recovered += buffer.demand(Watts::new(70.0), dt);
        }
        prop_assert!(recovered <= offered + Joules::new(1e-9));
        prop_assert!(buffer.stored().value() < 1.0, "buffer should be drained");
    }

    #[test]
    fn chiller_energy_non_negative_and_linear(
        depression in -5.0..20.0f64,
        flow in 1.0..10_000.0f64,
        hours in 0.1..100.0f64,
    ) {
        let chiller = Chiller::paper_default();
        let e = chiller.energy_for_supply_depression(
            DegC::new(depression),
            LitersPerHour::new(flow),
            Seconds::hours(hours),
        );
        prop_assert!(e.value() >= 0.0);
        if depression > 0.0 {
            let doubled = chiller.energy_for_supply_depression(
                DegC::new(depression * 2.0),
                LitersPerHour::new(flow),
                Seconds::hours(hours),
            );
            prop_assert!((doubled.value() - 2.0 * e.value()).abs() < 1e-6 * doubled.value().max(1.0));
        }
    }
}

proptest! {
    // The optimizer search is heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn optimizer_never_violates_safety(u in utilization()) {
        let space = LookupSpace::paper_grid(&ServerModel::paper_default()).expect("builds");
        let optimizer = CoolingOptimizer::paper_default(&space);
        let best = optimizer.optimize(u).expect("paper grid is feasible");
        prop_assert!(
            best.cpu_temperature <= optimizer.t_safe() + DegC::new(1.0 + 1e-9),
            "u = {u}: die {}",
            best.cpu_temperature
        );
        prop_assert!(best.teg_power.value() >= 0.0);
    }
}
