//! End-to-end integration tests: trace generation → scheduling →
//! cooling optimization → TEG accounting → metrics → TCO, exercised
//! through the `h2p` facade exactly as a downstream user would.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p::prelude::*;

fn small_cluster(kind: TraceKind, servers: usize, steps: usize) -> ClusterTrace {
    TraceGenerator::paper(kind, 1234)
        .with_servers(servers)
        .with_steps(steps)
        .generate()
}

#[test]
fn full_pipeline_produces_consistent_report() {
    let cluster = small_cluster(TraceKind::Irregular, 80, 48);
    let sim = Simulator::paper_default().expect("simulator builds");
    let result = sim.run(&cluster, &LoadBalance).expect("run succeeds");

    assert_eq!(result.steps().len(), 48);
    assert_eq!(result.servers(), 80);
    assert_eq!(result.total_violations(), 0);

    // Metrics consistency.
    let avg = result.average_teg_power().unwrap();
    assert!(result.peak_teg_power() >= avg);
    let pre = result.pre();
    assert!(pre > 0.0 && pre < 1.0);
    assert!(
        (pre - avg.value() / result.average_cpu_power().unwrap().value()).abs() < 1e-12,
        "PRE must equal the power ratio"
    );

    // Feed the result into the TCO layer.
    let tco = TcoAnalysis::paper_default();
    let reduction = tco.reduction(avg);
    assert!(
        reduction > 0.0 && reduction < 0.02,
        "reduction = {reduction}"
    );
    assert!(tco.break_even(avg).to_days() > 300.0);
}

#[test]
fn policies_agree_on_cpu_power_but_not_generation() {
    // Load balancing moves work around; it must not change total load
    // (and hence Eq. 20's cluster power) materially, only generation.
    let cluster = small_cluster(TraceKind::Drastic, 80, 36);
    let sim = Simulator::paper_default().expect("simulator builds");
    let orig = sim.run(&cluster, &Original).expect("run succeeds");
    let lb = sim.run(&cluster, &LoadBalance).expect("run succeeds");

    let cpu_rel =
        (orig.average_cpu_power().unwrap().value() - lb.average_cpu_power().unwrap().value()).abs()
            / orig.average_cpu_power().unwrap().value();
    assert!(cpu_rel < 0.05, "CPU power diverged by {cpu_rel}");
    assert!(lb.average_teg_power().unwrap() > orig.average_teg_power().unwrap());
}

#[test]
fn bounded_migration_sits_between_policies() {
    let cluster = small_cluster(TraceKind::Drastic, 80, 36);
    let sim = Simulator::paper_default().expect("simulator builds");
    let orig = sim
        .run(&cluster, &Original)
        .expect("run succeeds")
        .average_teg_power()
        .unwrap();
    let lb = sim
        .run(&cluster, &LoadBalance)
        .expect("run succeeds")
        .average_teg_power()
        .unwrap();
    let bounded = sim
        .run(&cluster, &BoundedMigration::new(0.05))
        .expect("run succeeds")
        .average_teg_power()
        .unwrap();
    assert!(
        bounded >= orig - Watts::new(0.05) && bounded <= lb + Watts::new(0.05),
        "orig {orig}, bounded {bounded}, lb {lb}"
    );
}

#[test]
fn seasonal_cold_source_modulates_generation() {
    use h2p::core::simulation::{SimulationConfig, Simulator};
    use h2p::hydraulics::ColdSource;

    let cluster = small_cluster(TraceKind::Common, 40, 24);
    let model = ServerModel::paper_default();

    let run_at = |cold: f64| {
        let mut cfg = SimulationConfig::paper_default();
        cfg.cold_source = ColdSource::Constant(Celsius::new(cold));
        Simulator::new(&model, cfg)
            .expect("builds")
            .run(&cluster, &LoadBalance)
            .expect("runs")
            .average_teg_power()
            .unwrap()
    };
    let cold = run_at(15.0);
    let warm = run_at(25.0);
    assert!(
        cold > warm,
        "colder source must out-generate: {cold} vs {warm}"
    );
}

#[test]
fn harvested_energy_feeds_storage_sensibly() {
    let cluster = small_cluster(TraceKind::Common, 40, 48);
    let sim = Simulator::paper_default().expect("simulator builds");
    let run = sim.run(&cluster, &LoadBalance).expect("run succeeds");

    let mut buffer = HybridBuffer::paper_default();
    let interval = run.interval();
    let mut offered = Joules::zero();
    for step in run.steps() {
        offered += buffer.offer(step.teg_power_per_server, interval);
    }
    assert!(offered.value() > 0.0);
    // Stored energy never exceeds what was offered.
    assert!(buffer.stored() <= offered);
    // And discharging returns a sane fraction.
    let back = buffer.demand(Watts::new(100.0), Seconds::hours(10.0));
    assert!(back.value() > 0.85 * buffer.stored().value() || back.value() > 0.0);
}

#[test]
fn circulation_design_consistent_with_simulator_sizing() {
    // The design study's optimum must be a size the simulator accepts.
    let design = CirculationDesign::paper_default().expect("valid constants");
    let best = design.optimal(&[5, 10, 20, 25, 40, 50, 100]);
    let cluster = small_cluster(TraceKind::Common, best.servers_per_circulation, 12);
    let mut cfg = h2p::core::simulation::SimulationConfig::paper_default();
    cfg.servers_per_circulation = best.servers_per_circulation;
    let sim =
        h2p::core::simulation::Simulator::new(&ServerModel::paper_default(), cfg).expect("builds");
    let r = sim.run(&cluster, &LoadBalance).expect("runs");
    assert_eq!(r.total_violations(), 0);
}

#[test]
fn ere_improves_with_h2p_reuse() {
    use h2p::core::metrics::EnergyBreakdown;

    let cluster = small_cluster(TraceKind::Common, 40, 24);
    let sim = Simulator::paper_default().expect("simulator builds");
    let run = sim.run(&cluster, &LoadBalance).expect("run succeeds");

    let it = run.average_cpu_power().unwrap() * run.servers() as f64;
    let breakdown = EnergyBreakdown {
        it,
        cooling: it * 0.2,
        power: it * 0.08,
        lighting: it * 0.01,
        reuse: run.average_teg_power().unwrap() * run.servers() as f64,
    };
    assert!(breakdown.ere() < breakdown.pue());
}
