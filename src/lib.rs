//! # H2P — Heat to Power
//!
//! A full reproduction of *"Heat to Power: Thermal Energy Harvesting and
//! Recycling for Warm Water-Cooled Datacenters"* (ISCA 2020) as a Rust
//! workspace. This facade crate re-exports the public API of every
//! member crate so applications can depend on `h2p` alone.
//!
//! ## Layout
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`units`] | `h2p-units` | typed physical quantities |
//! | [`stats`] | `h2p-stats` | distributions, order statistics, fitting |
//! | [`exec`] | `h2p-exec` | scoped worker-pool execution primitives |
//! | [`thermal`] | `h2p-thermal` | RC networks, cold plates, heat exchangers |
//! | [`hydraulics`] | `h2p-hydraulics` | branches, pumps, cold sources |
//! | [`teg`] | `h2p-teg` | TEG/TEC device models |
//! | [`server`] | `h2p-server` | CPU power/thermal models, lookup space |
//! | [`workload`] | `h2p-workload` | synthetic cluster traces |
//! | [`cooling`] | `h2p-cooling` | chiller, tower, setting optimizer |
//! | [`sched`] | `h2p-sched` | scheduling policies |
//! | [`faults`] | `h2p-faults` | deterministic fault injection plans |
//! | [`core`] | `h2p-core` | simulator, prototype, circulation design |
//! | [`jobs`] | `h2p-jobs` | closed-loop thermal-aware job placement |
//! | [`tco`] | `h2p-tco` | total-cost-of-ownership analysis |
//! | [`storage`] | `h2p-storage` | hybrid energy buffer, LED budget |
//! | [`telemetry`] | `h2p-telemetry` | counters, histograms, spans, run journal |
//! | [`serve`] | `h2p-serve` | batching scenario service, bounded queue, JSONL daemon |
//! | [`gateway`] | `h2p-gateway` | HTTP front door, consistent-hash sharding, load generator |
//!
//! ## Quickstart
//!
//! ```
//! use h2p::core::simulation::Simulator;
//! use h2p::sched::{LoadBalance, Original};
//! use h2p::workload::{TraceGenerator, TraceKind};
//!
//! // A small slice of the paper's "Common" Google-like workload.
//! let cluster = TraceGenerator::paper(TraceKind::Common, 42)
//!     .with_servers(40)
//!     .with_steps(24)
//!     .generate();
//!
//! let sim = Simulator::paper_default()?;
//! let baseline = sim.run(&cluster, &Original)?;
//! let balanced = sim.run(&cluster, &LoadBalance)?;
//! assert!(balanced.average_teg_power()? >= baseline.average_teg_power()?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

pub use h2p_cooling as cooling;
pub use h2p_core as core;
pub use h2p_exec as exec;
pub use h2p_faults as faults;
pub use h2p_gateway as gateway;
pub use h2p_hydraulics as hydraulics;
pub use h2p_jobs as jobs;
pub use h2p_sched as sched;
pub use h2p_serve as serve;
pub use h2p_server as server;
pub use h2p_stats as stats;
pub use h2p_storage as storage;
pub use h2p_tco as tco;
pub use h2p_teg as teg;
pub use h2p_telemetry as telemetry;
pub use h2p_thermal as thermal;
pub use h2p_units as units;
pub use h2p_workload as workload;

/// Commonly used items, importable as `use h2p::prelude::*`.
pub mod prelude {
    pub use h2p_cooling::{Chiller, CoolingOptimizer, CoolingTower};
    pub use h2p_core::circulation::CirculationDesign;
    pub use h2p_core::datacenter::{AnnualReport, Datacenter};
    pub use h2p_core::faulted::FaultedRun;
    pub use h2p_core::simulation::{SimulationConfig, SimulationResult, Simulator};
    pub use h2p_faults::{FaultClass, FaultLedger, FaultPlan, HazardRates};
    pub use h2p_gateway::{Gateway, GatewayConfig, HashRing, LoadPlan};
    pub use h2p_hydraulics::{Branch, ColdSource, Pump};
    pub use h2p_jobs::{Job, PlacementEngine, PlacementPolicy, PlacementPolicyKind, PlacementRun};
    pub use h2p_sched::{BoundedMigration, Consolidate, LoadBalance, Original, SchedulingPolicy};
    pub use h2p_serve::{
        Admission, PolicyKind, Priority, ScenarioRequest, ScenarioService, ServiceConfig, TraceSpec,
    };
    pub use h2p_server::{CpuPowerModel, LookupSpace, ServerModel, ThrottleController};
    pub use h2p_storage::HybridBuffer;
    pub use h2p_tco::{TcoAnalysis, TcoParameters};
    pub use h2p_teg::{TegDevice, TegModule};
    pub use h2p_telemetry::{Registry, RunReport};
    pub use h2p_units::{
        Celsius, DegC, Dollars, Joules, KilowattHours, LitersPerHour, Seconds, Utilization, Volts,
        Watts,
    };
    pub use h2p_workload::{ClusterTrace, Trace, TraceGenerator, TraceKind};
}
