//! Offline stand-in for the subset of
//! [`serde_json`](https://docs.rs/serde_json/1) this workspace uses:
//! `to_string` / `from_str`, `to_writer` / `from_reader`, [`Value`],
//! the [`json!`] macro, and an [`Error`] type that threads through
//! `std::error::Error`.
//!
//! [`Value`] is a re-export of the `serde` stub's data-model tree, so
//! serialization is `T -> Value -> text` and deserialization is the
//! reverse. Floats print with Rust's `{}` formatting, which is already
//! shortest-roundtrip (the `float_roundtrip` feature is a no-op).

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
    /// Byte offset of a syntax error, when known.
    offset: Option<usize>,
}

impl Error {
    fn syntax(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset: Some(offset),
        }
    }

    fn data(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
            offset: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::data(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::data(format!("i/o failure during JSON processing: {e}"))
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for tree-shaped data (kept fallible to mirror the real
/// API).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_content().to_string())
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Returns [`Error`] if the writer fails.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    write!(writer, "{}", value.to_content())?;
    writer.flush()?;
    Ok(())
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape/validation mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_content(&value)?)
}

/// Reads and parses a value from `reader`.
///
/// # Errors
///
/// Returns [`Error`] on read failure, malformed JSON, or
/// shape/validation mismatch.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Insertion-ordered string-keyed map, mirroring `serde_json::Map`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` at `key`, returning the previous value if the
    /// key was present.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Serialize for Map {
    fn to_content(&self) -> Value {
        Value::Object(self.entries.clone())
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Self {
        Value::Object(map.entries)
    }
}

/// Builds a [`Value`] literal; supports the object / array / scalar
/// forms used across the workspace's experiment binaries.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $(( ::std::string::String::from($key), $crate::to_value(&$val) )),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::syntax("trailing characters", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::syntax(
                format!("expected `{}`", char::from(byte)),
                self.pos,
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::syntax(
                format!("invalid literal (expected `{kw}`)"),
                self.pos,
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::syntax(
                format!("unexpected character `{}`", char::from(c)),
                self.pos,
            )),
            None => Err(Error::syntax("unexpected end of input", self.pos)),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::syntax("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::syntax("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::syntax("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::syntax("bad \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::syntax("bad \\u escape", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed; the
                            // workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::syntax(
                                format!("unknown escape `\\{}`", char::from(other)),
                                self.pos,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::syntax("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::syntax("unterminated string", self.pos)),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::syntax("invalid number", start))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::syntax(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"traces":[{"interval_seconds":300.0,"samples":[0.5,0.25]}],"ok":true,"name":"a\"b"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(
            v.get("traces").unwrap().as_array().unwrap()[0]
                .get("samples")
                .unwrap()
                .as_array()
                .unwrap()[1]
                .as_f64(),
            Some(0.25)
        );
        let reprinted = to_string(&v).unwrap();
        let reparsed: Value = from_str(&reprinted).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{\"a\":1}x").is_err());
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "experiment": "fig07",
            "value": 1.5,
            "count": 3usize,
            "flag": true,
        });
        assert_eq!(
            v.to_string(),
            r#"{"experiment":"fig07","value":1.5,"count":3,"flag":true}"#
        );
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1.0, 2.0]).as_array().unwrap().len(), 2);
    }

    #[test]
    fn float_formatting_roundtrips() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123_456_789.123_456_78] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x, back);
        }
    }
}
