//! Offline stand-in for the subset of [`serde`](https://docs.rs/serde/1)
//! this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! patches `serde` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). Instead of serde's zero-copy visitor architecture it
//! funnels everything through one self-describing [`Value`] tree — the
//! H2P workspace only serializes small JSON trace documents, where the
//! intermediate tree costs nothing measurable.
//!
//! Supported surface:
//!
//! * [`Serialize`] / [`Deserialize`] traits for the primitives and
//!   containers the workspace stores (floats, integers, booleans,
//!   strings, `Vec`, `Option`).
//! * `#[derive(Serialize, Deserialize)]` on structs with named fields
//!   (via the sibling `serde_derive` stub), including the
//!   `#[serde(try_from = "Type")]` container attribute used for
//!   validate-on-entry documents.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree: the stub's entire data model.
///
/// Mirrors `serde_json::Value` (which the `serde_json` stub re-exports
/// as exactly this type). Numbers are uniformly `f64`, like JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always an `f64`, like JavaScript).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON. Non-finite numbers render as `null` (JSON has no
    /// NaN/infinity), matching `serde_json`'s lossy `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) if n.is_finite() => write!(f, "{n}"),
            Value::Number(_) => f.write_str("null"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Deserialization error (also what derive-generated `try_from`
/// conversions surface their validation failures as).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// An error carrying a custom message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// This value as a data tree.
    fn to_content(&self) -> Value;
}

/// Types that can rebuild themselves from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses the data tree, validating invariants on the way in.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or validation mismatch.
    fn from_content(v: &Value) -> Result<Self, DeError>;
}

/// Field lookup helper used by derive-generated code.
///
/// # Errors
///
/// Returns [`DeError`] if the field is absent or its value malformed.
pub fn __field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    let value = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))?;
    T::from_content(value).map_err(|e| DeError(format!("field `{name}`: {e}")))
}

macro_rules! impl_serde_via_f64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(clippy::cast_lossless, clippy::cast_precision_loss)]
            fn to_content(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss,
                clippy::cast_precision_loss,
                clippy::float_cmp,
                clippy::cast_lossless
            )]
            fn from_content(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| DeError("expected number".into()))?;
                let cast = n as $t;
                // Round-trip check rejects fractions and out-of-range
                // values for integer targets (exact for floats).
                if cast as f64 == n {
                    Ok(cast)
                } else {
                    Err(DeError(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )))
                }
            }
        }
    )*};
}

impl_serde_via_f64!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| DeError("expected number".into()))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError("expected boolean".into())),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError("expected string".into()))
    }
}

impl Serialize for &str {
    fn to_content(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError("expected array".into()))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Value {
        match self {
            Some(inner) => inner.to_content(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(1.5)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::String("x\"y".to_string())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1.5,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn integer_roundtrip_rejects_fractions() {
        assert_eq!(u64::from_content(&Value::Number(3.0)), Ok(3));
        assert!(u64::from_content(&Value::Number(3.5)).is_err());
        assert!(u64::from_content(&Value::Number(-1.0)).is_err());
        assert!(usize::from_content(&Value::String("3".into())).is_err());
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![0.25f64, 0.5].to_content();
        assert_eq!(Vec::<f64>::from_content(&v), Ok(vec![0.25, 0.5]));
        assert_eq!(Option::<f64>::from_content(&Value::Null), Ok(None));
        assert_eq!(
            Option::<f64>::from_content(&Value::Number(2.0)),
            Ok(Some(2.0))
        );
    }
}
