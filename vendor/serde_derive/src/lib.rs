//! Offline stub of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! Implemented directly on `proc_macro` token streams (the sandbox has
//! no `syn`/`quote`), which bounds the supported grammar:
//!
//! * structs with named fields, no generics;
//! * the `#[serde(try_from = "Type")]` container attribute (documents
//!   validated on entry — the pattern `h2p-workload` uses).
//!
//! Anything else produces a `compile_error!` pointing here. The
//! generated code targets the `Value`-tree data model of the sibling
//! `serde` stub, not real serde's visitor API.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the annotated struct.
struct Input {
    name: String,
    fields: Vec<String>,
    /// Payload of `#[serde(try_from = "...")]`, if present.
    try_from: Option<String>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Extracts `try_from = "Type"` from the tokens inside `#[serde(...)]`.
fn parse_serde_attr(tokens: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(ident) = &tokens[i] {
            if ident.to_string() == "try_from" {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (tokens.get(i + 1), tokens.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let raw = lit.to_string();
                        return Some(raw.trim_matches('"').to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Splits a named-field body on commas at angle-bracket depth zero and
/// returns the field names.
fn parse_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut current: Vec<&TokenTree> = Vec::new();
    let mut chunks: Vec<Vec<&TokenTree>> = Vec::new();
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    for chunk in chunks {
        // Skip field attributes and visibility, then expect `name :`.
        let mut i = 0;
        while i < chunk.len() {
            match chunk[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + bracket group
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = chunk.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1; // `pub(crate)` etc.
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match chunk.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "expected `:` after field `{name}` (named fields only)"
                ))
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut try_from = None;
    let mut i = 0;

    // Outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                let args: Vec<TokenTree> = args.stream().into_iter().collect();
                                if let Some(t) = parse_serde_attr(&args) {
                                    try_from = Some(t);
                                }
                            }
                        }
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
            return Err("the offline serde_derive stub supports structs only".to_string());
        }
        other => return Err(format!("expected `struct`, found {other:?}")),
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(
                "the offline serde_derive stub supports non-generic structs only".to_string(),
            );
        }
        other => return Err(format!("expected named-field body, found {other:?}")),
    };

    let fields = parse_fields(&body.into_iter().collect::<Vec<_>>())?;
    Ok(Input {
        name,
        fields,
        try_from,
    })
}

/// Stub of serde's `Serialize` derive: emits every named field into a
/// `Value::Object` in declaration order.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let entries: Vec<String> = parsed
        .fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}",
        name = parsed.name,
        entries = entries.join(", ")
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Stub of serde's `Deserialize` derive.
///
/// Without attributes, rebuilds the struct field-by-field (missing
/// fields error, unknown fields are ignored — serde's defaults). With
/// `#[serde(try_from = "Doc")]`, deserializes `Doc` first and funnels
/// through `TryFrom`, surfacing the conversion error's `Display`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = if let Some(proxy) = &parsed.try_from {
        format!(
            "let doc = <{proxy} as ::serde::Deserialize>::from_content(v)?;\n\
             match <{name} as ::core::convert::TryFrom<{proxy}>>::try_from(doc) {{\n\
                 ::core::result::Result::Ok(value) => ::core::result::Result::Ok(value),\n\
                 ::core::result::Result::Err(e) => ::core::result::Result::Err(\n\
                     ::serde::DeError::custom(::std::format!(\"{{e}}\"))),\n\
             }}"
        )
    } else {
        let fields: Vec<String> = parsed
            .fields
            .iter()
            .map(|f| format!("{f}: ::serde::__field(obj, {f:?})?"))
            .collect();
        format!(
            "let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected JSON object\"))?;\n\
             ::core::result::Result::Ok({name} {{ {fields} }})",
            fields = fields.join(", ")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
