//! Offline stand-in for the subset of the [`rand`](https://docs.rs/rand/0.8)
//! API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this pure-`std` implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It preserves the
//! properties the H2P code relies on:
//!
//! * **Determinism** — `StdRng::seed_from_u64` yields a reproducible
//!   stream (xoshiro256++ seeded via SplitMix64).
//! * **Uniformity** — `gen_range` is uniform over the requested range
//!   (53-bit mantissa for floats).
//!
//! The stream differs from upstream `rand`'s `StdRng` (ChaCha12), so
//! seeded outputs are reproducible *within* this workspace but not
//! bit-identical to runs linked against the real crate.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core pseudo-random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can seed an [`RngCore`].
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits; division is exact (power of two).
    (bits >> 11) as f64 / ((1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard against round-up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 / (((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Modulo with rejection to stay unbiased.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let raw = rng.next_u64();
                    if raw < zone {
                        return self.start + (raw % span) as $t;
                    }
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`:
    /// xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&x));
            let y = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }
}
