//! Offline stand-in for the subset of
//! [`criterion`](https://docs.rs/criterion/0.8) this workspace uses.
//!
//! Implements a minimal timing harness — warmup, then a fixed sampling
//! window with median-of-samples reporting — instead of criterion's
//! statistical machinery. Good enough to compare hot-path changes in
//! this sandbox; for publishable numbers, run the real criterion crate
//! in a networked environment.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched setup output is sized (accepted for API compatibility;
/// the stub re-runs setup per iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Per-iteration input of unknown size.
    PerIteration,
}

/// The benchmark harness handle passed to every bench function.
pub struct Criterion {
    warmup_iters: u32,
    sample_count: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup_iters: 3,
            sample_count: 15,
        }
    }
}

/// Timing context for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    warmup_iters: u32,
    sample_count: u32,
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            warmup_iters: self.warmup_iters,
            sample_count: self.sample_count,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!("{id:<50} median {median:>12?}   [min {min:?}, max {max:?}]");
    }
}

/// Groups bench functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a set of groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("stub/iter", |b| b.iter(|| 1u64 + 1));
        c.bench_function("stub/iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
