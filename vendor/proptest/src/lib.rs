//! Offline stand-in for the subset of
//! [`proptest`](https://docs.rs/proptest/1) this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! patches `proptest` to this pure-`std` implementation. It keeps the
//! *property-testing contract* — each `#[test]` inside [`proptest!`]
//! runs its body against `cases` independently sampled inputs, and
//! `prop_assert!` failures report the failing case — but drops the
//! heavy machinery:
//!
//! * **No shrinking.** A failing case reports its sampled inputs via
//!   the assertion message; it is not minimized.
//! * **Deterministic sampling.** Each test derives its RNG seed from
//!   its own name, so failures reproduce across runs (like proptest
//!   with a persisted regression seed). Edge values of ranges are
//!   force-fed in the first cases rather than found by bias.
//!
//! Supported surface: range strategies over the primitive numeric
//! types, [`Just`], `prop_map`, [`prop_oneof!`][crate::prop_oneof],
//! `collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Strategies: samplable descriptions of input spaces.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A samplable input space. The stub's `Value` mirrors
    /// `proptest::strategy::Strategy::Value`.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws the `index`-th sample of a test case. Low indices
        /// visit deterministic edge values where the strategy has
        /// natural edges (range endpoints); later indices are uniform.
        fn sample(&self, rng: &mut TestRng, index: u32) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng, index: u32) -> V {
            (**self).sample(rng, index)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng, index: u32) -> S::Value {
            (**self).sample(rng, index)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng, _index: u32) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng, index: u32) -> U {
            (self.f)(self.inner.sample(rng, index))
        }
    }

    /// `prop_oneof!` combinator: uniform choice between alternatives.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng, index: u32) -> V {
            // Early cases sweep the alternatives in order so every arm
            // is exercised even with few cases.
            let n = self.options.len();
            let pick = if (index as usize) < n {
                index as usize
            } else {
                rng.below(n)
            };
            self.options[pick].sample(rng, index)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng, index: u32) -> f64 {
            match index {
                // Edge cases first: the endpoints (upper nudged inside).
                0 => self.start,
                1 => prev_toward(self.end, self.start),
                _ => {
                    let v = self.start + (self.end - self.start) * rng.unit_f64();
                    if v >= self.end {
                        self.start
                    } else {
                        v
                    }
                }
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng, index: u32) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            match index {
                0 => lo,
                1 => hi,
                _ => lo + (hi - lo) * rng.unit_f64(),
            }
        }
    }

    /// The largest `f64` strictly below `x` (toward `floor`), used to
    /// keep exclusive upper endpoints exclusive.
    fn prev_toward(x: f64, floor: f64) -> f64 {
        let prev = if x == f64::INFINITY {
            f64::MAX
        } else if x == 0.0 {
            // Largest value below zero: the negative subnormal closest
            // to it. (`0.0f64.to_bits() - 1` would underflow.)
            -f64::from_bits(1)
        } else if x > 0.0 {
            f64::from_bits(x.to_bits() - 1)
        } else {
            // Negative: bit patterns grow toward -infinity.
            f64::from_bits(x.to_bits() + 1)
        };
        prev.max(floor)
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng, index: u32) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    match index {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => {
                            let span = (self.end - self.start) as u64;
                            self.start + (rng.next_u64() % span) as $t
                        }
                    }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng, index: u32) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    match index {
                        0 => lo,
                        1 => hi,
                        _ => {
                            let span = (hi - lo) as u64 + 1;
                            lo + (rng.next_u64() % span) as $t
                        }
                    }
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng, index: u32) -> Self::Value {
                    ($(self.$idx.sample(rng, index),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean (both values visited in the first two cases).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng, index: u32) -> bool {
            match index {
                0 => false,
                1 => true,
                _ => rng.next_u64() & 1 == 1,
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for [`vec`], mirroring `proptest`'s
    /// `SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values drawn from `element`, with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng, index: u32) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = match index {
                0 => self.size.lo,
                1 => self.size.hi,
                _ => self.size.lo + rng.below(span),
            };
            // Elements use uniform sampling (index 2+) so a short vec
            // isn't all edge values.
            (0..len)
                .map(|_| self.element.sample(rng, 2 + index))
                .collect()
        }
    }
}

pub mod test_runner {
    //! The miniature test runner behind [`proptest!`][crate::proptest].

    use std::fmt;

    /// Per-run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed or rejected test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with a formatted reason.
        #[must_use]
        pub fn fail(reason: String) -> Self {
            TestCaseError(reason)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG (SplitMix64). Seeded from the test name so
    /// each property sees its own stream but failures reproduce.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary byte string (the test's name).
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        #[allow(clippy::cast_precision_loss)]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n` is zero.
        #[allow(clippy::cast_possible_truncation)]
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn` runs `cases` times against
/// freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case_index in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat), &mut rng, case_index,
                        );
                    )*
                    let case_inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&::std::format!("{:?}; ", $arg));
                        )*
                        s
                    };
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case_index + 1, config.cases, e, case_inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts inside a [`proptest!`] body, failing the *case* (with its
/// inputs) rather than aborting the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_hit_edges_then_sample_uniform() {
        let mut rng = TestRng::from_name("edge");
        let s = 0.0..=1.0f64;
        assert_eq!(s.sample(&mut rng, 0), 0.0);
        assert_eq!(s.sample(&mut rng, 1), 1.0);
        for i in 2..100 {
            let v = s.sample(&mut rng, i);
            assert!((0.0..=1.0).contains(&v));
        }
        let e = 5u64..10;
        assert_eq!(e.sample(&mut rng, 0), 5);
        assert_eq!(e.sample(&mut rng, 1), 9);
        for i in 2..100 {
            assert!((5..10).contains(&e.sample(&mut rng, i)));
        }
    }

    #[test]
    fn exclusive_float_range_stays_exclusive() {
        let mut rng = TestRng::from_name("excl");
        let s = 0.0..1.0f64;
        for i in 0..200 {
            let v = s.sample(&mut rng, i);
            assert!(v < 1.0, "sample {v} not below 1.0");
        }
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let mut rng = TestRng::from_name("vec");
        let s = crate::collection::vec(0.0..1.0f64, 1..20);
        for i in 0..100 {
            let v = s.sample(&mut rng, i);
            assert!((1..=19).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn oneof_sweeps_all_arms() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let first: Vec<u8> = (0..3).map(|i| s.sample(&mut rng, i)).collect();
        assert_eq!(first, vec![1, 2, 3]);
    }

    // The macro itself, end-to-end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_cases(x in 0.0..=1.0f64, n in 1usize..10) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(n, n);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }
}
