//! Property tests for the merge algebra (ISSUE 4 satellite): merging
//! per-worker registries is associative and order-independent, and
//! reproduces a single-threaded reference recording exactly.
//!
//! This is what makes the engine's "record per worker, fold at the
//! end" instrumentation honest — the fold cannot smear the numbers no
//! matter how the scheduler partitions the work.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_telemetry::{BucketSpec, Counter, Histogram, ManualClock, Registry};
use proptest::prelude::*;
use std::sync::Arc;

/// The bucket layout every generated histogram uses (merges require
/// matching specs; spec mismatch is covered by unit tests).
fn spec() -> BucketSpec {
    BucketSpec::exponential(4, 10).unwrap()
}

/// Full observable state of a histogram, for exact comparison.
fn hist_state(h: &Histogram) -> (Vec<u64>, u64, u64, Option<u64>, Option<u64>) {
    (h.bucket_counts(), h.count(), h.sum(), h.min(), h.max())
}

/// Records every value of every partition into one fresh histogram —
/// the single-threaded reference.
fn reference_histogram(partitions: &[Vec<u64>]) -> Histogram {
    let h = Histogram::with_spec(&spec());
    for part in partitions {
        for &v in part {
            h.record(v);
        }
    }
    h
}

/// One "worker" histogram per partition.
fn worker_histograms(partitions: &[Vec<u64>]) -> Vec<Histogram> {
    partitions
        .iter()
        .map(|part| {
            let h = Histogram::with_spec(&spec());
            for &v in part {
                h.record(v);
            }
            h
        })
        .collect()
}

proptest! {
    #[test]
    fn histogram_merge_matches_single_threaded_reference(
        partitions in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000, 0..40),
            1..6,
        ),
    ) {
        let reference = reference_histogram(&partitions);
        let target = Histogram::with_spec(&spec());
        for worker in worker_histograms(&partitions) {
            target.merge_from(&worker).unwrap();
        }
        prop_assert_eq!(hist_state(&target), hist_state(&reference));
    }

    #[test]
    fn histogram_merge_is_order_independent(
        partitions in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000, 0..40),
            2..6,
        ),
        rotation in 0usize..6,
    ) {
        let workers = worker_histograms(&partitions);
        let forward = Histogram::with_spec(&spec());
        for w in &workers {
            forward.merge_from(w).unwrap();
        }
        // Any permutation must agree; a rotation exercises the claim
        // without a permutation generator.
        let shift = rotation % workers.len();
        let rotated = Histogram::with_spec(&spec());
        for i in 0..workers.len() {
            rotated.merge_from(&workers[(i + shift) % workers.len()]).unwrap();
        }
        prop_assert_eq!(hist_state(&forward), hist_state(&rotated));
    }

    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u64..10_000, 0..40),
        b in proptest::collection::vec(0u64..10_000, 0..40),
        c in proptest::collection::vec(0u64..10_000, 0..40),
    ) {
        let parts = [a, b, c];
        // (a <- b) <- c
        let left = worker_histograms(&parts);
        left[0].merge_from(&left[1]).unwrap();
        left[0].merge_from(&left[2]).unwrap();
        // a <- (b <- c)
        let right = worker_histograms(&parts);
        right[1].merge_from(&right[2]).unwrap();
        right[0].merge_from(&right[1]).unwrap();
        prop_assert_eq!(hist_state(&left[0]), hist_state(&right[0]));
    }

    #[test]
    fn counter_merge_is_associative_and_total_preserving(
        adds in proptest::collection::vec(0u64..1_000_000, 1..8),
    ) {
        let total: u64 = adds.iter().sum();
        let counters: Vec<Counter> = adds
            .iter()
            .map(|&n| {
                let c = Counter::new();
                c.add(n);
                c
            })
            .collect();
        // Fold left-to-right and right-to-left into fresh targets.
        let fwd = Counter::new();
        for c in &counters {
            fwd.merge_from(c);
        }
        let rev = Counter::new();
        for c in counters.iter().rev() {
            rev.merge_from(c);
        }
        prop_assert_eq!(fwd.get(), total);
        prop_assert_eq!(rev.get(), total);
    }

    #[test]
    fn registry_merge_matches_single_threaded_reference(
        // Per-worker: counter bumps for two names and histogram values
        // for one name — the shape the engine's per-worker registries
        // take.
        workers in proptest::collection::vec(
            (0u64..1_000, 0u64..1_000, proptest::collection::vec(0u64..10_000, 0..20)),
            1..5,
        ),
        rotation in 0usize..5,
    ) {
        let clock = Arc::new(ManualClock::new());

        // Single-threaded reference: one registry sees everything.
        let reference = Registry::with_clock(clock.clone());
        for (hits, misses, values) in &workers {
            reference.counter("hits").add(*hits);
            reference.counter("misses").add(*misses);
            let h = reference.histogram("lat", &spec()).unwrap();
            for &v in values {
                h.record(v);
            }
        }

        // Per-worker registries, merged in two different orders.
        let per_worker: Vec<Registry> = workers
            .iter()
            .map(|(hits, misses, values)| {
                let r = Registry::with_clock(clock.clone());
                r.counter("hits").add(*hits);
                r.counter("misses").add(*misses);
                let h = r.histogram("lat", &spec()).unwrap();
                for &v in values {
                    h.record(v);
                }
                r
            })
            .collect();

        let merged = Registry::with_clock(clock.clone());
        for r in &per_worker {
            merged.merge_from(r).unwrap();
        }
        let shift = rotation % per_worker.len();
        let rotated = Registry::with_clock(clock);
        for i in 0..per_worker.len() {
            rotated.merge_from(&per_worker[(i + shift) % per_worker.len()]).unwrap();
        }

        for target in [&merged, &rotated] {
            prop_assert_eq!(target.counters(), reference.counters());
            let got = &target.histograms();
            let want = &reference.histograms();
            prop_assert_eq!(got.len(), want.len());
            for ((gn, gh), (wn, wh)) in got.iter().zip(want.iter()) {
                prop_assert_eq!(gn, wn);
                prop_assert_eq!(hist_state(gh), hist_state(wh));
            }
        }
    }
}
