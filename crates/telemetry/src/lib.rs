//! Zero-dependency observability for the H2P workspace.
//!
//! The engine runs paper-scale simulations in parallel and under
//! injected faults, but until this crate every hot path was a black
//! box. `h2p-telemetry` provides the measurement substrate the
//! ROADMAP's "as fast as the hardware allows" goal needs, with two
//! non-negotiable contracts:
//!
//! 1. **Determinism.** Nothing here reads the wall clock on its own:
//!    all timestamps come from an injectable [`Clock`] owned by the
//!    [`Registry`] (`h2p-lint` rule L6 machine-checks that no other
//!    crate calls `Instant::now`). Install a [`ManualClock`] and every
//!    histogram, report, and journal timestamp is a pure function of
//!    the test script.
//! 2. **Zero cost when off.** [`Registry::disabled()`] is a `None`
//!    behind one pointer: instrumented paths cost a branch, and the
//!    engine's results are bit-identical with telemetry on, off, or
//!    absent (asserted by `crates/core/tests/telemetry_transparency.rs`
//!    and budgeted by `bench_telemetry`).
//!
//! # Pieces
//!
//! * [`Counter`] — monotonic, always-live atomic counters; clones
//!   share the value, merges add.
//! * [`Histogram`] / [`BucketSpec`] — fixed-bucket integer histograms
//!   whose merge is exactly associative and order-independent, so
//!   per-worker recordings fold to the single-threaded truth bit for
//!   bit (property-tested in `tests/properties.rs`).
//! * [`Span`] — a guard that records its lifetime into a histogram,
//!   timed by the registry's clock.
//! * [`Journal`] / [`Event`] — a structured, low-rate event log
//!   (fault transitions, saturation warnings) serializing to JSONL
//!   through the vendored `serde_json`.
//! * [`Registry`] — the one handle instrumented code holds; cheap to
//!   clone into `h2p-exec` workers and mergeable across them.
//! * [`RunReport`] — end-of-run table summarizing all of the above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Lock-order manifest (h2p-lint L10). All three registry/journal
// tables are leaf locks: `merge_from` clones the source table out
// before locking the destination, so no two are ever held at once.
// h2p-lint: lock-order: counters, histograms, events
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

mod clock;
mod counter;
mod histogram;
mod journal;
mod registry;
mod report;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use counter::Counter;
pub use histogram::{BucketSpec, Histogram};
pub use journal::{Event, Journal};
pub use registry::{Registry, Span};
pub use report::{HistogramRow, RunReport};

use std::fmt;

/// Errors from telemetry construction and merging.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TelemetryError {
    /// A bucket layout was empty or not strictly ascending.
    InvalidBuckets {
        /// What the layout violated.
        reason: &'static str,
    },
    /// Two histograms (or registries holding them under one name)
    /// have different bucket layouts and cannot merge.
    MergeShapeMismatch,
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::InvalidBuckets { reason } => {
                write!(f, "invalid histogram buckets: {reason}")
            }
            TelemetryError::MergeShapeMismatch => {
                f.write_str("histogram bucket layouts differ; cannot merge")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = TelemetryError::InvalidBuckets { reason: "empty" };
        assert!(e.to_string().contains("empty"));
        assert!(TelemetryError::MergeShapeMismatch
            .to_string()
            .contains("merge"));
    }
}
