//! Fixed-bucket histograms with order-independent merge.
//!
//! All recorded values are integers (the workspace records nanosecond
//! durations and event sizes), so every aggregate — bucket counts,
//! total, sum, min, max — combines with integer addition or min/max.
//! Those operations are associative and commutative, which gives the
//! merge its contract: folding any partition of a recording stream, in
//! any order, reproduces the single-threaded aggregate *exactly*, bit
//! for bit. The property tests in `tests/properties.rs` pin this.

use crate::TelemetryError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The bucket layout of a histogram: strictly ascending upper bounds
/// (inclusive), plus an implicit overflow bucket above the last bound.
///
/// Two histograms merge only if their specs are identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketSpec {
    bounds: Arc<Vec<u64>>,
}

impl BucketSpec {
    /// A spec from explicit inclusive upper bounds.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::InvalidBuckets`] if `bounds` is empty or not
    /// strictly ascending.
    pub fn new(bounds: Vec<u64>) -> Result<Self, TelemetryError> {
        if bounds.is_empty() {
            return Err(TelemetryError::InvalidBuckets {
                reason: "bucket bounds must be non-empty",
            });
        }
        if bounds.windows(2).any(|w| w[1] <= w[0]) {
            return Err(TelemetryError::InvalidBuckets {
                reason: "bucket bounds must be strictly ascending",
            });
        }
        Ok(BucketSpec {
            bounds: Arc::new(bounds),
        })
    }

    /// Geometric bounds `first, first*2, first*4, …` (`count` of them,
    /// saturating at `u64::MAX`).
    ///
    /// # Errors
    ///
    /// [`TelemetryError::InvalidBuckets`] if `first` is zero or
    /// `count` is zero (saturation can also collapse neighbours, which
    /// is rejected the same way).
    pub fn exponential(first: u64, count: usize) -> Result<Self, TelemetryError> {
        if first == 0 || count == 0 {
            return Err(TelemetryError::InvalidBuckets {
                reason: "exponential spec needs a positive first bound and count",
            });
        }
        let mut bounds = Vec::with_capacity(count);
        let mut bound = first;
        for _ in 0..count {
            bounds.push(bound);
            bound = bound.saturating_mul(2);
        }
        bounds.dedup();
        BucketSpec::new(bounds)
    }

    /// The workspace default for span durations: 1 µs to ~1.1 s in
    /// doubling buckets (21 bounds), overflow above.
    #[must_use]
    pub fn duration_default() -> Self {
        // 1_000 ns × 2^k is strictly ascending and never saturates for
        // k < 44, so the constructor cannot fail here.
        BucketSpec::exponential(1_000, 21).unwrap_or_else(|_| BucketSpec {
            bounds: Arc::new(vec![1_000]),
        })
    }

    /// The workspace default for event *rates* (events per second):
    /// 1 /s to ~67 M/s in doubling buckets (27 bounds), overflow
    /// above. Used by the engine's `engine.events_per_sec` histogram,
    /// which records how many circulation evaluations each control
    /// interval performed per wall-clock second.
    #[must_use]
    pub fn rate_default() -> Self {
        // 1 × 2^k is strictly ascending and never saturates for
        // k < 64, so the constructor cannot fail here.
        BucketSpec::exponential(1, 27).unwrap_or_else(|_| BucketSpec {
            bounds: Arc::new(vec![1]),
        })
    }

    /// The inclusive upper bounds (without the overflow bucket).
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Index of the bucket `value` lands in (`bounds.len()` = overflow).
    fn bucket_of(&self, value: u64) -> usize {
        self.bounds.partition_point(|&b| b < value)
    }
}

/// Interior of an enabled histogram (shared across clones).
#[derive(Debug)]
struct HistogramCore {
    spec: BucketSpec,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A thread-safe fixed-bucket histogram handle.
///
/// Clones share the same storage. A *disabled* histogram (from
/// [`Histogram::disabled`] or a disabled
/// [`Registry`](crate::Registry)) drops every record on the floor at
/// the cost of one branch — the hot-path contract the engine's
/// "telemetry off is free" guarantee rests on.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// An enabled histogram with the given bucket layout.
    #[must_use]
    pub fn with_spec(spec: &BucketSpec) -> Self {
        let counts = (0..=spec.bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Some(Arc::new(HistogramCore {
                spec: spec.clone(),
                counts,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            })),
        }
    }

    /// A no-op histogram: records are dropped, snapshots are empty.
    #[must_use]
    pub fn disabled() -> Self {
        Histogram { core: None }
    }

    /// Whether records are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        let Some(core) = &self.core else {
            return;
        };
        let bucket = core.spec.bucket_of(value);
        #[cfg(feature = "sanitize")]
        debug_assert!(
            bucket < core.counts.len(),
            "bucket index out of range: {bucket} >= {}",
            core.counts.len()
        );
        if let Some(slot) = core.counts.get(bucket) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded values (wrapping above `u64::MAX`; ~584 years
    /// of nanoseconds, unreachable for span data).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Smallest recorded value, `None` before any record.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        let core = self.core.as_ref()?;
        if core.count.load(Ordering::Relaxed) == 0 {
            None
        } else {
            Some(core.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded value, `None` before any record.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        let core = self.core.as_ref()?;
        if core.count.load(Ordering::Relaxed) == 0 {
            None
        } else {
            Some(core.max.load(Ordering::Relaxed))
        }
    }

    /// Mean of recorded values, `None` before any record.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            None
        } else {
            Some(self.sum() as f64 / count as f64)
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`) from
    /// the bucket layout: the inclusive bound of the bucket holding the
    /// rank, or the recorded maximum for the overflow bucket. `None`
    /// before any record.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let core = self.core.as_ref()?;
        let count = core.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in 1..=count; exact for q*count < 2^53 (always, for
        // span counts), so the truncating cast cannot misplace a rank.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, slot) in core.counts.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                return match core.spec.bounds.get(i) {
                    Some(&bound) => Some(bound),
                    None => self.max(), // overflow bucket
                };
            }
        }
        self.max()
    }

    /// The bucket layout, `None` for a disabled histogram.
    #[must_use]
    pub fn spec(&self) -> Option<&BucketSpec> {
        self.core.as_ref().map(|c| &c.spec)
    }

    /// Per-bucket counts (including the trailing overflow bucket),
    /// empty for a disabled histogram.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core.as_ref().map_or_else(Vec::new, |c| {
            c.counts.iter().map(|s| s.load(Ordering::Relaxed)).collect()
        })
    }

    /// Whether two handles share the same underlying storage.
    #[must_use]
    pub fn same_as(&self, other: &Histogram) -> bool {
        match (&self.core, &other.core) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Folds another histogram's records into this one (the source is
    /// left untouched). Disabled histograms merge as empty on either
    /// side. Associative and order-independent — see the module docs.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::MergeShapeMismatch`] if both sides are
    /// enabled with different bucket layouts.
    pub fn merge_from(&self, other: &Histogram) -> Result<(), TelemetryError> {
        let (Some(dst), Some(src)) = (&self.core, &other.core) else {
            return Ok(()); // nothing to add, or nowhere to put it
        };
        if dst.spec != src.spec {
            return Err(TelemetryError::MergeShapeMismatch);
        }
        if src.count.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        for (d, s) in dst.counts.iter().zip(&src.counts) {
            d.fetch_add(s.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        dst.count
            .fetch_add(src.count.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.sum
            .fetch_add(src.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.min
            .fetch_min(src.min.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.max
            .fetch_max(src.max.load(Ordering::Relaxed), Ordering::Relaxed);
        #[cfg(feature = "sanitize")]
        debug_assert_eq!(
            dst.counts
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .sum::<u64>(),
            dst.count.load(Ordering::Relaxed),
            "bucket-count conservation violated by merge"
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        assert!(BucketSpec::new(vec![]).is_err());
        assert!(BucketSpec::new(vec![5, 5]).is_err());
        assert!(BucketSpec::new(vec![5, 4]).is_err());
        assert!(BucketSpec::new(vec![1, 2, 3]).is_ok());
        assert!(BucketSpec::exponential(0, 4).is_err());
        assert!(BucketSpec::exponential(1, 0).is_err());
        let spec = BucketSpec::exponential(10, 4).unwrap();
        assert_eq!(spec.bounds(), &[10, 20, 40, 80]);
        assert!(!BucketSpec::duration_default().bounds().is_empty());
    }

    #[test]
    fn records_land_in_the_right_buckets() {
        let spec = BucketSpec::new(vec![10, 100]).unwrap();
        let h = Histogram::with_spec(&spec);
        for v in [0, 10, 11, 100, 101, 5_000] {
            h.record(v);
        }
        // Buckets: <=10, <=100, overflow.
        assert_eq!(h.bucket_counts(), vec![2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5_222);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(5_000));
        let mean = h.mean().unwrap();
        assert!((mean - 5_222.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let spec = BucketSpec::new(vec![10, 100, 1_000]).unwrap();
        let h = Histogram::with_spec(&spec);
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for _ in 0..90 {
            h.record(7);
        }
        for _ in 0..9 {
            h.record(70);
        }
        h.record(9_999);
        assert_eq!(h.quantile_upper_bound(0.5), Some(10));
        assert_eq!(h.quantile_upper_bound(0.95), Some(100));
        assert_eq!(h.quantile_upper_bound(1.0), Some(9_999), "overflow -> max");
        assert_eq!(h.quantile_upper_bound(0.0), Some(10), "rank clamps to 1");
    }

    #[test]
    fn disabled_histogram_is_inert() {
        let h = Histogram::disabled();
        assert!(!h.is_enabled());
        h.record(5);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        assert!(h.bucket_counts().is_empty());
        assert!(h.spec().is_none());
        // Merging with disabled sides is a no-op, not an error.
        let enabled = Histogram::with_spec(&BucketSpec::new(vec![1]).unwrap());
        enabled.record(3);
        assert!(h.merge_from(&enabled).is_ok());
        assert!(enabled.merge_from(&h).is_ok());
        assert_eq!(enabled.count(), 1);
    }

    #[test]
    fn merge_requires_matching_spec() {
        let a = Histogram::with_spec(&BucketSpec::new(vec![1, 2]).unwrap());
        let b = Histogram::with_spec(&BucketSpec::new(vec![1, 3]).unwrap());
        assert!(matches!(
            a.merge_from(&b),
            Err(TelemetryError::MergeShapeMismatch)
        ));
    }

    #[test]
    fn merge_matches_single_stream() {
        let spec = BucketSpec::exponential(1, 8).unwrap();
        let reference = Histogram::with_spec(&spec);
        let a = Histogram::with_spec(&spec);
        let b = Histogram::with_spec(&spec);
        for v in 0..200u64 {
            reference.record(v * 3);
            if v % 2 == 0 {
                a.record(v * 3);
            } else {
                b.record(v * 3);
            }
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.bucket_counts(), reference.bucket_counts());
        assert_eq!(a.count(), reference.count());
        assert_eq!(a.sum(), reference.sum());
        assert_eq!(a.min(), reference.min());
        assert_eq!(a.max(), reference.max());
    }

    #[test]
    fn clones_share_storage() {
        let h = Histogram::with_spec(&BucketSpec::new(vec![10]).unwrap());
        let alias = h.clone();
        alias.record(1);
        assert_eq!(h.count(), 1);
        assert!(h.same_as(&alias));
        assert!(!h.same_as(&Histogram::disabled()));
    }
}
