//! End-of-run summarization: [`RunReport`] snapshots a
//! [`Registry`](crate::Registry) and renders a human-readable table.

use crate::histogram::Histogram;
use crate::registry::Registry;
use std::fmt;

/// One histogram row of a [`RunReport`].
#[derive(Debug, Clone)]
pub struct HistogramRow {
    /// Registered histogram name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Mean recorded value (nanoseconds for span histograms).
    pub mean: f64,
    /// Bucket upper-bound estimate of the median.
    pub p50: u64,
    /// Bucket upper-bound estimate of the 95th percentile.
    pub p95: u64,
    /// Largest recorded value.
    pub max: u64,
}

/// An immutable end-of-run summary: counters, histogram statistics,
/// and the journal length, captured at construction time.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Named counter totals, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Histogram summary rows, name-sorted.
    pub histograms: Vec<HistogramRow>,
    /// Number of journal events recorded.
    pub journal_len: usize,
}

impl RunReport {
    /// Snapshots `registry` now. A disabled registry yields an empty
    /// report.
    #[must_use]
    pub fn from_registry(registry: &Registry) -> Self {
        let histograms = registry
            .histograms()
            .into_iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| HistogramRow {
                name,
                count: h.count(),
                mean: h.mean().unwrap_or(0.0),
                p50: h.quantile_upper_bound(0.5).unwrap_or(0),
                p95: h.quantile_upper_bound(0.95).unwrap_or(0),
                max: h.max().unwrap_or(0),
            })
            .collect();
        RunReport {
            counters: registry.counters(),
            histograms,
            journal_len: registry.journal_events().len(),
        }
    }

    /// Whether the report has nothing to show.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.journal_len == 0
    }

    /// Renders the report as the table `Display` prints.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_string()
    }
}

/// Renders a histogram statistic: duration histograms (names ending in
/// `_nanos`, the span-histogram convention) get human time units,
/// plain value histograms get bare numbers.
fn fmt_stat(value: f64, duration: bool) -> String {
    if duration {
        fmt_nanos(value)
    } else if value.fract().abs() < 1e-9 {
        format!("{value:.0}")
    } else {
        format!("{value:.1}")
    }
}

/// Nanoseconds as a compact human unit (ns/µs/ms/s).
fn fmt_nanos(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.0}ns")
    } else if nanos < 1e6 {
        format!("{:.1}us", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2}ms", nanos / 1e6)
    } else {
        format!("{:.3}s", nanos / 1e9)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "telemetry: no observations recorded");
        }
        writeln!(f, "=== telemetry run report ===")?;
        if !self.counters.is_empty() {
            let width = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            writeln!(f, "counters:")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<width$}  {value}")?;
            }
        }
        if !self.histograms.is_empty() {
            let width = self
                .histograms
                .iter()
                .map(|r| r.name.len())
                .max()
                .unwrap_or(0)
                .max("histogram".len());
            writeln!(
                f,
                "  {:<width$}  {:>10}  {:>9}  {:>9}  {:>9}  {:>9}",
                "histogram", "count", "mean", "p50", "p95", "max"
            )?;
            for row in &self.histograms {
                let duration = row.name.ends_with("_nanos");
                #[allow(clippy::cast_precision_loss)]
                writeln!(
                    f,
                    "  {:<width$}  {:>10}  {:>9}  {:>9}  {:>9}  {:>9}",
                    row.name,
                    row.count,
                    fmt_stat(row.mean, duration),
                    fmt_stat(row.p50 as f64, duration),
                    fmt_stat(row.p95 as f64, duration),
                    fmt_stat(row.max as f64, duration),
                )?;
            }
        }
        writeln!(f, "journal events: {}", self.journal_len)
    }
}

/// Convenience: summary row straight from a free-standing histogram.
impl HistogramRow {
    /// Builds a row from a histogram handle (zeros when empty).
    #[must_use]
    pub fn from_histogram(name: impl Into<String>, h: &Histogram) -> Self {
        HistogramRow {
            name: name.into(),
            count: h.count(),
            mean: h.mean().unwrap_or(0.0),
            p50: h.quantile_upper_bound(0.5).unwrap_or(0),
            p95: h.quantile_upper_bound(0.95).unwrap_or(0),
            max: h.max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::BucketSpec;
    use crate::{Event, ManualClock};
    use std::sync::Arc;

    #[test]
    fn empty_report_says_so() {
        let report = RunReport::from_registry(&Registry::disabled());
        assert!(report.is_empty());
        assert!(report.render().contains("no observations"));
    }

    #[test]
    fn report_renders_all_sections() {
        let clock = Arc::new(ManualClock::new());
        let registry = Registry::with_clock(clock.clone());
        registry.counter("cache.hits").add(12);
        let hist = registry
            .histogram("step_wall_nanos", &BucketSpec::duration_default())
            .unwrap();
        let span = registry.span(&hist);
        clock.advance_nanos(1_500_000);
        span.finish();
        registry.record_event(Event::new("milestone"));

        let report = RunReport::from_registry(&registry);
        assert_eq!(report.counters, vec![("cache.hits".to_owned(), 12)]);
        assert_eq!(report.histograms.len(), 1);
        assert_eq!(report.histograms[0].count, 1);
        assert_eq!(report.journal_len, 1);

        let text = report.render();
        assert!(text.contains("cache.hits"));
        assert!(text.contains("step_wall_nanos"));
        assert!(text.contains("journal events: 1"));
        // 1.5e6 ns mean renders in milliseconds.
        assert!(text.contains("ms"), "got: {text}");
    }

    #[test]
    fn non_duration_histograms_render_bare_numbers() {
        let registry = Registry::new();
        let hist = registry
            .histogram(
                "pool.tasks_per_lane",
                &BucketSpec::exponential(1, 8).unwrap(),
            )
            .unwrap();
        hist.record(5);
        hist.record(6);
        let text = RunReport::from_registry(&registry).render();
        assert!(text.contains("5.5"), "mean renders bare: {text}");
        assert!(!text.contains("ns"), "no time units on counts: {text}");
    }

    #[test]
    fn nanos_formatting_scales() {
        assert_eq!(fmt_nanos(500.0), "500ns");
        assert_eq!(fmt_nanos(2_500.0), "2.5us");
        assert_eq!(fmt_nanos(3_250_000.0), "3.25ms");
        assert_eq!(fmt_nanos(1.25e9), "1.250s");
    }

    #[test]
    fn empty_histograms_are_skipped() {
        let registry = Registry::new();
        let _ = registry
            .histogram("never_hit", &BucketSpec::duration_default())
            .unwrap();
        let report = RunReport::from_registry(&registry);
        assert!(report.histograms.is_empty());
        let row = HistogramRow::from_histogram("h", &Histogram::disabled());
        assert_eq!(row.count, 0);
    }
}
