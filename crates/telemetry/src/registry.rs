//! The [`Registry`]: the one handle instrumented code holds.
//!
//! A registry is either *enabled* — it owns a clock, name tables for
//! counters and histograms, and a journal — or *disabled*
//! ([`Registry::disabled`]), in which case it is a single `None` and
//! every observation call is a branch and a return. Cloning is one
//! `Arc` bump either way, so the engine hands clones to `h2p-exec`
//! workers freely.

use crate::clock::{Clock, MonotonicClock};
use crate::counter::Counter;
use crate::histogram::{BucketSpec, Histogram};
use crate::journal::{Event, Journal};
use crate::TelemetryError;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Interior of an enabled registry.
#[derive(Debug)]
struct Inner {
    clock: Arc<dyn Clock>,
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    journal: Journal,
}

/// A cheap-to-clone observability handle (see the module docs).
#[derive(Clone, Debug)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled registry timed by the production
    /// [`MonotonicClock`].
    #[must_use]
    pub fn new() -> Self {
        Registry::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// An enabled registry timed by an injected clock (a
    /// [`ManualClock`](crate::ManualClock) makes every recorded
    /// duration deterministic).
    #[must_use]
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                journal: Journal::new(),
            })),
        }
    }

    /// The no-op registry: nothing is named, journaled, or timed.
    /// Counters minted by it still count (they are always live) but
    /// are invisible to reports; histograms it mints are inert.
    #[must_use]
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether observations are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The named counter, created at zero on first use. Repeated calls
    /// with the same name return handles sharing one value. On a
    /// disabled registry every call mints a fresh, unnamed (but live)
    /// counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::new();
        };
        lock(&inner.counters)
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers an existing counter handle under `name`, so
    /// always-on statistics (e.g. the simulator's cache counters)
    /// appear in reports. Overwrites any previous counter with that
    /// name. No-op on a disabled registry.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        if let Some(inner) = &self.inner {
            lock(&inner.counters).insert(name.to_owned(), counter.clone());
        }
    }

    /// The named histogram, created from `spec` on first use. On a
    /// disabled registry returns [`Histogram::disabled`].
    ///
    /// # Errors
    ///
    /// [`TelemetryError::MergeShapeMismatch`] if the name already
    /// exists with a different bucket layout.
    pub fn histogram(&self, name: &str, spec: &BucketSpec) -> Result<Histogram, TelemetryError> {
        let Some(inner) = &self.inner else {
            return Ok(Histogram::disabled());
        };
        let mut table = lock(&inner.histograms);
        if let Some(existing) = table.get(name) {
            if existing.spec() != Some(spec) {
                return Err(TelemetryError::MergeShapeMismatch);
            }
            return Ok(existing.clone());
        }
        let hist = Histogram::with_spec(spec);
        table.insert(name.to_owned(), hist.clone());
        Ok(hist)
    }

    /// The clock reading, or 0 on a disabled registry (no clock is
    /// consulted, keeping the disabled path free of time syscalls).
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_nanos())
    }

    /// Starts a span against `histogram`; the span records its
    /// duration there when dropped (or explicitly
    /// [`finish`](Span::finish)ed). Inert — no clock read, no record —
    /// when the registry is disabled.
    #[must_use]
    pub fn span(&self, histogram: &Histogram) -> Span {
        if self.inner.is_none() || !histogram.is_enabled() {
            return Span {
                registry: Registry::disabled(),
                histogram: Histogram::disabled(),
                start_nanos: 0,
            };
        }
        Span {
            registry: self.clone(),
            histogram: histogram.clone(),
            start_nanos: self.now_nanos(),
        }
    }

    /// Stamps `event` with the current clock reading and appends it to
    /// the journal. Dropped on a disabled registry.
    pub fn record_event(&self, mut event: Event) {
        if let Some(inner) = &self.inner {
            event.t_nanos = inner.clock.now_nanos();
            inner.journal.push(event);
        }
    }

    /// Snapshot of all named counters, name-sorted.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            lock(&inner.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect()
        })
    }

    /// Snapshot of all named histogram handles, name-sorted. The
    /// handles share storage with the registry's, so they reflect
    /// later records too.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            lock(&inner.histograms)
                .iter()
                .map(|(name, h)| (name.clone(), h.clone()))
                .collect()
        })
    }

    /// Snapshot of the journal, in recording order. Empty on a
    /// disabled registry.
    #[must_use]
    pub fn journal_events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.journal.events())
    }

    /// The journal as JSON Lines (empty string on a disabled
    /// registry).
    ///
    /// # Errors
    ///
    /// Propagates [`serde_json::Error`] (infallible for tree-shaped
    /// events).
    pub fn journal_jsonl(&self) -> Result<String, serde_json::Error> {
        match &self.inner {
            Some(inner) => inner.journal.to_jsonl(),
            None => Ok(String::new()),
        }
    }

    /// Folds another registry's observations into this one: counters
    /// add by name, histograms merge by name (created here on first
    /// sight), journals append. Disabled registries merge as empty on
    /// either side. With integer aggregates throughout, merging
    /// per-worker registries in any order reproduces a
    /// single-threaded recording exactly (pinned by the property
    /// tests).
    ///
    /// # Errors
    ///
    /// [`TelemetryError::MergeShapeMismatch`] if a histogram name
    /// collides across different bucket layouts.
    pub fn merge_from(&self, other: &Registry) -> Result<(), TelemetryError> {
        let (Some(dst), Some(src)) = (&self.inner, &other.inner) else {
            return Ok(());
        };
        if Arc::ptr_eq(dst, src) {
            return Ok(()); // self-merge would double every aggregate
        }
        {
            let src_counters = lock(&src.counters).clone();
            let mut dst_counters = lock(&dst.counters);
            for (name, counter) in src_counters {
                dst_counters.entry(name).or_default().merge_from(&counter);
            }
        }
        {
            let src_hists = lock(&src.histograms).clone();
            let mut dst_hists = lock(&dst.histograms);
            for (name, hist) in src_hists {
                match dst_hists.get(&name) {
                    Some(existing) => existing.merge_from(&hist)?,
                    None => {
                        let fresh = match hist.spec() {
                            Some(spec) => Histogram::with_spec(spec),
                            None => continue,
                        };
                        fresh.merge_from(&hist)?;
                        dst_hists.insert(name, fresh);
                    }
                }
            }
        }
        dst.journal.merge_from(&src.journal);
        Ok(())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::disabled()
    }
}

/// A running span: records `now - start` into its histogram when
/// finished or dropped. Inert if started on a disabled registry.
#[derive(Debug)]
pub struct Span {
    registry: Registry,
    histogram: Histogram,
    start_nanos: u64,
}

impl Span {
    /// Ends the span now, recording its duration.
    pub fn finish(self) {
        // Recording happens in Drop; consuming self is the API.
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.histogram.is_enabled() {
            let elapsed = self.registry.now_nanos().saturating_sub(self.start_nanos);
            self.histogram.record(elapsed);
        }
    }
}

/// Telemetry locks never carry cross-call invariants worth dying for:
/// take the data through poisoning rather than losing the run's
/// numbers to an unrelated panic.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // h2p-lint: allow(L10): generic poison-tolerant helper; every call site carries the manifest order
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;

    fn manual() -> (Arc<ManualClock>, Registry) {
        let clock = Arc::new(ManualClock::new());
        let registry = Registry::with_clock(clock.clone());
        (clock, registry)
    }

    #[test]
    fn named_counters_share_and_report() {
        let registry = Registry::new();
        assert!(registry.is_enabled());
        let a = registry.counter("engine.steps");
        let b = registry.counter("engine.steps");
        assert!(a.same_as(&b));
        a.add(3);
        assert_eq!(registry.counters(), vec![("engine.steps".to_owned(), 3)]);
    }

    #[test]
    fn disabled_registry_is_observation_free() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("x");
        c.incr();
        assert_eq!(c.get(), 1, "counters stay live");
        assert!(registry.counters().is_empty(), "but are not observed");
        let spec = BucketSpec::duration_default();
        let h = registry.histogram("h", &spec).unwrap();
        assert!(!h.is_enabled());
        registry.record_event(Event::new("ignored"));
        assert!(registry.journal_events().is_empty());
        assert_eq!(registry.journal_jsonl().unwrap(), "");
        assert_eq!(registry.now_nanos(), 0);
    }

    #[test]
    fn register_counter_exposes_external_handles() {
        let registry = Registry::new();
        let external = Counter::new();
        external.add(7);
        registry.register_counter("cache.hits", &external);
        assert_eq!(registry.counters(), vec![("cache.hits".to_owned(), 7)]);
        external.incr();
        assert_eq!(registry.counters()[0].1, 8, "handle is shared, not copied");
    }

    #[test]
    fn histogram_name_collision_with_new_spec_errors() {
        let registry = Registry::new();
        let a = BucketSpec::new(vec![1, 2]).unwrap();
        let b = BucketSpec::new(vec![1, 3]).unwrap();
        let h = registry.histogram("lat", &a).unwrap();
        assert!(registry.histogram("lat", &a).unwrap().same_as(&h));
        assert!(registry.histogram("lat", &b).is_err());
    }

    #[test]
    fn spans_record_scripted_durations() {
        let (clock, registry) = manual();
        let hist = registry
            .histogram("step", &BucketSpec::duration_default())
            .unwrap();
        let span = registry.span(&hist);
        clock.advance_nanos(2_500);
        span.finish();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 2_500);
        {
            let _implicit = registry.span(&hist);
            clock.advance_nanos(100);
        } // drop records too
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 2_600);
    }

    #[test]
    fn events_are_clock_stamped() {
        let (clock, registry) = manual();
        clock.set_nanos(42);
        registry.record_event(Event::new("fault_activated").with("circulation", 3u64));
        let events = registry.journal_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t_nanos, 42);
        assert!(registry
            .journal_jsonl()
            .unwrap()
            .contains("fault_activated"));
    }

    #[test]
    fn merge_combines_all_surfaces() {
        let (_, a) = manual();
        let (clock_b, b) = manual();
        a.counter("tasks").add(2);
        b.counter("tasks").add(5);
        b.counter("only_b").incr();
        let spec = BucketSpec::new(vec![10, 100]).unwrap();
        a.histogram("lat", &spec).unwrap().record(5);
        b.histogram("lat", &spec).unwrap().record(50);
        b.histogram("only_b_lat", &spec).unwrap().record(7);
        clock_b.set_nanos(9);
        b.record_event(Event::new("beta"));

        a.merge_from(&b).unwrap();
        let counters: std::collections::BTreeMap<_, _> = a.counters().into_iter().collect();
        assert_eq!(counters["tasks"], 7);
        assert_eq!(counters["only_b"], 1);
        let hists: std::collections::BTreeMap<_, _> = a.histograms().into_iter().collect();
        assert_eq!(hists["lat"].count(), 2);
        assert_eq!(hists["only_b_lat"].count(), 1);
        assert_eq!(a.journal_events().len(), 1);

        // Merging with disabled sides is a no-op; self-merge is too.
        a.merge_from(&Registry::disabled()).unwrap();
        Registry::disabled().merge_from(&a).unwrap();
        a.merge_from(&a.clone()).unwrap();
        assert_eq!(
            a.counters().iter().find(|(n, _)| n == "tasks").unwrap().1,
            7,
            "self-merge must not double-count"
        );
    }
}
