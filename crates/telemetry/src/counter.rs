//! Monotonic event counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonic, thread-safe event counter.
///
/// A `Counter` is an `Arc` around one atomic: cloning shares the value,
/// so a handle can be resolved once and bumped from any worker thread.
/// Counters are *always live* — even handles minted by a disabled
/// [`Registry`](crate::Registry) count (a relaxed atomic add is far
/// below measurement noise on every instrumented path), which lets
/// always-on statistics like the simulator's cache stats ride on the
/// same type. What "disabled" turns off is *observation*: a disabled
/// registry holds no name table, so nothing is reported or journaled.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one event.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Folds another counter's total into this one (the other counter
    /// is left untouched). Merging is associative and commutative:
    /// integer addition makes per-worker counters combine to exactly
    /// the single-threaded total in any order.
    pub fn merge_from(&self, other: &Counter) {
        self.add(other.get());
    }

    /// Whether two handles share the same underlying atomic.
    #[must_use]
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.value, &other.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_shares() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let alias = c.clone();
        alias.incr();
        assert_eq!(c.get(), 6, "clones share the value");
        assert!(c.same_as(&alias));
    }

    #[test]
    fn merge_is_additive() {
        let a = Counter::new();
        let b = Counter::new();
        a.add(3);
        b.add(7);
        a.merge_from(&b);
        assert_eq!(a.get(), 10);
        assert_eq!(b.get(), 7, "source is untouched");
        assert!(!a.same_as(&b));
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
