//! The injectable time source behind every span timer and journal
//! timestamp.
//!
//! Nothing in the workspace reads the wall clock directly (the
//! `h2p-lint` L6 rule machine-checks that): timed code paths take their
//! timestamps from a [`Clock`] owned by the
//! [`Registry`](crate::Registry). Production harnesses install a
//! [`MonotonicClock`]; deterministic tests and simulated runs install a
//! [`ManualClock`] and advance it explicitly, so recorded durations —
//! and therefore histograms, reports and journal timestamps — are pure
//! functions of the test script.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// Implementations must be monotone (`now_nanos` never decreases) and
/// cheap — the engine reads the clock on hot paths when telemetry is
/// enabled.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since the clock's own origin (not an epoch).
    fn now_nanos(&self) -> u64;
}

/// The production clock: wall time from [`std::time::Instant`],
/// rebased to the clock's construction so readings start near zero.
///
/// This is the **only** place in the workspace allowed to call
/// `Instant::now` (enforced by `h2p-lint` rule L6) — everything else
/// injects a `Clock` so simulated runs stay deterministic.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn new() -> Self {
        MonotonicClock {
            // h2p-lint: allow(L6): this is the Clock impl the rule exempts
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // h2p-lint: allow(L6): this is the Clock impl the rule exempts
        let nanos = Instant::now().duration_since(self.origin).as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }
}

impl fmt::Debug for MonotonicClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonotonicClock").finish_non_exhaustive()
    }
}

/// A deterministic clock driven by the caller: reads return whatever
/// the test (or the simulation loop) last set, so span durations are
/// scripted, not measured.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    #[must_use]
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A clock frozen at `nanos`.
    #[must_use]
    pub fn starting_at(nanos: u64) -> Self {
        ManualClock {
            nanos: AtomicU64::new(nanos),
        }
    }

    /// Moves the clock to an absolute reading. Monotonicity is the
    /// caller's contract; the clock itself accepts any value.
    pub fn set_nanos(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::Relaxed);
    }

    /// Advances the clock by `delta` nanoseconds (saturating).
    pub fn advance_nanos(&self, delta: u64) {
        // `fetch_update` with saturating add: a scripted clock must
        // never wrap backwards past a reader.
        let _ = self
            .nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(delta))
            });
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_scripted() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.set_nanos(1_000);
        assert_eq!(clock.now_nanos(), 1_000);
        clock.advance_nanos(500);
        assert_eq!(clock.now_nanos(), 1_500);
        clock.advance_nanos(u64::MAX);
        assert_eq!(clock.now_nanos(), u64::MAX, "advance saturates");
        let offset = ManualClock::starting_at(42);
        assert_eq!(offset.now_nanos(), 42);
    }
}
