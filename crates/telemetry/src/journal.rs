//! The structured run journal: an ordered list of discrete events
//! (fault activations, saturation warnings, run milestones) that
//! serializes to JSON Lines.
//!
//! The journal is for *events*, not samples — low-rate, semantically
//! meaningful state transitions. High-rate measurements belong in
//! counters and histograms; the journal trades throughput for
//! structure (every event carries named fields and a clock timestamp).

use serde_json::Value;
use std::io::Write;
use std::sync::{Mutex, PoisonError};

/// One journal entry: a named event, its clock timestamp, and ordered
/// key/value fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event kind, e.g. `"fault_activated"`.
    pub name: String,
    /// Timestamp from the registry's [`Clock`](crate::Clock), in
    /// nanoseconds since the clock's origin.
    pub t_nanos: u64,
    /// Ordered event fields (insertion order is serialization order).
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// A fresh event with no fields; the registry stamps `t_nanos`
    /// when the event is recorded.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Event {
            name: name.into(),
            t_nanos: 0,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style). Accepts anything the vendored
    /// data model can represent (integers, floats, booleans, strings,
    /// vectors, options, or a prebuilt [`Value`]).
    #[must_use]
    pub fn with<T: serde::Serialize>(mut self, key: impl Into<String>, value: T) -> Self {
        self.fields.push((key.into(), serde_json::to_value(&value)));
        self
    }

    /// The value of the first field named `key`, if any.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// The event as one JSON object:
    /// `{"event": name, "t_nanos": …, <fields…>}`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut entries = Vec::with_capacity(2 + self.fields.len());
        entries.push(("event".to_owned(), Value::String(self.name.clone())));
        entries.push(("t_nanos".to_owned(), serde_json::to_value(&self.t_nanos)));
        entries.extend(self.fields.iter().cloned());
        Value::Object(entries)
    }
}

/// An append-only, thread-safe event log.
#[derive(Debug, Default)]
pub struct Journal {
    events: Mutex<Vec<Event>>,
}

impl Journal {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends one event (already timestamped by the caller).
    pub fn push(&self, event: Event) {
        self.lock().push(event);
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the journal holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A snapshot of all events, in recording order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Folds another journal's events into this one, preserving each
    /// journal's internal order (other's events append after ours).
    pub fn merge_from(&self, other: &Journal) {
        let imported = other.events();
        self.lock().extend(imported);
    }

    /// The journal as JSON Lines: one compact JSON object per event,
    /// newline-terminated.
    ///
    /// # Errors
    ///
    /// Propagates [`serde_json::Error`] from serialization (infallible
    /// for tree-shaped events; kept fallible to mirror the API).
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for event in self.lock().iter() {
            out.push_str(&serde_json::to_string(&event.to_json())?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Writes the journal as JSON Lines into `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (and serialization errors, infallible
    /// in practice) as [`serde_json::Error`].
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> Result<(), serde_json::Error> {
        let text = self.to_jsonl()?;
        writer.write_all(text.as_bytes())?;
        writer.flush()?;
        Ok(())
    }

    /// A journal is observability plumbing: a panicked writer thread
    /// must not take event reporting down with it, so poisoning is
    /// ignored and the (always internally consistent) list is used
    /// as-is.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_build_and_query() {
        let e = Event::new("fault_activated")
            .with("class", "pump")
            .with("circulation", 3u64);
        assert_eq!(e.name, "fault_activated");
        assert_eq!(e.field("class"), Some(&Value::String("pump".to_owned())));
        assert!(e.field("missing").is_none());
    }

    #[test]
    fn journal_serializes_to_jsonl() {
        let journal = Journal::new();
        assert!(journal.is_empty());
        let mut e = Event::new("alpha").with("k", 1u64);
        e.t_nanos = 7;
        journal.push(e);
        journal.push(Event::new("beta"));
        assert_eq!(journal.len(), 2);

        let text = journal.to_jsonl().unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let parsed: Value = serde_json::from_str(lines[0]).unwrap();
        let entries = parsed.as_object().unwrap();
        assert_eq!(
            entries[0],
            ("event".to_owned(), Value::String("alpha".to_owned()))
        );
        assert!(lines[1].contains("\"beta\""));

        let mut sink = Vec::new();
        journal.write_jsonl(&mut sink).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), text);
    }

    #[test]
    fn merge_appends_in_order() {
        let a = Journal::new();
        let b = Journal::new();
        a.push(Event::new("one"));
        b.push(Event::new("two"));
        b.push(Event::new("three"));
        a.merge_from(&b);
        let names: Vec<String> = a.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["one", "two", "three"]);
        assert_eq!(b.len(), 2, "source untouched");
    }
}
