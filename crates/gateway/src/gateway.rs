//! The gateway proper: N shard-local [`ScenarioService`] replicas
//! behind one HTTP front door (DESIGN.md §15).
//!
//! # Sharding
//!
//! Every run request is routed by its canonical [`ScenarioKey`]
//! through the seeded [`HashRing`], so a given scenario always lands
//! on the same replica. That keeps the two serving accelerators —
//! the LRU result cache and in-flight coalescing — **shard-local**:
//! duplicates of a hot scenario meet in one replica's queue instead
//! of spraying across all of them, and no cross-replica cache
//! coherence exists to get wrong.
//!
//! # Rendezvous drains
//!
//! [`ScenarioService::drain`] answers *everything* queued, so one
//! drain typically completes many connections' tickets. Each replica
//! carries a rendezvous: the first waiter becomes the drainer while
//! later waiters park on a condvar; the drainer publishes every
//! response it popped, then wakes them. Concurrent requests for the
//! same scenario thus coalesce onto one engine run even when they
//! arrive on different connections (pinned by
//! `tests/gateway_transparency.rs`).
//!
//! # Transparency
//!
//! The canonical response body ([`canonical_body`]) depends only on
//! the scenario outcome — never on cache temperature, coalescing,
//! replica count, or ticket numbers — and embeds a digest over every
//! step's raw f64 bits. Byte-equal bodies therefore mean bit-identical
//! simulations; how the bits were obtained travels in the
//! `x-h2p-provenance` response *header*, keeping the body stable.

use crate::http::{HttpError, HttpLimits, Request, RequestParser, Response};
use crate::ring::HashRing;
use h2p_core::simulation::{SimulationConfig, Simulator};
use h2p_serve::protocol::{parse_line, stats_json, Command};
use h2p_serve::{
    Admission, RejectReason, RunOutput, ScenarioKey, ScenarioRequest, ScenarioService, ServeError,
    ServiceConfig, TicketId, TicketResponse,
};
use h2p_server::ServerModel;
use h2p_telemetry::Registry;
use serde_json::{json, Value};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Number of shard-local service replicas.
    pub replicas: NonZeroUsize,
    /// Virtual nodes per replica on the ring (more = smoother key
    /// balance; 64 keeps worst-case shard skew under ~20%).
    pub vnodes: NonZeroUsize,
    /// Ring seed; gateways that must agree on routing share it.
    pub ring_seed: u64,
    /// Per-replica service tuning (each replica gets its own queue,
    /// cache, and engines sized by this).
    pub service: ServiceConfig,
    /// HTTP parser limits.
    pub limits: HttpLimits,
    /// Worker threads answering requests in [`Gateway::serve`].
    pub request_workers: NonZeroUsize,
    /// Bound on accepted-but-unserviced connections; beyond it new
    /// connections are answered 503 and closed immediately.
    pub conn_backlog: usize,
    /// Idle keep-alive connections are closed after this long.
    pub idle_timeout_millis: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            replicas: NonZeroUsize::MIN,
            vnodes: NonZeroUsize::new(64).unwrap_or(NonZeroUsize::MIN),
            ring_seed: 0x6832_7067,
            service: ServiceConfig::default(),
            limits: HttpLimits::default(),
            request_workers: NonZeroUsize::new(8).unwrap_or(NonZeroUsize::MIN),
            conn_backlog: 256,
            idle_timeout_millis: 10_000,
        }
    }
}

/// Drain rendezvous state (see module docs).
#[derive(Debug, Default)]
struct RendezvousState {
    /// A drain is in flight; park instead of starting another.
    draining: bool,
    /// Responses published by past drains, awaiting their waiters.
    ready: BTreeMap<u64, TicketResponse>,
}

/// One shard: a service plus its drain rendezvous and telemetry.
#[derive(Debug)]
struct Replica {
    service: ScenarioService,
    registry: Registry,
    rendezvous: Mutex<RendezvousState>,
    wake: Condvar,
}

impl Replica {
    fn new(config: &ServiceConfig) -> Self {
        let registry = Registry::new();
        Replica {
            service: ScenarioService::new(config.clone()).with_telemetry(&registry),
            registry,
            rendezvous: Mutex::new(RendezvousState::default()),
            wake: Condvar::new(),
        }
    }

    /// Blocks until `ticket` is answered, joining or leading a drain
    /// rendezvous as needed.
    fn await_ticket(&self, ticket: TicketId) -> Option<TicketResponse> {
        let mut state = lock_rendezvous(&self.rendezvous);
        loop {
            if let Some(response) = state.ready.remove(&ticket.0) {
                return Some(response);
            }
            if state.draining {
                // Someone else is draining; park. The timeout is a
                // resilience backstop, not a correctness mechanism —
                // the loop re-checks state either way.
                let (parked, _) = self
                    .wake
                    .wait_timeout(state, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                state = parked;
                continue;
            }
            state.draining = true;
            drop(state);
            let responses = self.service.drain();
            state = lock_rendezvous(&self.rendezvous);
            state.draining = false;
            for response in responses {
                state.ready.insert(response.ticket.0, response);
            }
            self.wake.notify_all();
        }
    }
}

fn lock_rendezvous(mutex: &Mutex<RendezvousState>) -> MutexGuard<'_, RendezvousState> {
    // h2p-lint: allow(L10): leaf lock; never held while acquiring another
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The sharded HTTP gateway (see module docs).
#[derive(Debug)]
pub struct Gateway {
    config: GatewayConfig,
    ring: HashRing,
    replicas: Vec<Replica>,
}

impl Gateway {
    /// A gateway with `config.replicas` fresh shard-local replicas.
    #[must_use]
    pub fn new(config: GatewayConfig) -> Self {
        let replicas = (0..config.replicas.get())
            .map(|_| Replica::new(&config.service))
            .collect();
        Gateway {
            ring: HashRing::new(config.ring_seed, config.replicas, config.vnodes),
            replicas,
            config,
        }
    }

    /// The gateway configuration.
    #[must_use]
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// The replica a key routes to. Deterministic; exposed so tests
    /// and operators can predict shard placement.
    #[must_use]
    pub fn route(&self, key: &ScenarioKey) -> usize {
        let id = self.ring.route(key.to_string().as_bytes()).unwrap_or(0);
        (id as usize).min(self.replicas.len().saturating_sub(1))
    }

    /// Serves one parsed HTTP request. Pure request→response; the TCP
    /// loop in [`serve`](Gateway::serve) and in-process tests share
    /// this exact path.
    #[must_use]
    pub fn handle(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.target.as_str()) {
            ("POST", "/run") => self.handle_run(&request.body),
            ("GET", "/stats") => Response::json(200, self.stats().to_string()),
            ("GET", "/healthz") => Response::json(
                200,
                json!({"status": "ok", "replicas": self.replicas.len()}).to_string(),
            ),
            (_, "/run" | "/stats" | "/healthz") => error_response(
                405,
                "method not allowed (POST /run, GET /stats, GET /healthz)",
            ),
            _ => error_response(404, "unknown path (POST /run, GET /stats, GET /healthz)"),
        }
    }

    fn handle_run(&self, body: &[u8]) -> Response {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => return error_response(400, "body must be UTF-8 JSON"),
        };
        let request = match parse_line(text) {
            Ok(Command::Run(request)) => *request,
            Ok(_) => return error_response(400, "only run requests are served over POST /run"),
            Err(reason) => return error_response(400, &reason),
        };
        let key = request.key();
        let shard = self.route(&key);
        let Some(replica) = self.replicas.get(shard) else {
            return error_response(503, "no replicas configured");
        };
        match replica.service.submit(request) {
            Admission::Enqueued { ticket, .. } => {
                let Some(response) = replica.await_ticket(ticket) else {
                    return error_response(500, "ticket lost by drain rendezvous");
                };
                ticket_response(&response, shard, ticket)
            }
            Admission::Rejected { reason } => rejection_response(&reason),
        }
    }

    /// Aggregated + per-replica statistics as one JSON object.
    #[must_use]
    pub fn stats(&self) -> Value {
        let mut shards = Vec::with_capacity(self.replicas.len());
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut quota_rejected = 0u64;
        let mut rejected_full = 0u64;
        let mut cache_hits = 0u64;
        for replica in &self.replicas {
            let stats = replica.service.stats();
            submitted += stats.submitted;
            completed += stats.completed;
            quota_rejected += stats.quota_rejected;
            rejected_full += stats.rejected_full;
            cache_hits += stats.cache.hits;
            shards.push(stats_json(&stats));
        }
        json!({
            "event": "gateway_stats",
            "replicas": self.replicas.len(),
            "submitted": submitted,
            "completed": completed,
            "rejected_full": rejected_full,
            "quota_rejected": quota_rejected,
            "cache_hits": cache_hits,
            "shards": Value::Array(shards),
        })
    }

    /// Per-replica telemetry registries (index = shard id), for
    /// latency/served introspection in benches and tests.
    #[must_use]
    pub fn registries(&self) -> Vec<&Registry> {
        self.replicas.iter().map(|r| &r.registry).collect()
    }

    /// Runs the blocking accept loop on `listener` with a bounded
    /// connection queue and `request_workers` handler threads, until
    /// `shutdown` turns true. Over-backlog connections get an
    /// immediate 503. Returns when the loop exits.
    ///
    /// # Errors
    ///
    /// Setup-time listener failures ([`TcpListener::set_nonblocking`]).
    pub fn serve(&self, listener: &TcpListener, shutdown: &AtomicBool) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let queue = ConnQueue::new(self.config.conn_backlog);
        std::thread::scope(|scope| {
            for _ in 0..self.config.request_workers.get() {
                scope.spawn(|| {
                    while let Some(stream) = queue.pop() {
                        self.handle_connection(stream);
                    }
                });
            }
            while !shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Err(stream) = queue.push(stream) {
                            // Backlog full: shed load at the door.
                            let _ = stream.set_nonblocking(false);
                            write_and_flush(
                                &stream,
                                &error_response(503, "connection backlog full").to_bytes(false),
                            );
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
            queue.close();
        });
        Ok(())
    }

    /// The per-connection loop: incremental parse, handle, respond,
    /// honoring keep-alive; parse errors answer once and close.
    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_nonblocking(false);
        let _ =
            stream.set_read_timeout(Some(Duration::from_millis(self.config.idle_timeout_millis)));
        let _ = stream.set_nodelay(true);
        let mut parser = RequestParser::new(self.config.limits);
        let mut buf = [0u8; 8192];
        let mut stream = stream;
        loop {
            loop {
                match parser.next_request() {
                    Ok(Some(request)) => {
                        let keep = request.keep_alive();
                        let response = self.handle(&request);
                        if !write_and_flush(&stream, &response.to_bytes(keep)) || !keep {
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        write_and_flush(&stream, &http_error_response(&e).to_bytes(false));
                        return;
                    }
                }
            }
            match stream.read(&mut buf) {
                Ok(0) => return,
                Ok(n) => parser.push(buf.get(..n).unwrap_or_default()),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Idle keep-alive expiry; close quietly.
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

/// Bounded handoff between the accept loop and request workers.
#[derive(Debug)]
struct ConnQueue {
    capacity: usize,
    inner: Mutex<ConnQueueState>,
    wake: Condvar,
}

#[derive(Debug, Default)]
struct ConnQueueState {
    // h2p-lint: allow(L7): bounded by ConnQueue::push's capacity check
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(ConnQueueState::default()),
            wake: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ConnQueueState> {
        // h2p-lint: allow(L10): leaf lock; never held while acquiring another
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues, or hands the stream back when the backlog is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.closed || state.conns.len() >= self.capacity {
            return Err(stream);
        }
        state.conns.push_back(stream);
        drop(state);
        self.wake.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and empty.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(stream) = state.conns.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            let (parked, _) = self
                .wake
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            state = parked;
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.wake.notify_all();
    }
}

/// Best-effort full write; false when the peer is gone.
fn write_and_flush(mut stream: &TcpStream, bytes: &[u8]) -> bool {
    stream
        .write_all(bytes)
        .and_then(|()| stream.flush())
        .is_ok()
}

/// `{"status":"error",...}` with the given code.
fn error_response(status: u16, detail: &str) -> Response {
    Response::json(
        status,
        json!({"status": "error", "code": status, "error": detail}).to_string(),
    )
}

/// A parse failure as its mapped response.
fn http_error_response(e: &HttpError) -> Response {
    error_response(e.status(), &e.to_string())
}

/// An admission rejection as its mapped response: 400 invalid,
/// 429 quota, 503 backpressure.
fn rejection_response(reason: &RejectReason) -> Response {
    match reason {
        RejectReason::InvalidRequest { .. } => error_response(400, &reason.to_string()),
        RejectReason::QuotaExceeded { .. } => error_response(429, &reason.to_string()),
        RejectReason::QueueFull { .. } => {
            error_response(503, &reason.to_string()).with_header("retry-after", "1")
        }
        _ => error_response(503, &reason.to_string()),
    }
}

/// One answered ticket as its HTTP response: canonical body, variance
/// (provenance, shard, ticket) in headers only.
fn ticket_response(response: &TicketResponse, shard: usize, ticket: TicketId) -> Response {
    match &response.served {
        Ok(served) => Response::json(200, canonical_body(&response.key, &served.output))
            .with_header("x-h2p-provenance", served.provenance.name())
            .with_header("x-h2p-shard", shard.to_string())
            .with_header("x-h2p-ticket", ticket.to_string()),
        Err(e) => error_response(500, &e.to_string())
            .with_header("x-h2p-shard", shard.to_string())
            .with_header("x-h2p-ticket", ticket.to_string()),
    }
}

/// FNV-1a over the raw bits of every step record, so two bodies are
/// byte-equal iff the underlying simulations are bit-identical.
fn result_digest(output: &RunOutput) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let result = &output.result;
    eat(result.servers() as u64);
    eat(result.steps().len() as u64);
    for step in result.steps() {
        eat(step.time.value().to_bits());
        eat(step.teg_power_per_server.value().to_bits());
        eat(step.cpu_power_per_server.value().to_bits());
        eat(step.pump_power_per_server.value().to_bits());
        eat(step.cooling_power_per_server.value().to_bits());
        eat(step.mean_inlet.value().to_bits());
        eat(step.mean_outlet.value().to_bits());
        eat(step.mean_utilization.value().to_bits());
        eat(step.peak_utilization.value().to_bits());
        eat(step.thermal_violations as u64);
    }
    h
}

/// The canonical 200 body for a served scenario. Depends only on the
/// scenario outcome — never cache temperature, coalescing, replica
/// count, or tickets — so any replica serving any cache state renders
/// the same bytes (the end-to-end transparency contract).
#[must_use]
pub fn canonical_body(key: &ScenarioKey, output: &RunOutput) -> String {
    let result = &output.result;
    json!({
        "status": "ok",
        "key": key.to_string(),
        "policy": result.policy(),
        "servers": result.servers(),
        "steps": result.steps().len(),
        "avg_teg_w_per_server": result.average_teg_power().ok().map(|w| w.value()),
        "pre": result.pre(),
        "partial_pue": result.partial_pue().ok(),
        "partial_ere": result.partial_ere().ok(),
        "violations": result.total_violations(),
        "faulted": output.ledger.is_some(),
        "digest": format!("{:016x}", result_digest(output)),
    })
    .to_string()
}

/// The reference a gateway response must match byte-for-byte: the
/// same scenario run *directly* on a fresh engine (the serving
/// contract from `crates/serve`), rendered through [`canonical_body`].
///
/// # Errors
///
/// Engine-construction or run failures, as the serving layer would
/// report them.
pub fn direct_canonical_body(request: &ScenarioRequest) -> Result<String, ServeError> {
    let mut config = SimulationConfig::paper_default();
    config.servers_per_circulation = request.servers_per_circulation;
    let engine =
        Simulator::new(&ServerModel::paper_default(), config)?.with_workers(request.workers);
    let cluster = request.materialize(&engine)?;
    let policy = request.policy.build();
    let output = match request.fault_plan(&cluster) {
        None => RunOutput {
            result: engine.run(&cluster, policy.as_dyn())?,
            ledger: None,
        },
        Some(plan) => {
            let faulted = engine.run_with_faults(&cluster, policy.as_dyn(), &plan?)?;
            RunOutput {
                result: faulted.result,
                ledger: Some(faulted.ledger),
            }
        }
    };
    Ok(canonical_body(&request.key(), &output))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejections_map_to_their_statuses() {
        let full = rejection_response(&RejectReason::QueueFull { capacity: 8 });
        assert_eq!(full.status, 503);
        assert!(
            full.headers
                .iter()
                .any(|(k, v)| k == "retry-after" && v == "1"),
            "QueueFull must invite a retry: {:?}",
            full.headers
        );
        let quota = rejection_response(&RejectReason::QuotaExceeded {
            tenant: "acme".to_owned(),
            limit: 2,
        });
        assert_eq!(quota.status, 429);
        let invalid = rejection_response(&RejectReason::InvalidRequest {
            reason: "servers must be positive".to_owned(),
        });
        assert_eq!(invalid.status, 400);
    }

    #[test]
    fn parse_failures_map_to_their_statuses() {
        assert_eq!(
            http_error_response(&HttpError::HeadTooLarge { limit: 16 }).status,
            431
        );
        assert_eq!(
            http_error_response(&HttpError::BodyTooLarge {
                declared: 2,
                limit: 1
            })
            .status,
            413
        );
    }
}
