//! Open-loop, heavy-tailed HTTP load generation (the
//! "millions-of-users" harness).
//!
//! # Open loop, not closed loop
//!
//! A closed-loop client waits for each response before sending the
//! next request, so a slow server *slows the load down* and the
//! measured latencies dodge exactly the queueing the SLO cares about
//! (coordinated omission). This generator instead fixes the arrival
//! schedule up front — request *i* is due at `i/rate` — and measures
//! each latency **from the scheduled arrival**, so a response that
//! left late because the server was busy is charged all the time it
//! spent displaced. `rate = f64::INFINITY` degenerates to closed-loop
//! saturation mode (arrival = send time), which is what the replica
//! scaling curve uses.
//!
//! # Heavy tail
//!
//! Scenario popularity follows a Zipf distribution over a universe of
//! `scenarios` distinct scenarios (seed-varied copies of one shape):
//! rank *k* is drawn with probability ∝ `1/k^zipf_s`. A skewed mix
//! (`s ≈ 1`) concentrates traffic on few hot scenarios — the regime
//! where shard-local caching and coalescing pay — while `s = 0` is a
//! uniform worst case.

use h2p_telemetry::{BucketSpec, Histogram, Registry};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::num::NonZeroUsize;
use std::time::Duration;

/// SplitMix64 step: the generator's only randomness (seeded, no
/// ambient entropy — runs are reproducible).
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative unnormalized weights; last entry is the total.
    cumulative: Vec<f64>,
    state: u64,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `s` (`s = 0` uniform,
    /// larger = heavier head), seeded for reproducibility.
    #[must_use]
    pub fn new(n: NonZeroUsize, s: f64, seed: u64) -> Self {
        let s = if s.is_finite() && s >= 0.0 { s } else { 0.0 };
        let mut cumulative = Vec::with_capacity(n.get());
        let mut total = 0.0_f64;
        for rank in 0..n.get() {
            #[allow(clippy::cast_precision_loss)] // ranks ≪ 2^53
            let weight = 1.0 / ((rank + 1) as f64).powf(s);
            total += weight;
            cumulative.push(total);
        }
        ZipfSampler {
            cumulative,
            state: seed,
        }
    }

    /// Draws the next rank.
    pub fn sample(&mut self) -> usize {
        let total = self.cumulative.last().copied().unwrap_or(1.0);
        #[allow(clippy::cast_precision_loss)] // 53-bit mantissa target
        let u = (splitmix64_next(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        let needle = u * total;
        self.cumulative.partition_point(|&c| c <= needle)
    }
}

/// One load run's parameters.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Gateway address, e.g. `127.0.0.1:8472`.
    pub addr: String,
    /// Total requests to send.
    pub requests: usize,
    /// Open-loop arrival rate in requests/second;
    /// [`f64::INFINITY`] = closed-loop saturation.
    pub rate: f64,
    /// Concurrent keep-alive connections (requests are round-robined
    /// across them up front, preserving the open-loop schedule).
    pub connections: NonZeroUsize,
    /// Distinct scenarios in the universe (Zipf support).
    pub scenarios: NonZeroUsize,
    /// Zipf exponent (0 = uniform; ~1 = heavy-tailed web-like mix).
    pub zipf_s: f64,
    /// PRNG seed for the arrival mix.
    pub seed: u64,
    /// Servers per scenario (request `servers` field).
    pub servers: usize,
    /// Steps per scenario (request `steps` field).
    pub steps: usize,
    /// Tenant attribution for every request (`None` = unattributed).
    pub tenant: Option<String>,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            addr: String::new(),
            requests: 100,
            rate: f64::INFINITY,
            connections: NonZeroUsize::MIN,
            scenarios: NonZeroUsize::new(8).unwrap_or(NonZeroUsize::MIN),
            zipf_s: 1.0,
            seed: 42,
            servers: 20,
            steps: 2,
            tenant: None,
        }
    }
}

impl LoadPlan {
    /// The request body for scenario rank `rank`: one shape,
    /// seed-varied, so distinct ranks are distinct scenario keys.
    #[must_use]
    pub fn body_for(&self, rank: usize) -> String {
        let mut body = json!({
            "cmd": "run",
            "trace": "common",
            "seed": u64::try_from(rank).unwrap_or(u64::MAX),
            "servers": self.servers,
            "steps": self.steps,
            "circulation": self.servers.max(1),
            "workers": 1,
        });
        if let (Value::Object(entries), Some(tenant)) = (&mut body, &self.tenant) {
            entries.push(("tenant".to_owned(), Value::String(tenant.clone())));
        }
        body.to_string()
    }
}

/// What one load run measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: usize,
    /// 200 responses.
    pub ok: usize,
    /// Non-200 responses by status code.
    pub failures: BTreeMap<u16, usize>,
    /// Transport errors (connect/read/write failures).
    pub transport_errors: usize,
    /// Wall-clock nanoseconds for the whole run.
    pub wall_nanos: u64,
    /// Latency from *scheduled arrival* to response completion.
    pub latency: Histogram,
}

impl LoadReport {
    /// Achieved throughput over the wall clock, in responses/second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)] // counts ≪ 2^53
        {
            (self.ok + self.failures.values().sum::<usize>()) as f64
                / (self.wall_nanos as f64 / 1e9)
        }
    }

    /// `(p50, p99, p999)` latency upper bounds in nanoseconds.
    #[must_use]
    pub fn latency_slo_nanos(&self) -> (u64, u64, u64) {
        let q = |q: f64| self.latency.quantile_upper_bound(q).unwrap_or(0);
        (q(0.50), q(0.99), q(0.999))
    }

    /// The report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let (p50, p99, p999) = self.latency_slo_nanos();
        let failures: Vec<Value> = self
            .failures
            .iter()
            .map(|(status, count)| json!({"status": *status, "count": *count}))
            .collect();
        json!({
            "event": "load_report",
            "sent": self.sent,
            "ok": self.ok,
            "failures": Value::Array(failures),
            "transport_errors": self.transport_errors,
            "wall_nanos": self.wall_nanos,
            "throughput_rps": self.throughput_rps(),
            "p50_nanos": p50,
            "p99_nanos": p99,
            "p999_nanos": p999,
        })
    }
}

/// One scheduled request.
#[derive(Debug, Clone, Copy)]
struct Shot {
    arrival_nanos: u64,
    rank: usize,
}

/// What one connection thread measured.
struct LaneOutcome {
    ok: usize,
    failures: BTreeMap<u16, usize>,
    transport_errors: usize,
    latency: Histogram,
}

/// Replays `plan` against the gateway and reports tail latency.
/// Fully deterministic request *mix*; timing is, of course, live.
#[must_use]
pub fn run(plan: &LoadPlan) -> LoadReport {
    // Precompute the arrival schedule and scenario mix up front so
    // the hot loop only does I/O and clock reads.
    let mut sampler = ZipfSampler::new(plan.scenarios, plan.zipf_s, plan.seed);
    let lanes = plan.connections.get();
    // h2p-lint: allow(L7): bounded by plan.requests
    let mut schedules: Vec<Vec<Shot>> = (0..lanes).map(|_| Vec::new()).collect();
    for i in 0..plan.requests {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let arrival_nanos = if plan.rate.is_finite() && plan.rate > 0.0 {
            (i as f64 / plan.rate * 1e9) as u64
        } else {
            0
        };
        if let Some(lane) = schedules.get_mut(i % lanes) {
            lane.push(Shot {
                arrival_nanos,
                rank: sampler.sample(),
            });
        }
    }
    let bodies: Vec<String> = (0..plan.scenarios.get())
        .map(|r| plan.body_for(r))
        .collect();

    // One registry = one clock origin shared by every lane, so
    // scheduled arrivals and completions are on the same axis.
    let clock = Registry::new();
    let open_loop = plan.rate.is_finite();
    let t0 = clock.now_nanos();
    let outcomes: Vec<LaneOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .map(|schedule| {
                let clock = clock.clone();
                let addr = plan.addr.clone();
                let bodies = &bodies;
                scope.spawn(move || run_lane(&addr, schedule, bodies, &clock, t0, open_loop))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                Err(_) => LaneOutcome {
                    ok: 0,
                    failures: BTreeMap::new(),
                    transport_errors: 0,
                    latency: latency_histogram(),
                },
            })
            .collect()
    });
    let wall_nanos = clock.now_nanos().saturating_sub(t0);

    let latency = latency_histogram();
    let mut ok = 0;
    let mut transport_errors = 0;
    let mut failures: BTreeMap<u16, usize> = BTreeMap::new();
    for outcome in outcomes {
        ok += outcome.ok;
        transport_errors += outcome.transport_errors;
        for (status, count) in outcome.failures {
            *failures.entry(status).or_insert(0) += count;
        }
        let _ = latency.merge_from(&outcome.latency);
    }
    LoadReport {
        sent: plan.requests,
        ok,
        failures,
        transport_errors,
        wall_nanos,
        latency,
    }
}

fn latency_histogram() -> Histogram {
    // 1µs .. ~1000s exponential buckets: plenty of p999 resolution
    // without unbounded memory.
    match BucketSpec::exponential(1_000, 30) {
        Ok(spec) => Histogram::with_spec(&spec),
        Err(_) => Histogram::disabled(),
    }
}

/// One connection's replay loop.
fn run_lane(
    addr: &str,
    schedule: &[Shot],
    bodies: &[String],
    clock: &Registry,
    t0: u64,
    open_loop: bool,
) -> LaneOutcome {
    let mut outcome = LaneOutcome {
        ok: 0,
        failures: BTreeMap::new(),
        transport_errors: 0,
        latency: latency_histogram(),
    };
    let mut conn: Option<TcpStream> = None;
    for shot in schedule {
        // Hold to the arrival schedule (open loop): sleep until the
        // shot is due, but never artificially delay a late shot.
        let due = t0.saturating_add(shot.arrival_nanos);
        if open_loop {
            let now = clock.now_nanos();
            if now < due {
                std::thread::sleep(Duration::from_nanos(due - now));
            }
        }
        let arrival = if open_loop { due } else { clock.now_nanos() };
        let Some(body) = bodies.get(shot.rank) else {
            continue;
        };
        let status = request_once(&mut conn, addr, body);
        match status {
            Some(code) => {
                outcome
                    .latency
                    .record(clock.now_nanos().saturating_sub(arrival));
                if code == 200 {
                    outcome.ok += 1;
                } else {
                    *outcome.failures.entry(code).or_insert(0) += 1;
                }
            }
            None => outcome.transport_errors += 1,
        }
    }
    outcome
}

/// Sends one POST /run over the (re)usable connection; returns the
/// status code, reconnecting once on a stale keep-alive socket.
fn request_once(conn: &mut Option<TcpStream>, addr: &str, body: &str) -> Option<u16> {
    for attempt in 0..2 {
        if conn.is_none() {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
                    *conn = Some(stream);
                }
                Err(_) => return None,
            }
        }
        if let Some(stream) = conn {
            match send_and_read(stream, body) {
                Some(status) => return Some(status),
                None => {
                    // Stale keep-alive socket (server idled us out):
                    // reconnect once, then give up.
                    *conn = None;
                    if attempt == 1 {
                        return None;
                    }
                }
            }
        }
    }
    None
}

/// Writes the request and reads exactly one response off the socket.
fn send_and_read(stream: &mut TcpStream, body: &str) -> Option<u16> {
    let request = format!(
        "POST /run HTTP/1.1\r\nhost: h2p\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(request.as_bytes()).ok()?;
    stream.flush().ok()?;
    read_response(stream).map(|(status, _)| status)
}

/// Reads one HTTP/1.1 response (status + content-length framed body).
/// Public-in-crate so the verify path can compare bodies byte-wise.
pub(crate) fn read_response(stream: &mut TcpStream) -> Option<(u16, Vec<u8>)> {
    // h2p-lint: allow(L7): bounded by the gateway's own response sizes
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at + 4;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(chunk.get(..n)?),
            Err(_) => return None,
        }
    };
    let head = std::str::from_utf8(buf.get(..head_end)?).ok()?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let content_length: usize = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(name, _)| name.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())?;
    let mut body: Vec<u8> = buf.get(head_end..)?.to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => body.extend_from_slice(chunk.get(..n)?),
            Err(_) => return None,
        }
    }
    body.truncate(content_length);
    Some((status, body))
}

/// Fetches one scenario's body over HTTP (fresh connection), for
/// byte-identity verification against [`direct_canonical_body`].
///
/// [`direct_canonical_body`]: crate::gateway::direct_canonical_body
#[must_use]
pub fn fetch_once(addr: &str, body: &str) -> Option<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let request = format!(
        "POST /run HTTP/1.1\r\nhost: h2p\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(request.as_bytes()).ok()?;
    stream.flush().ok()?;
    read_response(&mut stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_seeded_and_head_heavy() {
        let n = NonZeroUsize::new(100).unwrap();
        let mut a = ZipfSampler::new(n, 1.2, 7);
        let mut b = ZipfSampler::new(n, 1.2, 7);
        let draws_a: Vec<usize> = (0..1000).map(|_| a.sample()).collect();
        let draws_b: Vec<usize> = (0..1000).map(|_| b.sample()).collect();
        assert_eq!(draws_a, draws_b, "same seed, same mix");
        let head = draws_a.iter().filter(|&&r| r < 10).count();
        assert!(head > 500, "rank<10 should dominate at s=1.2, got {head}");
        assert!(draws_a.iter().all(|&r| r < 100));
    }

    #[test]
    fn uniform_zipf_spreads() {
        let n = NonZeroUsize::new(10).unwrap();
        let mut z = ZipfSampler::new(n, 0.0, 3);
        let mut seen = [0usize; 10];
        for _ in 0..2000 {
            seen[z.sample().min(9)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 100), "uniform-ish: {seen:?}");
    }

    #[test]
    fn schedules_space_arrivals_by_rate() {
        let plan = LoadPlan {
            rate: 1000.0,
            ..LoadPlan::default()
        };
        // 1000 rps → 1ms spacing.
        assert!(plan.rate.is_finite());
        let spacing = 1e9 / plan.rate;
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(spacing, 1_000_000.0);
        }
    }

    #[test]
    fn bodies_vary_by_rank_and_carry_tenant() {
        let plan = LoadPlan {
            tenant: Some("acme".to_owned()),
            ..LoadPlan::default()
        };
        let b0 = plan.body_for(0);
        let b1 = plan.body_for(1);
        assert_ne!(b0, b1);
        assert!(b0.contains("\"tenant\":\"acme\""));
        assert!(b0.contains("\"seed\":0"));
    }
}
