//! `h2p-gatewayd`: the HTTP gateway daemon.
//!
//! ```text
//! h2p-gatewayd --addr 127.0.0.1:0 --replicas 4 --tenant-quota 32
//! ```
//!
//! Binds the address, prints one `{"event":"listening","addr":...}`
//! line to stdout (so scripts can discover an ephemeral port), then
//! serves until the process is killed. `POST /run` serves scenarios,
//! `GET /stats` aggregated statistics, `GET /healthz` liveness.

use h2p_gateway::{Gateway, GatewayConfig};
use std::net::TcpListener;
use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

fn main() -> ExitCode {
    let mut config = GatewayConfig::default();
    let mut addr = "127.0.0.1:0".to_owned();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        let take_usize = || value.and_then(|v| v.parse::<usize>().ok());
        match flag {
            "--addr" => match value {
                Some(v) => {
                    addr = v.clone();
                    i += 2;
                }
                None => return usage(flag),
            },
            "--replicas" => match take_usize().and_then(NonZeroUsize::new) {
                Some(n) => {
                    config.replicas = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--vnodes" => match take_usize().and_then(NonZeroUsize::new) {
                Some(n) => {
                    config.vnodes = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--workers" => match take_usize().and_then(NonZeroUsize::new) {
                Some(n) => {
                    config.request_workers = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--queue" => match take_usize() {
                Some(n) => {
                    config.service.queue_capacity = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--cache" => match take_usize() {
                Some(n) => {
                    config.service.cache_capacity = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--dispatch" => match take_usize().and_then(NonZeroUsize::new) {
                Some(n) => {
                    config.service.dispatch_workers = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--tenant-quota" => match take_usize() {
                Some(n) => {
                    config.service.tenant_quota = Some(n);
                    i += 2;
                }
                None => return usage(flag),
            },
            "--help" | "-h" => {
                eprintln!(
                    "h2p-gatewayd: sharded HTTP scenario gateway\n\
                     usage: h2p-gatewayd [--addr HOST:PORT] [--replicas N] [--vnodes N]\n\
                     \x20                 [--workers N] [--queue N] [--cache N] [--dispatch N]\n\
                     \x20                 [--tenant-quota N]\n\
                     endpoints: POST /run, GET /stats, GET /healthz"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(other),
        }
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("h2p-gatewayd: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = match listener.local_addr() {
        Ok(local) => local.to_string(),
        Err(_) => addr.clone(),
    };
    println!(
        "{}",
        serde_json::json!({
            "event": "listening",
            "addr": local,
            "replicas": config.replicas.get(),
        })
    );
    // Scripted readers need the line *now*, not at buffer flush.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let gateway = Gateway::new(config);
    let shutdown = AtomicBool::new(false);
    match gateway.serve(&listener, &shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("h2p-gatewayd: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(flag: &str) -> ExitCode {
    eprintln!("h2p-gatewayd: bad or incomplete flag {flag:?} (see --help)");
    ExitCode::from(2)
}
