//! `h2p-loadgen`: open-loop load generator against an `h2p-gatewayd`.
//!
//! ```text
//! h2p-loadgen --addr 127.0.0.1:8472 --requests 1000 --rate 200 \
//!             --connections 8 --scenarios 64 --zipf 1.1
//! ```
//!
//! Prints one `{"event":"load_report",...}` JSON line with achieved
//! throughput and p50/p99/p999 latency. With `--verify-direct`, also
//! fetches scenario rank 0 once over HTTP and asserts the body is
//! byte-identical to a direct in-process engine run (exit 1 on
//! mismatch) — the end-to-end transparency check CI leans on.

use h2p_gateway::direct_canonical_body;
use h2p_gateway::loadgen::{fetch_once, run, LoadPlan};
use h2p_serve::protocol::Command;
use std::num::NonZeroUsize;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut plan = LoadPlan::default();
    let mut verify_direct = false;
    let mut require_ok = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        let take_usize = || value.and_then(|v| v.parse::<usize>().ok());
        let take_f64 = || value.and_then(|v| v.parse::<f64>().ok());
        let take_u64 = || value.and_then(|v| v.parse::<u64>().ok());
        match flag {
            "--addr" => match value {
                Some(v) => {
                    plan.addr = v.clone();
                    i += 2;
                }
                None => return usage(flag),
            },
            "--requests" => match take_usize() {
                Some(n) => {
                    plan.requests = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--rate" => match take_f64() {
                Some(r) if r > 0.0 => {
                    plan.rate = r;
                    i += 2;
                }
                _ => return usage(flag),
            },
            "--connections" => match take_usize().and_then(NonZeroUsize::new) {
                Some(n) => {
                    plan.connections = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--scenarios" => match take_usize().and_then(NonZeroUsize::new) {
                Some(n) => {
                    plan.scenarios = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--zipf" => match take_f64() {
                Some(s) if s >= 0.0 => {
                    plan.zipf_s = s;
                    i += 2;
                }
                _ => return usage(flag),
            },
            "--seed" => match take_u64() {
                Some(s) => {
                    plan.seed = s;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--servers" => match take_usize() {
                Some(n) => {
                    plan.servers = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--steps" => match take_usize() {
                Some(n) => {
                    plan.steps = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--tenant" => match value {
                Some(v) => {
                    plan.tenant = Some(v.clone());
                    i += 2;
                }
                None => return usage(flag),
            },
            "--verify-direct" => {
                verify_direct = true;
                i += 1;
            }
            "--require-ok" => {
                require_ok = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!(
                    "h2p-loadgen: open-loop load generator for h2p-gatewayd\n\
                     usage: h2p-loadgen --addr HOST:PORT [--requests N] [--rate RPS]\n\
                     \x20                [--connections N] [--scenarios N] [--zipf S] [--seed N]\n\
                     \x20                [--servers N] [--steps N] [--tenant NAME]\n\
                     \x20                [--verify-direct] [--require-ok]\n\
                     omit --rate for closed-loop saturation"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(other),
        }
    }
    if plan.addr.is_empty() {
        eprintln!("h2p-loadgen: --addr is required (see --help)");
        return ExitCode::from(2);
    }

    if verify_direct {
        let body = plan.body_for(0);
        let Some((status, served)) = fetch_once(&plan.addr, &body) else {
            eprintln!("h2p-loadgen: verify: no response from {}", plan.addr);
            return ExitCode::FAILURE;
        };
        if status != 200 {
            eprintln!("h2p-loadgen: verify: status {status}, want 200");
            return ExitCode::FAILURE;
        }
        let request = match h2p_serve::protocol::parse_line(&body) {
            Ok(Command::Run(request)) => *request,
            _ => {
                eprintln!("h2p-loadgen: verify: internal body not a run request");
                return ExitCode::FAILURE;
            }
        };
        let direct = match direct_canonical_body(&request) {
            Ok(direct) => direct,
            Err(e) => {
                eprintln!("h2p-loadgen: verify: direct run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if served != direct.as_bytes() {
            eprintln!(
                "h2p-loadgen: verify: served body differs from direct run\n served: {}\n direct: {direct}",
                String::from_utf8_lossy(&served),
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "h2p-loadgen: verify: served == direct ({} bytes)",
            direct.len()
        );
    }

    let report = run(&plan);
    println!("{}", report.to_json());
    if require_ok && (report.ok != report.sent) {
        eprintln!(
            "h2p-loadgen: --require-ok: {}/{} responses were 200",
            report.ok, report.sent
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(flag: &str) -> ExitCode {
    eprintln!("h2p-loadgen: bad or incomplete flag {flag:?} (see --help)");
    ExitCode::from(2)
}
