//! Seeded consistent-hash ring over service replicas.
//!
//! Each replica contributes `vnodes` points to a ring of 64-bit hash
//! positions; a key routes to the owner of the first point at or
//! after the key's own hash (wrapping). The construction is fully
//! deterministic in `(seed, replica ids, vnodes)` — two gateways
//! configured alike route every key identically — and has the
//! consistent-hashing *minimal movement* contract:
//!
//! * adding a replica only moves keys **onto** the new replica;
//! * removing a replica only moves keys that lived **on** it;
//! * on a balanced ring the expected movement is `≈1/N` of keys,
//!   bounded well under `2/N` with enough vnodes.
//!
//! Both properties are pinned by `tests/ring_stability.rs` (the
//! structural ones under proptest over arbitrary churn).

use std::num::NonZeroUsize;

/// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over bytes, seeded; finalized through SplitMix64 so nearby
/// inputs land far apart on the ring.
fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ splitmix64(seed);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// The ring (see module docs).
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: NonZeroUsize,
    /// Ring points sorted by position; ties broken by replica id so
    /// rebuilds are order-independent.
    points: Vec<(u64, u32)>,
    /// Member replica ids, sorted.
    replicas: Vec<u32>,
}

impl HashRing {
    /// A ring over replica ids `0..count`.
    #[must_use]
    pub fn new(seed: u64, count: NonZeroUsize, vnodes: NonZeroUsize) -> Self {
        #[allow(clippy::cast_possible_truncation)] // replica counts are small
        let ids: Vec<u32> = (0..count.get() as u32).collect();
        HashRing::with_members(seed, &ids, vnodes)
    }

    /// A ring over explicit replica ids (duplicates ignored).
    #[must_use]
    pub fn with_members(seed: u64, ids: &[u32], vnodes: NonZeroUsize) -> Self {
        let mut replicas: Vec<u32> = ids.to_vec();
        replicas.sort_unstable();
        replicas.dedup();
        let mut ring = HashRing {
            seed,
            vnodes,
            points: Vec::with_capacity(replicas.len() * vnodes.get()),
            replicas: Vec::new(),
        };
        for id in replicas {
            ring.insert_points(id);
            ring.replicas.push(id);
        }
        ring.points.sort_unstable();
        ring
    }

    fn insert_points(&mut self, id: u32) {
        for vnode in 0..u64::try_from(self.vnodes.get()).unwrap_or(u64::MAX) {
            let mut label = [0u8; 12];
            label[..4].copy_from_slice(&id.to_le_bytes());
            label[4..].copy_from_slice(&vnode.to_le_bytes());
            self.points.push((hash_bytes(self.seed, &label), id));
        }
    }

    /// Member replica ids, ascending.
    #[must_use]
    pub fn replicas(&self) -> &[u32] {
        &self.replicas
    }

    /// Number of member replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the ring has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Routes a key to its owning replica (`None` on an empty ring).
    /// Deterministic in the ring configuration and the key bytes.
    #[must_use]
    pub fn route(&self, key: &[u8]) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_bytes(self.seed ^ 0x6b79_5f68_6173_6821, key);
        let at = self.points.partition_point(|&(pos, _)| pos < h);
        let (_, id) = self.points.get(at).or_else(|| self.points.first())?;
        Some(*id)
    }

    /// Adds a replica (no-op if already a member). Only keys whose
    /// new owner *is* `id` change owners.
    pub fn add_replica(&mut self, id: u32) {
        if self.replicas.contains(&id) {
            return;
        }
        self.insert_points(id);
        self.points.sort_unstable();
        self.replicas.push(id);
        self.replicas.sort_unstable();
    }

    /// Removes a replica (no-op if absent). Only keys whose old owner
    /// *was* `id` change owners.
    pub fn remove_replica(&mut self, id: u32) {
        self.points.retain(|&(_, owner)| owner != id);
        self.replicas.retain(|&member| member != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).expect("nonzero")
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(7, nz(4), nz(64));
        let again = HashRing::new(7, nz(4), nz(64));
        for i in 0..1000u32 {
            let key = format!("scenario-{i}");
            let owner = ring.route(key.as_bytes()).expect("non-empty ring");
            assert!(owner < 4);
            assert_eq!(again.route(key.as_bytes()), Some(owner), "rebuild differs");
        }
    }

    #[test]
    fn different_seeds_shuffle_ownership() {
        let a = HashRing::new(1, nz(4), nz(64));
        let b = HashRing::new(2, nz(4), nz(64));
        let moved = (0..1000u32)
            .filter(|i| {
                let key = format!("k{i}");
                a.route(key.as_bytes()) != b.route(key.as_bytes())
            })
            .count();
        assert!(moved > 250, "seed should reshuffle the ring, moved {moved}");
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::with_members(0, &[], nz(8));
        assert!(ring.is_empty());
        assert_eq!(ring.route(b"anything"), None);
    }
}
