//! A hand-rolled, incremental HTTP/1.1 message layer (no external
//! dependencies, consistent with the workspace's offline ethos).
//!
//! [`RequestParser`] is a push parser: feed it whatever bytes the
//! socket produced ([`push`](RequestParser::push)), then ask for
//! complete requests ([`next_request`](RequestParser::next_request)).
//! Requests split across arbitrary read boundaries — including
//! mid-request-line, mid-header, or mid-body — reassemble identically
//! (pinned by `tests/http_edge_cases.rs`), and several pipelined
//! requests pushed at once pop out one at a time.
//!
//! The subset implemented is exactly what the gateway serves:
//!
//! * request line + headers + optional `Content-Length` body;
//! * HTTP/1.1 (keep-alive by default) and HTTP/1.0 (close by
//!   default), with `Connection: close` / `keep-alive` overrides;
//! * hard limits on header-block and body size, surfaced as typed
//!   [`HttpError`]s that map onto 400/413/431 responses;
//! * no `Transfer-Encoding` (rejected as unsupported, 400), no
//!   multiline header folding (rejected, 400).

use std::fmt;

/// Parser limits. Both bounds are enforced *before* buffering grows
/// past them, so a hostile peer cannot balloon gateway memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Maximum bytes in the request line + header block (including
    /// the terminating blank line).
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A malformed or over-limit request, with its HTTP status mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HttpError {
    /// Syntactically invalid request line or header (400).
    Malformed(String),
    /// `Content-Length` missing digits, duplicated inconsistently, or
    /// non-numeric (400).
    BadContentLength(String),
    /// Header block exceeded [`HttpLimits::max_head_bytes`] (431).
    HeadTooLarge {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// Declared body exceeds [`HttpLimits::max_body_bytes`] (413).
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured limit it exceeds.
        limit: usize,
    },
    /// HTTP version other than 1.0 / 1.1 (505).
    UnsupportedVersion(String),
}

impl HttpError {
    /// The status code this error is answered with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) | HttpError::BadContentLength(_) => 400,
            HttpError::HeadTooLarge { .. } => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnsupportedVersion(_) => 505,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpError::BadContentLength(detail) => write!(f, "bad content-length: {detail}"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "header block exceeds {limit} bytes")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method, verbatim (e.g. `POST`).
    pub method: String,
    /// Request target, verbatim (e.g. `/run`).
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Headers in wire order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name, if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v.as_str()))
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and a
    /// `Connection` header overrides either way.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Incremental push parser over one connection's byte stream.
#[derive(Debug)]
pub struct RequestParser {
    limits: HttpLimits,
    // h2p-lint: allow(L7): growth is clamped by max_head_bytes /
    // max_body_bytes before every extend; see `push`.
    buf: Vec<u8>,
    /// Parsed head waiting for its body bytes.
    pending: Option<(Request, usize)>,
}

impl RequestParser {
    /// A parser with the given limits.
    #[must_use]
    pub fn new(limits: HttpLimits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
            pending: None,
        }
    }

    /// Appends bytes read from the connection.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a returned request.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete request, `Ok(None)` when more bytes are
    /// needed. After an `Err` the stream is unrecoverable (framing is
    /// lost); the caller answers with [`HttpError::status`] and
    /// closes.
    ///
    /// # Errors
    ///
    /// Any [`HttpError`]: malformed syntax, over-limit head or body,
    /// or an unsupported version.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        loop {
            if let Some((_, need)) = &self.pending {
                if self.buf.len() < *need {
                    return Ok(None);
                }
                let (mut request, need) = match self.pending.take() {
                    Some(pending) => pending,
                    None => return Ok(None),
                };
                request.body = self.buf.drain(..need).collect();
                return Ok(Some(request));
            }
            match self.take_head()? {
                None => return Ok(None),
                Some((request, body_len)) => {
                    self.pending = Some((request, body_len));
                    // Loop around to try completing the body from
                    // bytes already buffered (pipelining).
                }
            }
        }
    }

    /// Parses the head if its terminating blank line has arrived.
    fn take_head(&mut self) -> Result<Option<(Request, usize)>, HttpError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge {
                    limit: self.limits.max_head_bytes,
                });
            }
            return Ok(None);
        };
        if head_end > self.limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                limit: self.limits.max_head_bytes,
            });
        }
        let head: Vec<u8> = self.buf.drain(..head_end).collect();
        let text = std::str::from_utf8(&head)
            .map_err(|_| HttpError::Malformed("non-UTF-8 header block".to_owned()))?;
        let mut lines = text.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| HttpError::Malformed("empty head".to_owned()))?;
        let mut parts = request_line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v))
                if !m.is_empty() && !t.is_empty() && parts.next().is_none() =>
            {
                (m.to_owned(), t.to_owned(), v)
            }
            _ => {
                return Err(HttpError::Malformed(format!(
                    "bad request line {request_line:?}"
                )))
            }
        };
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            other => return Err(HttpError::UnsupportedVersion(other.to_owned())),
        };
        let mut headers = Vec::new();
        for line in lines {
            // The head ends "\r\n\r\n", so splitting leaves two empty
            // tails; anything after a blank line was already excluded
            // by `find_head_end`.
            if line.is_empty() {
                continue;
            }
            if line.starts_with(' ') || line.starts_with('\t') {
                return Err(HttpError::Malformed(
                    "obsolete header folding is not supported".to_owned(),
                ));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::Malformed(format!(
                    "header without colon {line:?}"
                )));
            };
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::Malformed(format!("bad header name {name:?}")));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
        if headers.iter().any(|(name, _)| name == "transfer-encoding") {
            return Err(HttpError::Malformed(
                "transfer-encoding is not supported; send content-length".to_owned(),
            ));
        }
        let body_len = content_length(&headers)?;
        if body_len > self.limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge {
                declared: body_len,
                limit: self.limits.max_body_bytes,
            });
        }
        Ok(Some((
            Request {
                method,
                target,
                http11,
                headers,
                body: Vec::new(),
            },
            body_len,
        )))
    }
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|at| at + 4)
}

/// The declared body length: 0 when absent, an error when garbage or
/// inconsistently repeated.
fn content_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    let mut declared: Option<usize> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        let parsed: usize = value
            .parse()
            .map_err(|_| HttpError::BadContentLength(format!("not a number: {value:?}")))?;
        match declared {
            Some(previous) if previous != parsed => {
                return Err(HttpError::BadContentLength(format!(
                    "conflicting values {previous} and {parsed}"
                )))
            }
            _ => declared = Some(parsed),
        }
    }
    Ok(declared.unwrap_or(0))
}

/// One response to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (names must already be valid token case).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("content-type".to_owned(), "application/json".to_owned())],
            body: body.into(),
        }
    }

    /// Adds a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The canonical reason phrase for this status.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Response",
        }
    }

    /// Serializes the response, honoring the connection decision.
    #[must_use]
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason()).as_bytes());
        out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if keep_alive {
            b"connection: keep-alive\r\n".as_slice()
        } else {
            b"connection: close\r\n".as_slice()
        });
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> RequestParser {
        RequestParser::new(HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let mut p = parser();
        p.push(b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd");
        let req = p.next_request().unwrap().expect("complete");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/run");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive());
        assert_eq!(p.next_request().unwrap(), None);
    }

    #[test]
    fn keep_alive_defaults_follow_version_and_connection_overrides() {
        let cases = [
            ("HTTP/1.1", None, true),
            ("HTTP/1.1", Some("close"), false),
            ("HTTP/1.0", None, false),
            ("HTTP/1.0", Some("keep-alive"), true),
        ];
        for (version, connection, expect) in cases {
            let mut p = parser();
            let extra = connection.map_or(String::new(), |c| format!("Connection: {c}\r\n"));
            p.push(format!("GET / {version}\r\n{extra}\r\n").as_bytes());
            let req = p.next_request().unwrap().expect("complete");
            assert_eq!(req.keep_alive(), expect, "{version} {connection:?}");
        }
    }

    #[test]
    fn responses_serialize_with_framing_headers_first() {
        let bytes = Response::json(200, "{}").to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\ncontent-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
