//! # h2p-gateway — the HTTP front door and scale-out layer
//!
//! Grows the single-process [`h2p_serve`] layer into a horizontally
//! sharded service (DESIGN.md §15, ROADMAP item 3):
//!
//! * [`http`] — a hand-rolled, zero-dependency, incremental HTTP/1.1
//!   parser and response writer (split-read safe, keep-alive aware,
//!   with hard head/body limits mapped to 400/413/431);
//! * [`ring`] — a seeded consistent-hash ring with the minimal-
//!   movement contract (≤2/N of keys move on replica churn);
//! * [`gateway`] — N shard-local [`ScenarioService`] replicas behind
//!   one [`Gateway`]: scenario keys route through the ring so LRU
//!   caching and in-flight coalescing stay shard-local, drains are
//!   cross-connection rendezvous, rejections map to 429/503, and a
//!   bounded connection queue + fixed worker pool serve TCP;
//! * [`loadgen`] — an open-loop (coordinated-omission-free),
//!   Zipf-over-scenarios load generator reporting p50/p99/p999 from
//!   `h2p-telemetry` histograms.
//!
//! **Transparency invariant**: the body served for a scenario over
//! HTTP is byte-identical to [`direct_canonical_body`] for the same
//! request — any replica count, any cache state, any connection
//! (pinned by `tests/gateway_transparency.rs`).
//!
//! The `h2p-gatewayd` binary serves the gateway on a TCP address;
//! `h2p-loadgen` replays load against one and reports tail latency.
//!
//! [`ScenarioService`]: h2p_serve::ScenarioService

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Lock-order manifest (h2p-lint L10): the connection queue and each
// replica's rendezvous are leaf locks; replica-internal locks are
// ordered by h2p-serve's own manifest.
// h2p-lint: lock-order: conns, rendezvous
// Test code opts back into panicking asserts/unwraps.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod gateway;
pub mod http;
pub mod loadgen;
pub mod ring;

pub use gateway::{canonical_body, direct_canonical_body, Gateway, GatewayConfig};
pub use http::{HttpError, HttpLimits, Request, RequestParser, Response};
pub use loadgen::{LoadPlan, LoadReport, ZipfSampler};
pub use ring::HashRing;
