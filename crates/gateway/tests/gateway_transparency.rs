//! The gateway's end-to-end contract: a scenario served over HTTP —
//! at any replica count, any cache temperature, any connection —
//! returns a body byte-identical to a direct engine run, and error
//! paths map onto their HTTP statuses (400/404/405/413/429/431/503).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use h2p_gateway::loadgen::{fetch_once, run, LoadPlan};
use h2p_gateway::{direct_canonical_body, Gateway, GatewayConfig, HttpLimits, Request, Response};
use h2p_serve::protocol::Command;
use h2p_serve::{ScenarioRequest, ServiceConfig};
use std::net::TcpListener;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("nonzero")
}

fn post_run(body: &str) -> Request {
    Request {
        method: "POST".to_owned(),
        target: "/run".to_owned(),
        http11: true,
        headers: vec![("content-type".to_owned(), "application/json".to_owned())],
        body: body.as_bytes().to_vec(),
    }
}

fn get(target: &str) -> Request {
    Request {
        method: "GET".to_owned(),
        target: target.to_owned(),
        http11: true,
        headers: Vec::new(),
        body: Vec::new(),
    }
}

fn run_body(seed: u64) -> String {
    format!(
        r#"{{"cmd":"run","trace":"common","seed":{seed},"servers":20,"steps":2,"circulation":20,"workers":1}}"#
    )
}

fn parsed(body: &str) -> ScenarioRequest {
    match h2p_serve::protocol::parse_line(body).expect("valid body") {
        Command::Run(request) => *request,
        other => panic!("expected run, got {other:?}"),
    }
}

fn header<'r>(response: &'r Response, name: &str) -> Option<&'r str> {
    response
        .headers
        .iter()
        .find_map(|(k, v)| (k == name).then_some(v.as_str()))
}

fn gateway(replicas: usize) -> Gateway {
    Gateway::new(GatewayConfig {
        replicas: nz(replicas),
        ..GatewayConfig::default()
    })
}

#[test]
fn served_bodies_are_byte_identical_to_direct_runs_across_replica_counts() {
    // {1, 2, 4} replicas × 6 scenarios × {cold, warm}: every body
    // equals the direct run's canonical rendering, byte for byte.
    let directs: Vec<(String, String)> = (0..6u64)
        .map(|seed| {
            let body = run_body(seed);
            let direct = direct_canonical_body(&parsed(&body)).expect("direct run");
            (body, direct)
        })
        .collect();
    for replicas in [1usize, 2, 4] {
        let gw = gateway(replicas);
        for (body, direct) in &directs {
            // Cold: first sight computes.
            let cold = gw.handle(&post_run(body));
            assert_eq!(cold.status, 200, "replicas={replicas}");
            assert_eq!(
                std::str::from_utf8(&cold.body).unwrap(),
                direct,
                "replicas={replicas} cold body diverged"
            );
            assert_eq!(header(&cold, "x-h2p-provenance"), Some("computed"));

            // Warm: replay from the shard-local cache, same bytes.
            let warm = gw.handle(&post_run(body));
            assert_eq!(warm.status, 200);
            assert_eq!(
                warm.body, cold.body,
                "replicas={replicas} warm body diverged from cold"
            );
            assert_eq!(header(&warm, "x-h2p-provenance"), Some("cached"));
        }
        // Sharding actually spread the keys at higher replica counts.
        if replicas > 1 {
            let stats = gw.stats();
            let shards = stats.get("shards").and_then(|v| v.as_array()).unwrap();
            assert_eq!(shards.len(), replicas);
        }
    }
}

#[test]
fn faulted_scenarios_round_trip_byte_identically_too() {
    let body = r#"{"cmd":"run","trace":"drastic","seed":9,"servers":20,"steps":3,"circulation":10,"faults":11}"#;
    let direct = direct_canonical_body(&parsed(body)).expect("direct faulted run");
    assert!(direct.contains("\"faulted\":true"));
    let gw = gateway(2);
    let served = gw.handle(&post_run(body));
    assert_eq!(served.status, 200);
    assert_eq!(std::str::from_utf8(&served.body).unwrap(), direct);
}

#[test]
fn placement_scenarios_round_trip_byte_identically_too() {
    // A placement request flows through the same parse → serve →
    // render pipeline; the body must equal the direct materialization.
    let body = r#"{"cmd":"run","trace":"common","seed":5,"servers":20,"steps":3,"circulation":10,"placement":"harvest_aware"}"#;
    let direct = direct_canonical_body(&parsed(body)).expect("direct placement run");
    let gw = gateway(2);
    let served = gw.handle(&post_run(body));
    assert_eq!(served.status, 200);
    assert_eq!(std::str::from_utf8(&served.body).unwrap(), direct);
}

#[test]
fn same_scenario_routes_to_the_same_replica_and_stays_shard_local() {
    let gw = gateway(4);
    let key = parsed(&run_body(7)).key();
    let shard = gw.route(&key);
    for _ in 0..3 {
        assert_eq!(gw.route(&key), shard, "routing must be stable");
    }
    // Serve it twice; exactly one replica should have any traffic.
    let body = run_body(7);
    assert_eq!(gw.handle(&post_run(&body)).status, 200);
    assert_eq!(gw.handle(&post_run(&body)).status, 200);
    let stats = gw.stats();
    let shards = stats.get("shards").and_then(|v| v.as_array()).unwrap();
    let busy: Vec<usize> = shards
        .iter()
        .enumerate()
        .filter(|(_, s)| s.get("submitted").and_then(|v| v.as_f64()) != Some(0.0))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(busy, vec![shard], "traffic must stay on the routed shard");
}

#[test]
fn error_paths_map_to_http_statuses() {
    let gw = Gateway::new(GatewayConfig {
        replicas: nz(2),
        service: ServiceConfig {
            tenant_quota: Some(0),
            ..ServiceConfig::default()
        },
        ..GatewayConfig::default()
    });
    // 404 / 405.
    assert_eq!(gw.handle(&get("/nope")).status, 404);
    assert_eq!(gw.handle(&get("/run")).status, 405);
    assert_eq!(gw.handle(&post_run("{}")).status, 400, "missing trace");
    assert_eq!(
        gw.handle(&post_run("not json at all")).status,
        400,
        "garbage body"
    );
    assert_eq!(
        gw.handle(&post_run(r#"{"cmd":"drain"}"#)).status,
        400,
        "non-run command"
    );
    // Invalid request fields reject with 400 through admission.
    assert_eq!(
        gw.handle(&post_run(r#"{"cmd":"run","trace":"common","servers":0}"#))
            .status,
        400
    );
    // Per-tenant quota of zero → 429 for attributed requests.
    let quota = gw.handle(&post_run(
        r#"{"cmd":"run","trace":"common","seed":1,"servers":20,"steps":2,"tenant":"acme"}"#,
    ));
    assert_eq!(quota.status, 429);
    // Health and stats are live throughout.
    assert_eq!(gw.handle(&get("/healthz")).status, 200);
    assert_eq!(gw.handle(&get("/stats")).status, 200);
}

#[test]
fn tiny_queues_still_serve_because_handlers_drain_synchronously() {
    // The HTTP handler submits then immediately drains, so even a
    // clamped-to-one queue serves sequential load without 503s; the
    // QueueFull→503+retry-after mapping itself is pinned by a unit
    // test next to `rejection_response` (it needs a queue observed
    // full mid-admission, which the synchronous path can't produce
    // deterministically).
    let gw = Gateway::new(GatewayConfig {
        replicas: nz(1),
        service: ServiceConfig {
            queue_capacity: 0,
            ..ServiceConfig::default()
        },
        ..GatewayConfig::default()
    });
    for seed in 0..3 {
        assert_eq!(gw.handle(&post_run(&run_body(seed))).status, 200);
    }
}

#[test]
fn concurrent_connections_coalesce_onto_one_engine_run() {
    // Many threads, one hot scenario: the drain rendezvous must hand
    // every waiter its own 200 with identical bytes, while the
    // engines execute the scenario exactly once (coalescing and the
    // result cache make re-execution impossible).
    let gw = gateway(2);
    let body = run_body(3);
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let gw = &gw;
                let body = body.clone();
                scope.spawn(move || {
                    let response = gw.handle(&post_run(&body));
                    assert_eq!(response.status, 200);
                    response.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for window in bodies.windows(2) {
        assert_eq!(window[0], window[1], "all responses must agree");
    }
    let stats = gw.stats();
    let shards = stats.get("shards").and_then(|v| v.as_array()).unwrap();
    let runs: f64 = shards
        .iter()
        .filter_map(|s| s.get("runs_executed").and_then(|v| v.as_f64()))
        .sum();
    #[allow(clippy::float_cmp)]
    {
        assert_eq!(runs, 1.0, "one hot scenario = one engine run");
    }
}

#[test]
fn tcp_end_to_end_serves_load_and_matches_direct_bytes() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let gw = Gateway::new(GatewayConfig {
        replicas: nz(2),
        request_workers: nz(4),
        limits: HttpLimits::default(),
        ..GatewayConfig::default()
    });
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = scope.spawn(|| gw.serve(&listener, &shutdown));

        // Closed-loop load across several keep-alive connections.
        let plan = LoadPlan {
            addr: addr.clone(),
            requests: 40,
            connections: nz(4),
            scenarios: nz(6),
            zipf_s: 1.0,
            seed: 11,
            servers: 20,
            steps: 2,
            ..LoadPlan::default()
        };
        let report = run(&plan);
        assert_eq!(
            report.ok,
            40,
            "all load must be served: {:?}",
            report.to_json()
        );
        assert_eq!(report.transport_errors, 0);
        let (p50, p99, p999) = report.latency_slo_nanos();
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999);

        // Bit-identity over real TCP: served bytes == direct bytes.
        let body = plan.body_for(0);
        let (status, served) = fetch_once(&addr, &body).expect("fetch");
        assert_eq!(status, 200);
        let direct = direct_canonical_body(&parsed(&body)).expect("direct");
        assert_eq!(
            std::str::from_utf8(&served).unwrap(),
            direct,
            "TCP-served body diverged from direct run"
        );

        shutdown.store(true, Ordering::Relaxed);
        server.join().unwrap().expect("serve exits cleanly");
    });
}

#[test]
fn oversized_and_malformed_wire_requests_get_mapped_statuses() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let gw = Gateway::new(GatewayConfig {
        replicas: nz(1),
        limits: HttpLimits {
            max_head_bytes: 512,
            max_body_bytes: 4096,
        },
        ..GatewayConfig::default()
    });
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = scope.spawn(|| gw.serve(&listener, &shutdown));

        use std::io::{Read, Write};
        let expect_status = |raw: &str| -> u16 {
            let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
            stream.write_all(raw.as_bytes()).expect("write");
            let mut response = String::new();
            let _ = stream.read_to_string(&mut response);
            response
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status line")
        };
        assert_eq!(
            expect_status("POST /run HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"),
            413
        );
        assert_eq!(
            expect_status(&format!(
                "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
                "a".repeat(1024)
            )),
            431
        );
        assert_eq!(expect_status("TOTAL GARBAGE\r\n\r\n"), 400);

        shutdown.store(true, Ordering::Relaxed);
        server.join().unwrap().expect("serve exits cleanly");
    });
}
