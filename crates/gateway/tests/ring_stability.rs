//! Consistent-hash ring contract under replica churn.
//!
//! Two layers of pinning:
//!
//! * **Structural minimal movement** (proptest, arbitrary configs):
//!   adding a replica only moves keys *onto* it; removing one only
//!   moves keys that lived *on* it. These are exact invariants of
//!   consistent hashing — no tolerance, no flake.
//! * **Quantitative ≤2/N movement** (fixed configs): with production
//!   vnode counts the moved fraction on a churn event stays under
//!   2/N of keys (expectation is ~1/N).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use h2p_gateway::HashRing;
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("nonzero")
}

fn keys(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("scenario-key-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Adding a replica: every key either keeps its owner or moves to
    // exactly the new replica.
    #[test]
    fn adding_a_replica_only_moves_keys_onto_it(
        seed in 0u64..=1_000_000,
        replicas in 1usize..=6,
        vnodes in 1usize..=96,
        new_id in 100u32..=200,
    ) {
        let before = HashRing::new(seed, nz(replicas), nz(vnodes));
        let mut after = before.clone();
        after.add_replica(new_id);
        for key in keys(200) {
            let old = before.route(key.as_bytes()).expect("non-empty");
            let new = after.route(key.as_bytes()).expect("non-empty");
            prop_assert!(
                new == old || new == new_id,
                "key {} moved {} -> {} (not the new replica {})",
                key, old, new, new_id
            );
        }
    }

    // Removing a replica: keys it didn't own are untouched.
    #[test]
    fn removing_a_replica_only_moves_its_own_keys(
        seed in 0u64..=1_000_000,
        replicas in 2usize..=6,
        vnodes in 1usize..=96,
        victim_index in 0usize..=5,
    ) {
        let before = HashRing::new(seed, nz(replicas), nz(vnodes));
        let victim = before.replicas()[victim_index % before.len()];
        let mut after = before.clone();
        after.remove_replica(victim);
        prop_assert_eq!(after.len(), replicas - 1);
        for key in keys(200) {
            let old = before.route(key.as_bytes()).expect("non-empty");
            let new = after.route(key.as_bytes()).expect("non-empty");
            prop_assert!(new != victim, "key {} routed to removed replica", key);
            if old != victim {
                prop_assert_eq!(old, new, "unaffected key {} moved", key);
            }
        }
    }

    // Churn round-trip: add then remove the same replica restores
    // every assignment exactly.
    #[test]
    fn churn_round_trip_is_identity(
        seed in 0u64..=1_000_000,
        replicas in 1usize..=5,
        vnodes in 1usize..=64,
    ) {
        let ring = HashRing::new(seed, nz(replicas), nz(vnodes));
        let mut churned = ring.clone();
        churned.add_replica(77);
        churned.remove_replica(77);
        for key in keys(200) {
            prop_assert_eq!(ring.route(key.as_bytes()), churned.route(key.as_bytes()));
        }
    }
}

#[test]
fn movement_on_add_stays_under_two_over_n() {
    // Production-shaped configs; expectation is 1/(N+1) of keys, the
    // 2/(N+1) ceiling leaves ~2x headroom for vnode imbalance.
    let all_keys = keys(10_000);
    for n in [2usize, 4, 8] {
        let before = HashRing::new(0x6832_7067, nz(n), nz(64));
        let mut after = before.clone();
        #[allow(clippy::cast_possible_truncation)]
        after.add_replica(n as u32);
        let moved = all_keys
            .iter()
            .filter(|k| before.route(k.as_bytes()) != after.route(k.as_bytes()))
            .count();
        #[allow(clippy::cast_precision_loss)]
        let fraction = moved as f64 / all_keys.len() as f64;
        let bound = 2.0 / (n + 1) as f64;
        assert!(
            fraction < bound,
            "N={n}: moved {fraction:.3} of keys, bound {bound:.3}"
        );
        assert!(fraction > 0.0, "N={n}: a new replica must take some keys");
    }
}

#[test]
fn movement_on_remove_stays_under_two_over_n() {
    let all_keys = keys(10_000);
    for n in [3usize, 5, 9] {
        let before = HashRing::new(0x6832_7067, nz(n), nz(64));
        let mut after = before.clone();
        after.remove_replica(0);
        let moved = all_keys
            .iter()
            .filter(|k| before.route(k.as_bytes()) != after.route(k.as_bytes()))
            .count();
        #[allow(clippy::cast_precision_loss)]
        let fraction = moved as f64 / all_keys.len() as f64;
        let bound = 2.0 / n as f64;
        assert!(
            fraction < bound,
            "N={n}: moved {fraction:.3} of keys, bound {bound:.3}"
        );
    }
}

#[test]
fn shard_balance_is_reasonable_at_production_vnodes() {
    let ring = HashRing::new(0x6832_7067, nz(4), nz(64));
    let mut counts = [0usize; 4];
    for key in keys(10_000) {
        counts[ring.route(key.as_bytes()).unwrap() as usize] += 1;
    }
    let (min, max) = (
        counts.iter().copied().min().unwrap(),
        counts.iter().copied().max().unwrap(),
    );
    // Perfect balance is 2500 per shard; 64 vnodes keeps skew modest.
    assert!(min > 1500, "under-loaded shard: {counts:?}");
    assert!(max < 3500, "over-loaded shard: {counts:?}");
}

#[test]
fn rings_with_equal_config_route_equally_across_instances() {
    let a = HashRing::new(9, nz(5), nz(32));
    let b = HashRing::with_members(9, &[4, 2, 0, 1, 3], nz(32));
    for key in keys(500) {
        assert_eq!(a.route(key.as_bytes()), b.route(key.as_bytes()));
    }
}
