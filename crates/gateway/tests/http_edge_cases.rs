//! HTTP parser edge cases: requests split at arbitrary syscall
//! boundaries, oversized heads, garbage `Content-Length`, pipelined
//! keep-alive — the wire-level half of the gateway contract.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use h2p_gateway::{HttpError, HttpLimits, Request, RequestParser};
use proptest::prelude::*;

fn parse_all(parser: &mut RequestParser) -> Vec<Request> {
    let mut out = Vec::new();
    while let Ok(Some(req)) = parser.next_request() {
        out.push(req);
    }
    out
}

fn wire(requests: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in 0..requests {
        let body = format!("{{\"n\":{i}}}");
        bytes.extend_from_slice(
            format!(
                "POST /run HTTP/1.1\r\nHost: h2p\r\nX-Seq: {i}\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .as_bytes(),
        );
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The parser's core promise: however the byte stream is chopped
    // into reads, the same requests come out in the same order.
    #[test]
    fn split_reads_reassemble_identically(
        requests in 1usize..=4,
        chunk in 1usize..=64,
        phase in 0usize..=7,
    ) {
        let stream = wire(requests);
        let mut whole = RequestParser::new(HttpLimits::default());
        whole.push(&stream);
        let expected = parse_all(&mut whole);
        prop_assert_eq!(expected.len(), requests);

        let mut split = RequestParser::new(HttpLimits::default());
        let mut got = Vec::new();
        let mut at = 0;
        // First chunk of `phase` bytes, then fixed-size chunks: the
        // phase slides every split point across request boundaries.
        let first = phase.min(stream.len());
        split.push(&stream[..first]);
        got.extend(parse_all(&mut split));
        at += first;
        while at < stream.len() {
            let end = (at + chunk).min(stream.len());
            split.push(&stream[at..end]);
            got.extend(parse_all(&mut split));
            at = end;
        }
        prop_assert_eq!(got, expected);
    }
}

#[test]
fn byte_by_byte_feed_parses_a_request_with_body() {
    let stream = wire(2);
    let mut parser = RequestParser::new(HttpLimits::default());
    let mut got = Vec::new();
    for byte in &stream {
        parser.push(std::slice::from_ref(byte));
        got.extend(parse_all(&mut parser));
    }
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].header("x-seq"), Some("0"));
    assert_eq!(got[1].header("x-seq"), Some("1"));
    assert_eq!(got[1].body, b"{\"n\":1}");
    assert_eq!(parser.buffered(), 0);
}

#[test]
fn pipelined_keep_alive_requests_pop_one_at_a_time() {
    let mut parser = RequestParser::new(HttpLimits::default());
    parser.push(&wire(3));
    let first = parser.next_request().unwrap().expect("first");
    assert_eq!(first.header("x-seq"), Some("0"));
    assert!(first.keep_alive());
    let second = parser.next_request().unwrap().expect("second");
    assert_eq!(second.header("x-seq"), Some("1"));
    let third = parser.next_request().unwrap().expect("third");
    assert_eq!(third.header("x-seq"), Some("2"));
    assert_eq!(parser.next_request().unwrap(), None);
}

#[test]
fn oversized_head_is_rejected_even_before_completion() {
    let limits = HttpLimits {
        max_head_bytes: 256,
        ..HttpLimits::default()
    };
    // Complete-but-huge head.
    let mut parser = RequestParser::new(limits);
    let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(512));
    parser.push(huge.as_bytes());
    assert!(matches!(
        parser.next_request(),
        Err(HttpError::HeadTooLarge { limit: 256 })
    ));

    // Unterminated head that already exceeds the limit: the parser
    // must bail *without* waiting for the blank line (memory bound).
    let mut parser = RequestParser::new(limits);
    parser.push(format!("GET / HTTP/1.1\r\nX-Pad: {}", "a".repeat(512)).as_bytes());
    let err = parser.next_request().expect_err("over limit");
    assert_eq!(err.status(), 431);
}

#[test]
fn oversized_declared_body_is_rejected_up_front() {
    let limits = HttpLimits {
        max_body_bytes: 100,
        ..HttpLimits::default()
    };
    let mut parser = RequestParser::new(limits);
    parser.push(b"POST /run HTTP/1.1\r\nContent-Length: 101\r\n\r\n");
    match parser.next_request() {
        Err(HttpError::BodyTooLarge { declared, limit }) => {
            assert_eq!((declared, limit), (101, 100));
        }
        other => panic!("expected BodyTooLarge, got {other:?}"),
    }
}

#[test]
fn garbage_content_length_is_a_400() {
    for bad in ["abc", "-1", "1.5", "9999999999999999999999999", ""] {
        let mut parser = RequestParser::new(HttpLimits::default());
        parser.push(format!("POST /run HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n").as_bytes());
        let err = parser.next_request().expect_err(bad);
        assert!(
            matches!(err, HttpError::BadContentLength(_)),
            "{bad:?}: {err:?}"
        );
        assert_eq!(err.status(), 400);
    }
    // Conflicting duplicates are smuggling vectors; reject.
    let mut parser = RequestParser::new(HttpLimits::default());
    parser.push(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n");
    assert!(matches!(
        parser.next_request(),
        Err(HttpError::BadContentLength(_))
    ));
}

#[test]
fn missing_content_length_means_empty_body() {
    let mut parser = RequestParser::new(HttpLimits::default());
    parser.push(b"POST /run HTTP/1.1\r\nHost: x\r\n\r\n");
    let req = parser.next_request().unwrap().expect("complete");
    assert!(req.body.is_empty());
}

#[test]
fn malformed_syntax_maps_to_400() {
    let cases: &[&[u8]] = &[
        b"GARBAGE\r\n\r\n",                           // no method/target/version
        b"GET /\r\n\r\n",                             // missing version
        b"GET / HTTP/1.1 extra\r\n\r\n",              // trailing junk
        b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",     // header without colon
        b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n", // obsolete folding
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", // no TE support
        b"\xff\xfe / HTTP/1.1\r\n\r\n",               // non-UTF-8 head
    ];
    for bytes in cases {
        let mut parser = RequestParser::new(HttpLimits::default());
        parser.push(bytes);
        let err = parser
            .next_request()
            .expect_err(&String::from_utf8_lossy(bytes));
        assert_eq!(
            err.status(),
            400,
            "{:?}: {err:?}",
            String::from_utf8_lossy(bytes)
        );
    }
}

#[test]
fn unsupported_version_maps_to_505() {
    let mut parser = RequestParser::new(HttpLimits::default());
    parser.push(b"GET / HTTP/2.0\r\n\r\n");
    let err = parser.next_request().expect_err("http/2 preface");
    assert!(matches!(err, HttpError::UnsupportedVersion(_)));
    assert_eq!(err.status(), 505);
}

#[test]
fn http10_close_default_and_11_keep_alive_interact_with_pipelining() {
    let mut parser = RequestParser::new(HttpLimits::default());
    parser.push(b"GET /healthz HTTP/1.0\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    let first = parser.next_request().unwrap().expect("first");
    assert!(!first.keep_alive(), "1.0 defaults to close");
    let second = parser.next_request().unwrap().expect("second");
    assert!(!second.keep_alive(), "explicit close wins over 1.1 default");
}
