//! Trace gap and malformed-record repair.
//!
//! Real cluster traces (and fault-injected replicas of them) carry two
//! kinds of damage: *gaps* — steps where the telemetry pipeline dropped
//! the record entirely — and *malformed records* — values that survived
//! transport but are non-finite or outside the `[0, 1]` utilization
//! range. [`Trace::new`] rightly rejects both, so damaged series must be
//! repaired **before** validation. This module provides the repair
//! policies and a [`RepairReport`] accounting of what was touched, so an
//! experiment can state exactly how much of its input was synthesized.
//!
//! Determinism: repair is a pure function of the input samples and the
//! policy — no randomness, no ambient state — so repaired traces are
//! bit-identical across runs and machines.

use crate::trace::{ClusterTrace, Trace};
use crate::WorkloadError;
use h2p_units::Seconds;

/// How damaged samples (gaps or malformed records) are repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepairPolicy {
    /// Replace each damaged sample with the last valid sample before
    /// it (leading damage takes the first valid sample after it).
    /// Thermally conservative under rising load: holds the plateau.
    HoldLast,
    /// Linearly interpolate across each damaged run between its valid
    /// neighbours; leading/trailing runs extend the nearest valid
    /// sample. Energy-faithful for short gaps.
    Interpolate,
    /// Refuse to repair: surface the first damaged sample as
    /// [`WorkloadError::InvalidSample`]. Use when damaged input must
    /// abort the experiment rather than silently degrade it.
    Error,
}

/// Accounting of a repair pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Samples that were missing entirely (gaps).
    pub gaps: usize,
    /// Samples present but non-finite or outside `[0, 1]`.
    pub malformed: usize,
}

impl RepairReport {
    /// Total repaired samples.
    #[must_use]
    pub fn repaired(&self) -> usize {
        self.gaps + self.malformed
    }

    /// Merges another report into this one.
    pub fn absorb(&mut self, other: RepairReport) {
        self.gaps += other.gaps;
        self.malformed += other.malformed;
    }
}

/// Classifies one raw record: `None` is a gap; `Some(v)` with a
/// non-finite or out-of-range `v` is malformed; anything else is valid.
fn classify(record: Option<f64>) -> Option<bool> {
    match record {
        None => Some(true),
        Some(v) if !v.is_finite() || !(0.0..=1.0).contains(&v) => Some(false),
        Some(_) => None,
    }
}

/// Repairs a raw record series (`None` = dropped record) into a clean
/// sample vector.
///
/// # Errors
///
/// * [`WorkloadError::EmptyTrace`] if `records` is empty or contains no
///   valid sample at all (nothing to repair from).
/// * [`WorkloadError::InvalidSample`] under [`RepairPolicy::Error`] at
///   the first damaged record (gaps are reported with a NaN value).
pub fn repair_records(
    records: &[Option<f64>],
    policy: RepairPolicy,
) -> Result<(Vec<f64>, RepairReport), WorkloadError> {
    if records.is_empty() {
        return Err(WorkloadError::EmptyTrace);
    }
    let mut report = RepairReport::default();
    for (index, &record) in records.iter().enumerate() {
        if let Some(is_gap) = classify(record) {
            if policy == RepairPolicy::Error {
                return Err(WorkloadError::InvalidSample {
                    index,
                    value: record.unwrap_or(f64::NAN),
                });
            }
            if is_gap {
                report.gaps += 1;
            } else {
                report.malformed += 1;
            }
        }
    }
    if report.repaired() == records.len() {
        // No valid sample anywhere: there is nothing to repair from.
        return Err(WorkloadError::EmptyTrace);
    }
    if report.repaired() == 0 {
        let clean: Vec<f64> = records.iter().map(|r| r.unwrap_or(f64::NAN)).collect();
        return Ok((clean, report));
    }

    let valid = |r: Option<f64>| classify(r).is_none();
    let mut out = Vec::with_capacity(records.len());
    let mut i = 0usize;
    while i < records.len() {
        if valid(records[i]) {
            out.push(records[i].unwrap_or(f64::NAN));
            i += 1;
            continue;
        }
        // Damaged run [i, j): find its valid neighbours.
        let mut j = i;
        while j < records.len() && !valid(records[j]) {
            j += 1;
        }
        let left = i.checked_sub(1).map(|k| out[k]);
        let right = records
            .get(j)
            .copied()
            .flatten()
            .filter(|v| v.is_finite() && (0.0..=1.0).contains(v));
        for (offset, _) in records[i..j].iter().enumerate() {
            let value = match (policy, left, right) {
                (RepairPolicy::HoldLast, Some(l), _) => l,
                (RepairPolicy::HoldLast, None, Some(r)) => r,
                (RepairPolicy::Interpolate, Some(l), Some(r)) => {
                    // Linear ramp over the run: left neighbour is step
                    // i-1, right neighbour is step j.
                    let span = (j - i + 1) as f64;
                    let t = (offset + 1) as f64 / span;
                    l + (r - l) * t
                }
                (RepairPolicy::Interpolate, Some(l), None) => l,
                (RepairPolicy::Interpolate, None, Some(r)) => r,
                // All-damaged was rejected above; one side must exist.
                _ => left.or(right).unwrap_or(0.0),
            };
            out.push(value);
        }
        i = j;
    }
    Ok((out, report))
}

/// Repairs a raw record series directly into a validated [`Trace`].
///
/// # Errors
///
/// Everything [`repair_records`] can return, plus any [`Trace::new`]
/// validation error (e.g. a non-positive interval).
pub fn repair_trace(
    interval: Seconds,
    records: &[Option<f64>],
    policy: RepairPolicy,
) -> Result<(Trace, RepairReport), WorkloadError> {
    let (samples, report) = repair_records(records, policy)?;
    let trace = Trace::new(interval, samples)?;
    Ok((trace, report))
}

/// Repairs a cluster of raw per-server record series into a validated
/// [`ClusterTrace`], accumulating one aggregate [`RepairReport`].
///
/// # Errors
///
/// Everything [`repair_trace`] can return, plus
/// [`WorkloadError::InconsistentCluster`] if servers disagree in length.
pub fn repair_cluster(
    interval: Seconds,
    servers: &[Vec<Option<f64>>],
    policy: RepairPolicy,
) -> Result<(ClusterTrace, RepairReport), WorkloadError> {
    let mut report = RepairReport::default();
    let mut traces = Vec::with_capacity(servers.len());
    for records in servers {
        let (trace, r) = repair_trace(interval, records, policy)?;
        report.absorb(r);
        traces.push(trace);
    }
    let cluster = ClusterTrace::new(traces)?;
    Ok((cluster, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval() -> Seconds {
        Seconds::new(300.0)
    }

    #[test]
    fn clean_records_pass_through_untouched() {
        let records: Vec<Option<f64>> = vec![Some(0.2), Some(0.4), Some(0.6)];
        let (samples, report) = repair_records(&records, RepairPolicy::HoldLast).unwrap();
        assert_eq!(samples, vec![0.2, 0.4, 0.6]);
        assert_eq!(report.repaired(), 0);
    }

    #[test]
    fn hold_last_fills_gaps_with_previous_value() {
        let records = vec![Some(0.3), None, None, Some(0.7)];
        let (samples, report) = repair_records(&records, RepairPolicy::HoldLast).unwrap();
        assert_eq!(samples, vec![0.3, 0.3, 0.3, 0.7]);
        assert_eq!(report.gaps, 2);
        assert_eq!(report.malformed, 0);
    }

    #[test]
    fn hold_last_leading_gap_takes_first_valid() {
        let records = vec![None, Some(0.5), Some(0.6)];
        let (samples, _) = repair_records(&records, RepairPolicy::HoldLast).unwrap();
        assert_eq!(samples, vec![0.5, 0.5, 0.6]);
    }

    #[test]
    fn interpolate_ramps_across_the_gap() {
        let records = vec![Some(0.2), None, None, None, Some(1.0)];
        let (samples, report) = repair_records(&records, RepairPolicy::Interpolate).unwrap();
        assert!((samples[1] - 0.4).abs() < 1e-12);
        assert!((samples[2] - 0.6).abs() < 1e-12);
        assert!((samples[3] - 0.8).abs() < 1e-12);
        assert_eq!(report.gaps, 3);
    }

    #[test]
    fn interpolate_extends_at_the_edges() {
        let records = vec![None, Some(0.4), None];
        let (samples, _) = repair_records(&records, RepairPolicy::Interpolate).unwrap();
        assert_eq!(samples, vec![0.4, 0.4, 0.4]);
    }

    #[test]
    fn malformed_records_counted_separately_from_gaps() {
        let records = vec![Some(0.2), Some(f64::NAN), None, Some(1.7), Some(0.4)];
        let (samples, report) = repair_records(&records, RepairPolicy::HoldLast).unwrap();
        assert_eq!(report.gaps, 1);
        assert_eq!(report.malformed, 2);
        assert_eq!(samples, vec![0.2, 0.2, 0.2, 0.2, 0.4]);
    }

    #[test]
    fn error_policy_surfaces_first_damage() {
        let records = vec![Some(0.2), None, Some(0.4)];
        let err = repair_records(&records, RepairPolicy::Error).unwrap_err();
        assert!(matches!(err, WorkloadError::InvalidSample { index: 1, .. }));
        let records = vec![Some(0.2), Some(-3.0)];
        let err = repair_records(&records, RepairPolicy::Error).unwrap_err();
        assert!(matches!(err, WorkloadError::InvalidSample { index: 1, value } if value == -3.0));
    }

    #[test]
    fn empty_or_all_damaged_is_rejected() {
        assert_eq!(
            repair_records(&[], RepairPolicy::HoldLast),
            Err(WorkloadError::EmptyTrace)
        );
        let records = vec![None, Some(f64::INFINITY), None];
        assert_eq!(
            repair_records(&records, RepairPolicy::Interpolate),
            Err(WorkloadError::EmptyTrace)
        );
    }

    #[test]
    fn repaired_trace_validates() {
        let records = vec![Some(0.3), None, Some(0.9)];
        let (trace, report) =
            repair_trace(interval(), &records, RepairPolicy::Interpolate).unwrap();
        assert_eq!(trace.len(), 3);
        assert!((trace.samples()[1] - 0.6).abs() < 1e-12);
        assert_eq!(report.repaired(), 1);
    }

    #[test]
    fn repaired_cluster_aggregates_reports() {
        let servers = vec![
            vec![Some(0.1), None, Some(0.3)],
            vec![None, Some(0.5), Some(f64::NAN)],
        ];
        let (cluster, report) =
            repair_cluster(interval(), &servers, RepairPolicy::HoldLast).unwrap();
        assert_eq!(cluster.servers(), 2);
        assert_eq!(cluster.steps(), 3);
        assert_eq!(report.gaps, 2);
        assert_eq!(report.malformed, 1);
        assert_eq!(cluster.trace(1).samples(), &[0.5, 0.5, 0.5]);
    }

    #[test]
    fn ragged_cluster_is_rejected() {
        let servers = vec![vec![Some(0.1), Some(0.2)], vec![Some(0.3)]];
        assert!(matches!(
            repair_cluster(interval(), &servers, RepairPolicy::HoldLast),
            Err(WorkloadError::InconsistentCluster { index: 1 })
        ));
    }

    #[test]
    fn repair_is_deterministic() {
        let records = vec![Some(0.2), None, Some(f64::NAN), Some(0.8), None];
        let a = repair_records(&records, RepairPolicy::Interpolate).unwrap();
        let b = repair_records(&records, RepairPolicy::Interpolate).unwrap();
        assert_eq!(a, b);
    }
}
