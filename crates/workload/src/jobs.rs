//! Job-trace ingestion: OpenDC-style invocation records.
//!
//! The synthetic generators ([`crate::TraceGenerator`]) produce
//! per-server utilization *series*; real datacenter archives instead
//! publish per-**job** records — an arrival time, a runtime, and a
//! resource demand, optionally tagged with a tenant (the shape of the
//! OpenDC/dslab `opendc_trace` format). This module reads and writes
//! that shape so the placement engine (`h2p-jobs`) can consume real
//! traces, not just generated ones.
//!
//! Two line-oriented encodings are accepted, sniffed from the first
//! non-blank line:
//!
//! * **CSV** — header `arrival_s,duration_s,utilization,tenant`
//!   (tenant column optional), one record per row;
//! * **JSONL** — one object per line:
//!   `{"arrival_s":0.0,"duration_s":900.0,"utilization":0.35,"tenant":"a"}`.
//!
//! Damaged `utilization` fields (empty, `null`, non-numeric, NaN, or
//! outside `[0, 1]`) are routed through the [`crate::repair`]
//! machinery exactly like damaged trace samples: [`RepairPolicy`]
//! decides whether to interpolate across neighboring records, hold the
//! last valid demand, or refuse the file. Damaged *structural* fields
//! (arrival, duration) cannot be synthesized and always fail, carrying
//! the file and line in the error.

use crate::io::TraceIoError;
use crate::repair::{self, RepairPolicy, RepairReport};
use crate::WorkloadError;
use serde::Serialize;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// One job (invocation) record: when it arrives, how long it runs, and
/// how much of one server it demands while running.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobRecord {
    /// Arrival time, seconds from the start of the trace.
    pub arrival_s: f64,
    /// Requested runtime in seconds.
    pub duration_s: f64,
    /// Per-server utilization demand in `[0, 1]` while the job runs.
    pub utilization: f64,
    /// Owning tenant, when the source records one (serialized as
    /// `null` when absent; the loader treats missing and `null` alike).
    pub tenant: Option<String>,
}

/// A validated sequence of job records, in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobTrace {
    records: Vec<JobRecord>,
}

impl JobTrace {
    /// Builds a job trace, validating every record: arrivals must be
    /// finite and non-negative, durations finite and strictly
    /// positive, demands in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidJob`] (or
    /// [`WorkloadError::InvalidSample`] for the demand field) naming
    /// the first offending record.
    pub fn new(records: Vec<JobRecord>) -> Result<Self, WorkloadError> {
        for (index, r) in records.iter().enumerate() {
            if !r.arrival_s.is_finite() || r.arrival_s < 0.0 {
                return Err(WorkloadError::InvalidJob {
                    index,
                    field: "arrival_s",
                    value: r.arrival_s,
                });
            }
            if !r.duration_s.is_finite() || !(r.duration_s > 0.0) {
                return Err(WorkloadError::InvalidJob {
                    index,
                    field: "duration_s",
                    value: r.duration_s,
                });
            }
            if !r.utilization.is_finite() || !(0.0..=1.0).contains(&r.utilization) {
                return Err(WorkloadError::InvalidSample {
                    index,
                    value: r.utilization,
                });
            }
        }
        Ok(JobTrace { records })
    }

    /// The records, in file order.
    #[must_use]
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A parsed line: the structural fields, the raw demand, and the
/// 1-based source line it came from.
struct RawJob {
    arrival_s: f64,
    duration_s: f64,
    utilization: Option<f64>,
    tenant: Option<String>,
    line: usize,
}

fn parse_error(file: &str, line: usize, message: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse {
        file: file.to_string(),
        line,
        message: message.into(),
    }
}

/// Parses one CSV data row. A missing or non-numeric utilization field
/// is a *gap* (repairable), but arrival/duration must parse.
fn parse_csv_row(
    file: &str,
    line: usize,
    row: &str,
    columns: &[usize; 4],
) -> Result<RawJob, TraceIoError> {
    let fields: Vec<&str> = row.split(',').map(str::trim).collect();
    let field = |col: usize| fields.get(col).copied().unwrap_or("");
    let numeric = |col: usize, name: &str| -> Result<f64, TraceIoError> {
        field(col).parse::<f64>().map_err(|_| {
            parse_error(
                file,
                line,
                format!("{name} field {:?} is not a number", field(col)),
            )
        })
    };
    let utilization = match field(columns[2]) {
        "" | "null" => None,
        text => text.parse::<f64>().ok().or(Some(f64::NAN)),
    };
    let tenant = match columns[3] {
        usize::MAX => None,
        col => match field(col) {
            "" => None,
            text => Some(text.to_string()),
        },
    };
    Ok(RawJob {
        arrival_s: numeric(columns[0], "arrival_s")?,
        duration_s: numeric(columns[1], "duration_s")?,
        utilization,
        tenant,
        line,
    })
}

/// Resolves the CSV header into column positions for
/// `[arrival_s, duration_s, utilization, tenant]` (`usize::MAX` marks
/// an absent tenant column).
fn parse_csv_header(file: &str, header: &str) -> Result<[usize; 4], TraceIoError> {
    let mut columns = [usize::MAX; 4];
    for (col, name) in header.split(',').map(str::trim).enumerate() {
        match name {
            "arrival_s" => columns[0] = col,
            "duration_s" => columns[1] = col,
            "utilization" => columns[2] = col,
            "tenant" => columns[3] = col,
            other => {
                return Err(parse_error(
                    file,
                    1,
                    format!("unknown column {other:?} in header"),
                ))
            }
        }
    }
    for (slot, name) in [(0, "arrival_s"), (1, "duration_s"), (2, "utilization")] {
        if columns[slot] == usize::MAX {
            return Err(parse_error(
                file,
                1,
                format!("header missing column {name:?}"),
            ));
        }
    }
    Ok(columns)
}

fn parse_jsonl_line(file: &str, line: usize, text: &str) -> Result<RawJob, TraceIoError> {
    let value: serde::Value =
        serde_json::from_str(text).map_err(|e| parse_error(file, line, e.to_string()))?;
    let object = value
        .as_object()
        .ok_or_else(|| parse_error(file, line, "expected a JSON object"))?;
    let field = |name: &str| object.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let numeric = |name: &str| -> Result<f64, TraceIoError> {
        field(name)
            .and_then(serde::Value::as_f64)
            .ok_or_else(|| parse_error(file, line, format!("field {name:?} must be a number")))
    };
    // A missing or null demand is a gap; a non-numeric one is
    // malformed — both go to the repair machinery as `None`/NaN.
    let utilization = match field("utilization") {
        None | Some(serde::Value::Null) => None,
        Some(v) => v.as_f64().or(Some(f64::NAN)),
    };
    let tenant = match field("tenant") {
        None | Some(serde::Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| parse_error(file, line, "field \"tenant\" must be a string"))?
                .to_string(),
        ),
    };
    Ok(RawJob {
        arrival_s: numeric("arrival_s")?,
        duration_s: numeric("duration_s")?,
        utilization,
        tenant,
        line,
    })
}

fn parse_document(file: &str, contents: &str) -> Result<Vec<RawJob>, TraceIoError> {
    let mut lines = contents
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((first_no, first)) = lines.next() else {
        return Ok(Vec::new());
    };
    let mut raw = Vec::new();
    if first.trim_start().starts_with('{') {
        raw.push(parse_jsonl_line(file, first_no, first)?);
        for (line, text) in lines {
            raw.push(parse_jsonl_line(file, line, text)?);
        }
    } else {
        let columns = parse_csv_header(file, first)?;
        for (line, text) in lines {
            raw.push(parse_csv_row(file, line, text, &columns)?);
        }
    }
    Ok(raw)
}

/// Loads a job trace from a CSV or JSONL file (format sniffed from the
/// first non-blank line), repairing damaged demand fields under
/// `policy`.
///
/// Returns the validated trace with the [`RepairReport`] stating how
/// many demands were synthesized.
///
/// # Errors
///
/// * [`TraceIoError::Io`] on filesystem failure.
/// * [`TraceIoError::Parse`] (with file and line) on unparseable rows
///   or structural fields.
/// * [`TraceIoError::Invalid`] when repair refuses the damage
///   ([`RepairPolicy::Error`]) or a structural invariant fails; the
///   error's context carries the file and the originating source line.
pub fn load_jobs(
    path: impl AsRef<Path>,
    policy: RepairPolicy,
) -> Result<(JobTrace, RepairReport), TraceIoError> {
    let path = path.as_ref();
    let file = path.display().to_string();
    let contents = std::fs::read_to_string(path)?;
    let raw = parse_document(&file, &contents)?;
    if raw.is_empty() {
        return Ok((JobTrace::default(), RepairReport::default()));
    }

    // Route the demand column through the repair machinery, then map
    // any refusal back to the originating source line.
    let demands: Vec<Option<f64>> = raw.iter().map(|r| r.utilization).collect();
    let (repaired, report) = repair::repair_records(&demands, policy).map_err(|e| {
        let record = match &e {
            WorkloadError::InvalidSample { index, .. } => Some(*index),
            _ => None,
        };
        match record {
            Some(index) => {
                let line = raw.get(index).map(|r| r.line);
                TraceIoError::invalid_at(e, file.clone(), index, line)
            }
            None => TraceIoError::from(e),
        }
    })?;

    let records: Vec<JobRecord> = raw
        .iter()
        .zip(&repaired)
        .map(|(r, &utilization)| JobRecord {
            arrival_s: r.arrival_s,
            duration_s: r.duration_s,
            utilization,
            tenant: r.tenant.clone(),
        })
        .collect();
    let trace = JobTrace::new(records).map_err(|e| {
        let record = match &e {
            WorkloadError::InvalidJob { index, .. }
            | WorkloadError::InvalidSample { index, .. } => Some(*index),
            _ => None,
        };
        match record {
            Some(index) => {
                let line = raw.get(index).map(|r| r.line);
                TraceIoError::invalid_at(e, file.clone(), index, line)
            }
            None => TraceIoError::from(e),
        }
    })?;
    Ok((trace, report))
}

/// Writes a job trace as JSONL (one record per line), the richer of
/// the two accepted encodings: a trace loaded from CSV round-trips
/// through this writer and [`load_jobs`] unchanged.
///
/// # Errors
///
/// [`TraceIoError::Io`] / [`TraceIoError::Format`] on filesystem or
/// serialization failure (the final flush is explicit so buffered
/// write errors surface).
pub fn save_jobs(trace: &JobTrace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    for record in trace.records() {
        serde_json::to_writer(&mut writer, record)?;
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_doc(name: &str, body: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("h2p_job_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, body.as_bytes()).unwrap();
        path
    }

    #[test]
    fn csv_and_jsonl_parse_to_the_same_records() {
        let csv = write_doc(
            "pair.csv",
            "arrival_s,duration_s,utilization,tenant\n0,600,0.25,acme\n300,900,0.5,\n",
        );
        let jsonl = write_doc(
            "pair.jsonl",
            concat!(
                "{\"arrival_s\":0.0,\"duration_s\":600.0,\"utilization\":0.25,\"tenant\":\"acme\"}\n",
                "{\"arrival_s\":300.0,\"duration_s\":900.0,\"utilization\":0.5}\n",
            ),
        );
        let (a, ra) = load_jobs(&csv, RepairPolicy::Error).unwrap();
        let (b, rb) = load_jobs(&jsonl, RepairPolicy::Error).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.records()[0].tenant.as_deref(), Some("acme"));
        assert_eq!(ra.repaired() + rb.repaired(), 0);
    }

    #[test]
    fn damaged_demands_route_through_repair() {
        let path = write_doc(
            "gappy.csv",
            "arrival_s,duration_s,utilization\n0,600,0.2\n60,600,\n120,600,1.8\n180,600,0.6\n",
        );
        let (trace, report) = load_jobs(&path, RepairPolicy::Interpolate).unwrap();
        assert_eq!(report.gaps, 1);
        assert_eq!(report.malformed, 1);
        let demands: Vec<f64> = trace.records().iter().map(|r| r.utilization).collect();
        assert!(
            (demands[1] - 0.2 - (0.6 - 0.2) / 3.0).abs() < 1e-12,
            "{demands:?}"
        );
        assert!(demands.iter().all(|d| (0.0..=1.0).contains(d)));
    }

    #[test]
    fn error_policy_names_the_file_and_line() {
        let path = write_doc(
            "strict.csv",
            "arrival_s,duration_s,utilization\n0,600,0.2\n60,600,nope\n",
        );
        let err = load_jobs(&path, RepairPolicy::Error).unwrap_err();
        match &err {
            TraceIoError::Invalid {
                error: WorkloadError::InvalidSample { index: 1, .. },
                context: Some(ctx),
            } => {
                assert!(ctx.file.contains("strict.csv"), "{ctx:?}");
                assert_eq!(ctx.record, 1, "{ctx:?}");
                assert_eq!(ctx.line, Some(3), "{ctx:?}");
            }
            other => panic!("unexpected error shape: {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("strict.csv:3"), "{text}");
    }

    #[test]
    fn structural_damage_is_not_repairable() {
        let path = write_doc(
            "bad_duration.jsonl",
            "{\"arrival_s\":0.0,\"duration_s\":-5.0,\"utilization\":0.2}\n",
        );
        let err = load_jobs(&path, RepairPolicy::Interpolate).unwrap_err();
        match &err {
            TraceIoError::Invalid {
                error:
                    WorkloadError::InvalidJob {
                        index: 0,
                        field: "duration_s",
                        ..
                    },
                context: Some(ctx),
            } => assert_eq!(ctx.line, Some(1), "{ctx:?}"),
            other => panic!("unexpected error shape: {other:?}"),
        }

        let path = write_doc(
            "bad_row.csv",
            "arrival_s,duration_s,utilization\nzero,600,0.2\n",
        );
        let err = load_jobs(&path, RepairPolicy::Interpolate).unwrap_err();
        assert!(
            matches!(err, TraceIoError::Parse { line: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn save_load_roundtrip() {
        let records = vec![
            JobRecord {
                arrival_s: 0.0,
                duration_s: 600.0,
                utilization: 0.25,
                tenant: Some("acme".to_string()),
            },
            JobRecord {
                arrival_s: 42.5,
                duration_s: 1800.0,
                utilization: 0.7,
                tenant: None,
            },
        ];
        let trace = JobTrace::new(records).unwrap();
        let path = write_doc("roundtrip.jsonl", "");
        save_jobs(&trace, &path).unwrap();
        let (back, report) = load_jobs(&path, RepairPolicy::Error).unwrap();
        assert_eq!(back, trace);
        assert_eq!(report.repaired(), 0);
    }

    #[test]
    fn empty_document_is_an_empty_trace() {
        let path = write_doc("empty.csv", "\n\n");
        let (trace, report) = load_jobs(&path, RepairPolicy::Error).unwrap();
        assert!(trace.is_empty());
        assert_eq!(report.repaired(), 0);
    }
}
