//! Workload-trace substrate: cluster CPU-utilization time series.
//!
//! The paper evaluates H2P against three trace classes (Sec. V-C):
//!
//! * **Drastic** — Alibaba cluster trace, 1,313 servers over 12 h,
//!   "drastic and frequent fluctuations";
//! * **Irregular** — 1,000 servers for 24 h from the Google cluster
//!   trace, "relatively common, but with occasional high peaks";
//! * **Common** — another 1,000 Google servers for 24 h, "very little
//!   fluctuations".
//!
//! The original traces are a data gate (multi-GB external downloads), so
//! this crate provides *seeded synthetic generators* matched to the
//! qualitative shape the paper names for each class — a diurnal baseline
//! with per-server phase, mean-reverting (Ornstein-Uhlenbeck) noise, and
//! (for Irregular/Drastic) stochastic load bursts. The statistical
//! contract (volatility ordering, peak structure, mean band) is pinned
//! down by tests, and every generator is deterministic in its seed.
//!
//! # Examples
//!
//! ```
//! use h2p_workload::{TraceGenerator, TraceKind};
//!
//! let cluster = TraceGenerator::paper(TraceKind::Common, 42).generate();
//! assert_eq!(cluster.servers(), 1000);
//! assert_eq!(cluster.steps(), 288); // 24 h at 5-minute intervals
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used as a deliberate NaN-rejecting validation idiom
// throughout (NaN fails the guard, unlike `x <= 0.0`).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

mod generators;
pub mod io;
pub mod jobs;
pub mod repair;
mod trace;

pub use generators::{
    BurstProfile, GeneratorProfile, ShardStream, TraceGenerator, TraceKind, TraceShard,
};
pub use jobs::{JobRecord, JobTrace};
pub use repair::{RepairPolicy, RepairReport};
pub use trace::{Aggregate, ClusterTrace, Trace};

use core::fmt;

/// Errors from trace construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A trace needs at least one sample.
    EmptyTrace,
    /// A sample was outside `\[0, 1\]` or NaN.
    InvalidSample {
        /// Index of the bad sample.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The sampling interval must be strictly positive.
    NonPositiveInterval {
        /// The offending value in seconds.
        seconds: f64,
    },
    /// Cluster members disagreed in length or interval.
    InconsistentCluster {
        /// Index of the first offending member.
        index: usize,
    },
    /// A job record violated the job-trace invariants (non-finite or
    /// negative arrival, non-positive duration).
    InvalidJob {
        /// Index of the bad record.
        index: usize,
        /// Which field was bad.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::EmptyTrace => write!(f, "trace has no samples"),
            WorkloadError::InvalidSample { index, value } => {
                write!(f, "sample {index} = {value} outside [0, 1]")
            }
            WorkloadError::NonPositiveInterval { seconds } => {
                write!(f, "interval {seconds} s is not positive")
            }
            WorkloadError::InconsistentCluster { index } => {
                write!(f, "cluster member {index} disagrees in length or interval")
            }
            WorkloadError::InvalidJob {
                index,
                field,
                value,
            } => {
                write!(f, "job record {index}: {field} = {value} is invalid")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}
