//! Trace persistence.
//!
//! Clusters serialize to a compact JSON document (interval + per-server
//! sample arrays), so generated workloads can be archived and replayed
//! across experiment runs, or real traces (converted offline from the
//! Google/Alibaba archives) can be loaded in place of the synthetic
//! generators.

use crate::repair::{self, RepairPolicy, RepairReport};
use crate::trace::ClusterTrace;
use crate::WorkloadError;
use h2p_units::Seconds;
use serde::Deserialize;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Where in a source document an invalid record came from.
///
/// Multi-shard loads (many servers per document, many jobs per trace)
/// used to surface bare [`WorkloadError`]s whose `index` fields count
/// *within one record series*, losing which series — and which source
/// line — was damaged. Loaders attach this context so a repair refusal
/// points back at the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordContext {
    /// The path handed to the loader, as given by the caller.
    pub file: String,
    /// 0-based index of the offending record series within the
    /// document: the server trace for cluster documents, the job
    /// record for job traces.
    pub record: usize,
    /// 1-based source line, when the format is line-oriented
    /// (CSV/JSONL). `None` for single-document JSON.
    pub line: Option<usize>,
}

impl core::fmt::Display for RecordContext {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.line {
            Some(line) => write!(f, "{}:{} (record {})", self.file, line, self.record),
            None => write!(f, "{} (record {})", self.file, self.record),
        }
    }
}

/// Errors from trace I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed trace document.
    Format(serde_json::Error),
    /// A line-oriented job-trace document failed to parse.
    Parse {
        /// Source file path.
        file: String,
        /// 1-based line number of the unparseable line.
        line: usize,
        /// What was wrong with the line.
        message: String,
    },
    /// The document parsed but its contents violate trace invariants
    /// (or a repair policy refused to fix them).
    Invalid {
        /// The violated invariant.
        error: WorkloadError,
        /// Where the offending record came from, when the loader can
        /// attribute it. `None` only for errors that concern the
        /// document as a whole.
        context: Option<RecordContext>,
    },
}

impl TraceIoError {
    /// An [`Invalid`](Self::Invalid) error attributed to a source
    /// location.
    #[must_use]
    pub fn invalid_at(
        error: WorkloadError,
        file: impl Into<String>,
        record: usize,
        line: Option<usize>,
    ) -> Self {
        TraceIoError::Invalid {
            error,
            context: Some(RecordContext {
                file: file.into(),
                record,
                line,
            }),
        }
    }
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Format(e) => write!(f, "trace document malformed: {e}"),
            TraceIoError::Parse {
                file,
                line,
                message,
            } => write!(f, "trace record malformed at {file}:{line}: {message}"),
            TraceIoError::Invalid {
                error,
                context: Some(ctx),
            } => write!(f, "trace contents invalid at {ctx}: {error}"),
            TraceIoError::Invalid {
                error,
                context: None,
            } => write!(f, "trace contents invalid: {error}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(e) => Some(e),
            TraceIoError::Parse { .. } => None,
            TraceIoError::Invalid { error, .. } => Some(error),
        }
    }
}

impl From<WorkloadError> for TraceIoError {
    fn from(e: WorkloadError) -> Self {
        TraceIoError::Invalid {
            error: e,
            context: None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Format(e)
    }
}

/// Writes a cluster trace to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on filesystem or serialization failure,
/// including failures surfaced when the buffered writer is flushed
/// (dropping a `BufWriter` swallows write errors, so the flush is
/// explicit).
pub fn save_cluster(cluster: &ClusterTrace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    serde_json::to_writer(&mut writer, cluster)?;
    writer.flush()?;
    Ok(())
}

/// Reads a cluster trace from a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on filesystem failure or a malformed
/// document (including documents violating the trace invariants —
/// lengths, intervals and sample ranges are re-validated on entry).
pub fn load_cluster(path: impl AsRef<Path>) -> Result<ClusterTrace, TraceIoError> {
    let file = File::open(path)?;
    let cluster: ClusterTrace = serde_json::from_reader(BufReader::new(file))?;
    Ok(cluster)
}

/// Lenient on-disk shape: per-trace records may be `null` (a dropped
/// record / gap) or out-of-range (a malformed record), both of which
/// the strict [`load_cluster`] path rejects.
#[derive(Deserialize)]
struct RaggedDocument {
    traces: Vec<RaggedTrace>,
}

/// One server's raw record series in a [`RaggedDocument`].
#[derive(Deserialize)]
struct RaggedTrace {
    interval_seconds: f64,
    samples: Vec<Option<f64>>,
}

/// Reads a possibly-damaged cluster trace, repairing gaps (`null`
/// records) and malformed samples under `policy`.
///
/// The document layout matches [`save_cluster`]'s output, except that
/// samples may be `null`. Returns the validated cluster together with
/// a [`RepairReport`] stating how many records were synthesized, so
/// experiments can bound how much of their input is real.
///
/// # Errors
///
/// * [`TraceIoError::Io`] / [`TraceIoError::Format`] as for
///   [`load_cluster`].
/// * [`TraceIoError::Invalid`] when the repaired contents still violate
///   trace invariants — including [`RepairPolicy::Error`] refusing
///   damage, a whole server with no valid record, or servers that
///   disagree in interval or length. The error's [`RecordContext`]
///   names the file and the offending server-trace index, so multi-
///   shard loads no longer lose which series was damaged.
pub fn load_cluster_repaired(
    path: impl AsRef<Path>,
    policy: RepairPolicy,
) -> Result<(ClusterTrace, RepairReport), TraceIoError> {
    let path = path.as_ref();
    let file = File::open(path)?;
    let doc: RaggedDocument = serde_json::from_reader(BufReader::new(file))?;
    let mut report = RepairReport::default();
    let mut traces = Vec::with_capacity(doc.traces.len());
    for (index, raw) in doc.traces.iter().enumerate() {
        let (trace, r) =
            repair::repair_trace(Seconds::new(raw.interval_seconds), &raw.samples, policy)
                .map_err(|e| {
                    TraceIoError::invalid_at(e, path.display().to_string(), index, None)
                })?;
        report.absorb(r);
        traces.push(trace);
    }
    let cluster = ClusterTrace::new(traces).map_err(|e| {
        let record = match &e {
            WorkloadError::InconsistentCluster { index } => Some(*index),
            _ => None,
        };
        match record {
            Some(index) => TraceIoError::invalid_at(e, path.display().to_string(), index, None),
            None => TraceIoError::from(e),
        }
    })?;
    Ok((cluster, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, TraceKind};

    #[test]
    fn save_load_roundtrip() {
        let cluster = TraceGenerator::paper(TraceKind::Common, 5)
            .with_servers(10)
            .with_steps(12)
            .generate();
        let dir = std::env::temp_dir().join("h2p_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        save_cluster(&cluster, &path).unwrap();
        let back = load_cluster(&path).unwrap();
        assert_eq!(back, cluster);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = load_cluster("/nonexistent/h2p/trace.json").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn malformed_document_reports_format_error() {
        let dir = std::env::temp_dir().join("h2p_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = load_cluster(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        std::fs::remove_file(&path).ok();
    }

    fn write_doc(name: &str, body: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("h2p_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, body.as_bytes()).unwrap();
        path
    }

    #[test]
    fn repaired_loader_fills_null_records() {
        let path = write_doc(
            "gappy.json",
            r#"{"traces":[{"interval_seconds":300.0,"samples":[0.2,null,0.6]},
                          {"interval_seconds":300.0,"samples":[null,0.5,9.9]}]}"#,
        );
        let (cluster, report) = load_cluster_repaired(&path, RepairPolicy::Interpolate).unwrap();
        assert_eq!(cluster.servers(), 2);
        assert!((cluster.trace(0).samples()[1] - 0.4).abs() < 1e-12);
        assert_eq!(cluster.trace(1).samples(), &[0.5, 0.5, 0.5]);
        assert_eq!(report.gaps, 2);
        assert_eq!(report.malformed, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repaired_loader_error_policy_reports_invalid() {
        let path = write_doc(
            "gappy_strict.json",
            r#"{"traces":[{"interval_seconds":300.0,"samples":[0.2,null,0.6]}]}"#,
        );
        let err = load_cluster_repaired(&path, RepairPolicy::Error).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::Invalid {
                error: WorkloadError::InvalidSample { index: 1, .. },
                ..
            }
        ));
        assert!(err.to_string().contains("invalid"));
        assert!(std::error::Error::source(&err).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repaired_loader_reports_which_shard_was_damaged() {
        // Regression: with several server shards in one document, a
        // repair refusal must name the originating trace index and
        // file, not just the within-series sample index.
        let path = write_doc(
            "multi_shard_strict.json",
            r#"{"traces":[{"interval_seconds":300.0,"samples":[0.2,0.3]},
                          {"interval_seconds":300.0,"samples":[0.4,0.5]},
                          {"interval_seconds":300.0,"samples":[0.6,null]}]}"#,
        );
        let err = load_cluster_repaired(&path, RepairPolicy::Error).unwrap_err();
        match &err {
            TraceIoError::Invalid {
                error: WorkloadError::InvalidSample { index: 1, .. },
                context: Some(ctx),
            } => {
                assert_eq!(ctx.record, 2, "{ctx:?}");
                assert!(ctx.file.contains("multi_shard_strict.json"), "{ctx:?}");
                assert_eq!(ctx.line, None, "{ctx:?}");
            }
            other => panic!("unexpected error shape: {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("multi_shard_strict.json"), "{text}");
        assert!(text.contains("record 2"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repaired_loader_rejects_inconsistent_servers() {
        let path = write_doc(
            "ragged.json",
            r#"{"traces":[{"interval_seconds":300.0,"samples":[0.2,0.3]},
                          {"interval_seconds":300.0,"samples":[0.4]}]}"#,
        );
        let err = load_cluster_repaired(&path, RepairPolicy::HoldLast).unwrap_err();
        match &err {
            TraceIoError::Invalid {
                error: WorkloadError::InconsistentCluster { index: 1 },
                context: Some(ctx),
            } => assert_eq!(ctx.record, 1, "{ctx:?}"),
            other => panic!("unexpected error shape: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repaired_loader_matches_strict_loader_on_clean_documents() {
        let cluster = TraceGenerator::paper(TraceKind::Irregular, 7)
            .with_servers(6)
            .with_steps(10)
            .generate();
        let dir = std::env::temp_dir().join("h2p_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean_repair.json");
        save_cluster(&cluster, &path).unwrap();
        let strict = load_cluster(&path).unwrap();
        let (lenient, report) = load_cluster_repaired(&path, RepairPolicy::Error).unwrap();
        assert_eq!(strict, lenient);
        assert_eq!(report.repaired(), 0);
        std::fs::remove_file(&path).ok();
    }
}
