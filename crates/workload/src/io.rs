//! Trace persistence.
//!
//! Clusters serialize to a compact JSON document (interval + per-server
//! sample arrays), so generated workloads can be archived and replayed
//! across experiment runs, or real traces (converted offline from the
//! Google/Alibaba archives) can be loaded in place of the synthetic
//! generators.

use crate::trace::ClusterTrace;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from trace I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed trace document.
    Format(serde_json::Error),
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Format(e) => write!(f, "trace document malformed: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Format(e)
    }
}

/// Writes a cluster trace to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on filesystem or serialization failure,
/// including failures surfaced when the buffered writer is flushed
/// (dropping a `BufWriter` swallows write errors, so the flush is
/// explicit).
pub fn save_cluster(cluster: &ClusterTrace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    serde_json::to_writer(&mut writer, cluster)?;
    writer.flush()?;
    Ok(())
}

/// Reads a cluster trace from a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on filesystem failure or a malformed
/// document (including documents violating the trace invariants —
/// lengths, intervals and sample ranges are re-validated on entry).
pub fn load_cluster(path: impl AsRef<Path>) -> Result<ClusterTrace, TraceIoError> {
    let file = File::open(path)?;
    let cluster: ClusterTrace = serde_json::from_reader(BufReader::new(file))?;
    Ok(cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, TraceKind};

    #[test]
    fn save_load_roundtrip() {
        let cluster = TraceGenerator::paper(TraceKind::Common, 5)
            .with_servers(10)
            .with_steps(12)
            .generate();
        let dir = std::env::temp_dir().join("h2p_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        save_cluster(&cluster, &path).unwrap();
        let back = load_cluster(&path).unwrap();
        assert_eq!(back, cluster);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = load_cluster("/nonexistent/h2p/trace.json").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn malformed_document_reports_format_error() {
        let dir = std::env::temp_dir().join("h2p_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = load_cluster(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        std::fs::remove_file(&path).ok();
    }
}
