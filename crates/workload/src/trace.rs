//! Trace data structures.

use crate::WorkloadError;
use h2p_units::{Seconds, Utilization};
use serde::{Deserialize, Serialize};

/// How a downsampling window is aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Mean of the window (energy-faithful).
    Mean,
    /// Maximum of the window (thermally conservative).
    Max,
}

/// One server's CPU-utilization time series at a fixed sampling
/// interval.
///
/// Samples are stored as raw fractions (validated into `\[0, 1\]` at
/// construction) so traces serialize to plain JSON arrays.
/// Deserialization funnels through [`Trace::new`], so documents read
/// from disk satisfy the same invariants as constructed traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "TraceDocument")]
pub struct Trace {
    interval_seconds: f64,
    samples: Vec<f64>,
}

/// Raw serialized shape of a [`Trace`], validated on entry.
#[derive(Deserialize)]
struct TraceDocument {
    interval_seconds: f64,
    samples: Vec<f64>,
}

impl TryFrom<TraceDocument> for Trace {
    type Error = WorkloadError;
    fn try_from(doc: TraceDocument) -> Result<Self, Self::Error> {
        Trace::new(Seconds::new(doc.interval_seconds), doc.samples)
    }
}

impl Trace {
    /// Creates a trace from raw utilization fractions.
    ///
    /// # Errors
    ///
    /// * [`WorkloadError::EmptyTrace`] for no samples.
    /// * [`WorkloadError::NonPositiveInterval`] for a bad interval.
    /// * [`WorkloadError::InvalidSample`] for a sample outside `\[0, 1\]`.
    pub fn new(interval: Seconds, samples: Vec<f64>) -> Result<Self, WorkloadError> {
        if samples.is_empty() {
            return Err(WorkloadError::EmptyTrace);
        }
        if !(interval.value() > 0.0) {
            return Err(WorkloadError::NonPositiveInterval {
                seconds: interval.value(),
            });
        }
        for (index, &value) in samples.iter().enumerate() {
            if value.is_nan() || !(0.0..=1.0).contains(&value) {
                return Err(WorkloadError::InvalidSample { index, value });
            }
        }
        Ok(Trace {
            interval_seconds: interval.value(),
            samples,
        })
    }

    /// The sampling interval.
    #[must_use]
    pub fn interval(&self) -> Seconds {
        Seconds::new(self.interval_seconds)
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty (never true for a constructed trace).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total covered duration.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.interval_seconds * self.samples.len() as f64)
    }

    /// Utilization at step `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> Utilization {
        Utilization::saturating(self.samples[i])
    }

    /// Raw samples as fractions.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean utilization over the trace.
    #[must_use]
    pub fn mean(&self) -> Utilization {
        Utilization::saturating(
            // h2p-lint: allow(L2): constructor rejects empty traces
            h2p_stats::descriptive::mean(&self.samples).expect("non-empty by invariant"),
        )
    }

    /// Peak utilization over the trace.
    #[must_use]
    pub fn peak(&self) -> Utilization {
        Utilization::saturating(
            // h2p-lint: allow(L2): constructor rejects empty traces
            h2p_stats::descriptive::max(&self.samples).expect("non-empty by invariant"),
        )
    }

    /// Mean absolute step-to-step change — the volatility measure that
    /// separates *Drastic* from *Common*.
    #[must_use]
    pub fn volatility(&self) -> f64 {
        h2p_stats::descriptive::mean_abs_diff(&self.samples).unwrap_or(0.0)
    }
}

/// A cluster of per-server traces with identical length and interval.
/// Deserialization funnels through [`ClusterTrace::new`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "ClusterDocument")]
pub struct ClusterTrace {
    traces: Vec<Trace>,
}

/// Raw serialized shape of a [`ClusterTrace`], validated on entry.
#[derive(Deserialize)]
struct ClusterDocument {
    traces: Vec<Trace>,
}

impl TryFrom<ClusterDocument> for ClusterTrace {
    type Error = WorkloadError;
    fn try_from(doc: ClusterDocument) -> Result<Self, Self::Error> {
        ClusterTrace::new(doc.traces)
    }
}

impl ClusterTrace {
    /// Bundles per-server traces into a cluster.
    ///
    /// # Errors
    ///
    /// * [`WorkloadError::EmptyTrace`] for an empty list.
    /// * [`WorkloadError::InconsistentCluster`] if members disagree in
    ///   length or interval.
    pub fn new(traces: Vec<Trace>) -> Result<Self, WorkloadError> {
        let first = traces.first().ok_or(WorkloadError::EmptyTrace)?;
        let (len, interval) = (first.len(), first.interval_seconds);
        for (index, t) in traces.iter().enumerate().skip(1) {
            // Exact-representation check: intervals are copied, not
            // recomputed, so bitwise equality is the right test.
            #[allow(clippy::float_cmp)]
            let mismatch = t.len() != len || t.interval_seconds != interval;
            if mismatch {
                return Err(WorkloadError::InconsistentCluster { index });
            }
        }
        Ok(ClusterTrace { traces })
    }

    /// Number of servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.traces.len()
    }

    /// Number of time steps.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.traces[0].len()
    }

    /// The common sampling interval.
    #[must_use]
    pub fn interval(&self) -> Seconds {
        self.traces[0].interval()
    }

    /// Total covered duration.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.traces[0].duration()
    }

    /// The trace of server `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn trace(&self, i: usize) -> &Trace {
        &self.traces[i]
    }

    /// Iterates over the per-server traces.
    pub fn iter(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Per-server utilizations at time step `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    #[must_use]
    pub fn utilizations_at(&self, step: usize) -> Vec<Utilization> {
        self.traces.iter().map(|t| t.get(step)).collect()
    }

    /// Cluster-mean utilization series (one value per step) — the
    /// `U_avg` input of the load-balancing policy.
    #[must_use]
    pub fn mean_series(&self) -> Vec<Utilization> {
        (0..self.steps())
            .map(|s| Utilization::mean_of(&self.utilizations_at(s)))
            .collect()
    }

    /// Cluster-max utilization series — the `U_max` input of the
    /// baseline policy.
    #[must_use]
    pub fn max_series(&self) -> Vec<Utilization> {
        (0..self.steps())
            .map(|s| Utilization::max_of(&self.utilizations_at(s)))
            .collect()
    }

    /// Mean utilization over every server and step.
    #[must_use]
    pub fn overall_mean(&self) -> Utilization {
        let total: f64 = self.traces.iter().map(|t| t.mean().value()).sum();
        Utilization::saturating(total / self.traces.len() as f64)
    }

    /// Mean per-server volatility.
    #[must_use]
    pub fn mean_volatility(&self) -> f64 {
        self.traces.iter().map(Trace::volatility).sum::<f64>() / self.traces.len() as f64
    }

    /// Downsamples every trace by `factor`, aggregating each window
    /// with `how`. Converting a 1-minute trace to the paper's 5-minute
    /// control interval uses `Aggregate::Mean`; conservative thermal
    /// sizing uses `Aggregate::Max` (the controller must survive the
    /// worst minute of each window).
    ///
    /// Trailing samples that do not fill a window are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or not smaller than the trace length.
    #[must_use]
    pub fn downsample(&self, factor: usize, how: Aggregate) -> ClusterTrace {
        assert!(factor > 0, "factor must be positive");
        assert!(factor <= self.steps(), "factor exceeds trace length");
        let traces: Vec<Trace> = self
            .traces
            .iter()
            .map(|t| {
                let samples: Vec<f64> = t
                    .samples()
                    .chunks_exact(factor)
                    .map(|w| match how {
                        Aggregate::Mean => w.iter().sum::<f64>() / w.len() as f64,
                        Aggregate::Max => w.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    })
                    .collect();
                Trace::new(t.interval() * factor as f64, samples)
                    // h2p-lint: allow(L2): aggregates of [0, 1] samples stay in range
                    .expect("windows of valid samples are valid")
            })
            .collect();
        // h2p-lint: allow(L2): uniform downsampling keeps traces consistent
        ClusterTrace::new(traces).expect("downsampling preserves consistency")
    }

    /// Restricts the cluster to its first `n` servers (cheap way to
    /// build smaller experiments from a paper-sized cluster).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the cluster size.
    #[must_use]
    pub fn take_servers(&self, n: usize) -> ClusterTrace {
        assert!(n > 0 && n <= self.servers(), "bad server count {n}");
        ClusterTrace {
            traces: self.traces[..n].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: Vec<f64>) -> Trace {
        Trace::new(Seconds::minutes(5.0), samples).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            Trace::new(Seconds::minutes(5.0), vec![]),
            Err(WorkloadError::EmptyTrace)
        );
        assert!(matches!(
            Trace::new(Seconds::new(0.0), vec![0.5]),
            Err(WorkloadError::NonPositiveInterval { .. })
        ));
        assert!(matches!(
            Trace::new(Seconds::minutes(5.0), vec![0.5, 1.2]),
            Err(WorkloadError::InvalidSample { index: 1, .. })
        ));
        assert!(matches!(
            Trace::new(Seconds::minutes(5.0), vec![f64::NAN]),
            Err(WorkloadError::InvalidSample { index: 0, .. })
        ));
    }

    #[test]
    fn trace_statistics() {
        let t = trace(vec![0.2, 0.4, 0.6, 0.4]);
        assert!((t.mean().value() - 0.4).abs() < 1e-12);
        assert_eq!(t.peak().value(), 0.6);
        assert!((t.volatility() - 0.2).abs() < 1e-12);
        assert_eq!(t.len(), 4);
        assert_eq!(t.duration(), Seconds::minutes(20.0));
    }

    #[test]
    fn cluster_consistency_enforced() {
        let a = trace(vec![0.1, 0.2]);
        let b = trace(vec![0.3, 0.4, 0.5]);
        assert!(matches!(
            ClusterTrace::new(vec![a.clone(), b]),
            Err(WorkloadError::InconsistentCluster { index: 1 })
        ));
        let c = Trace::new(Seconds::minutes(1.0), vec![0.3, 0.4]).unwrap();
        assert!(matches!(
            ClusterTrace::new(vec![a, c]),
            Err(WorkloadError::InconsistentCluster { index: 1 })
        ));
        assert_eq!(ClusterTrace::new(vec![]), Err(WorkloadError::EmptyTrace));
    }

    #[test]
    fn series_extraction() {
        let cluster =
            ClusterTrace::new(vec![trace(vec![0.1, 0.8]), trace(vec![0.3, 0.2])]).unwrap();
        let us = cluster.utilizations_at(0);
        assert_eq!(us.len(), 2);
        let means = cluster.mean_series();
        assert!((means[0].value() - 0.2).abs() < 1e-12);
        assert!((means[1].value() - 0.5).abs() < 1e-12);
        let maxes = cluster.max_series();
        assert_eq!(maxes[0].value(), 0.3);
        assert_eq!(maxes[1].value(), 0.8);
        assert!((cluster.overall_mean().value() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn take_servers_narrows() {
        let cluster = ClusterTrace::new(vec![
            trace(vec![0.1, 0.2]),
            trace(vec![0.3, 0.4]),
            trace(vec![0.5, 0.6]),
        ])
        .unwrap();
        let small = cluster.take_servers(2);
        assert_eq!(small.servers(), 2);
        assert_eq!(small.trace(1).get(1).value(), 0.4);
    }

    #[test]
    fn downsample_mean_and_max() {
        let cluster = ClusterTrace::new(vec![trace(vec![0.2, 0.4, 0.6, 0.8, 0.5, 0.1])]).unwrap();
        let mean = cluster.downsample(2, Aggregate::Mean);
        assert_eq!(mean.steps(), 3);
        assert!((mean.trace(0).samples()[0] - 0.3).abs() < 1e-12);
        assert!((mean.trace(0).samples()[2] - 0.3).abs() < 1e-12);
        assert_eq!(mean.interval(), Seconds::minutes(10.0));
        let max = cluster.downsample(3, Aggregate::Max);
        assert_eq!(max.steps(), 2);
        assert_eq!(max.trace(0).samples(), &[0.6, 0.8]);
        // Max-aggregated never below mean-aggregated.
        let mean3 = cluster.downsample(3, Aggregate::Mean);
        for (a, b) in max.trace(0).samples().iter().zip(mean3.trace(0).samples()) {
            assert!(a >= b);
        }
    }

    #[test]
    fn downsample_drops_ragged_tail() {
        let cluster = ClusterTrace::new(vec![trace(vec![0.1, 0.2, 0.3, 0.4, 0.5])]).unwrap();
        let d = cluster.downsample(2, Aggregate::Mean);
        assert_eq!(d.steps(), 2); // fifth sample dropped
    }

    #[test]
    fn serde_roundtrip() {
        let cluster =
            ClusterTrace::new(vec![trace(vec![0.1, 0.2]), trace(vec![0.3, 0.4])]).unwrap();
        let json = serde_json::to_string(&cluster).unwrap();
        let back: ClusterTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cluster);
    }
}
