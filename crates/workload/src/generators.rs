//! Seeded synthetic trace generators for the three paper workloads.
//!
//! Each per-server series is the sum of three components, clamped into
//! `\[0, 1\]`:
//!
//! 1. a **diurnal baseline** — a sinusoid with per-server mean, amplitude
//!    and phase (user-facing load peaks once a day);
//! 2. **mean-reverting noise** — a discrete Ornstein-Uhlenbeck process
//!    whose volatility distinguishes the classes;
//! 3. **bursts** — Bernoulli-arriving load spikes with geometric
//!    duration (the "occasional high peaks" of Irregular, frequent in
//!    Drastic, absent in Common).

use crate::trace::{ClusterTrace, Trace};
use h2p_units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;

/// Which paper workload class to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Alibaba-like: drastic, frequent fluctuations (12 h, 1,313
    /// servers).
    Drastic,
    /// Google-like with occasional high peaks (24 h, 1,000 servers).
    Irregular,
    /// Google-like with very little fluctuation (24 h, 1,000 servers).
    Common,
}

impl TraceKind {
    /// The paper's server count for this class.
    #[must_use]
    pub fn paper_servers(self) -> usize {
        match self {
            TraceKind::Drastic => 1313,
            TraceKind::Irregular | TraceKind::Common => 1000,
        }
    }

    /// The paper's covered duration for this class.
    #[must_use]
    pub fn paper_duration(self) -> Seconds {
        match self {
            TraceKind::Drastic => Seconds::hours(12.0),
            TraceKind::Irregular | TraceKind::Common => Seconds::hours(24.0),
        }
    }

    /// Short lowercase name (`drastic`, `irregular`, `common`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Drastic => "drastic",
            TraceKind::Irregular => "irregular",
            TraceKind::Common => "common",
        }
    }

    /// All three classes, in the paper's presentation order.
    #[must_use]
    pub fn all() -> [TraceKind; 3] {
        [TraceKind::Drastic, TraceKind::Irregular, TraceKind::Common]
    }
}

impl core::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Burst (load-spike) statistics of a generator profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstProfile {
    /// Per-step probability that a burst starts.
    pub start_probability: f64,
    /// Per-step probability that an active burst ends (geometric
    /// duration with mean `1/end_probability` steps).
    pub end_probability: f64,
    /// Additive burst height range (uniform).
    pub height: (f64, f64),
}

/// Full statistical profile of a workload class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorProfile {
    /// Range of per-server baseline means (uniform).
    pub mean: (f64, f64),
    /// Diurnal amplitude range (uniform).
    pub diurnal_amplitude: (f64, f64),
    /// OU mean-reversion rate per step.
    pub reversion: f64,
    /// OU per-step innovation standard deviation.
    pub sigma: f64,
    /// Innovation standard deviation of the *shared* cluster-wide OU
    /// component (real clusters co-fluctuate: user demand hits every
    /// server at once — this is what makes the cluster-level series of
    /// Fig. 14a swing rather than averaging flat).
    pub shared_sigma: f64,
    /// Amplitude of the shared diurnal component (common phase).
    pub shared_diurnal_amplitude: f64,
    /// Burst behaviour; `None` for burst-free classes.
    pub bursts: Option<BurstProfile>,
}

impl GeneratorProfile {
    /// The calibrated profile for a paper workload class.
    #[must_use]
    pub fn for_kind(kind: TraceKind) -> Self {
        // Calibration note: the mean bands place each class's U_avg and
        // (for 40-server circulations) U_max at the control utilizations
        // that reproduce the paper's Fig. 14 per-policy averages — see
        // EXPERIMENTS.md. The volatility/burst structure carries each
        // class's qualitative shape.
        match kind {
            // High-volatility, frequently bursting, lowest baseline —
            // Alibaba's shape.
            TraceKind::Drastic => GeneratorProfile {
                mean: (0.16, 0.36),
                diurnal_amplitude: (0.04, 0.08),
                reversion: 0.50,
                sigma: 0.060,
                shared_sigma: 0.045,
                shared_diurnal_amplitude: 0.02,
                bursts: Some(BurstProfile {
                    start_probability: 0.010,
                    end_probability: 0.40,
                    height: (0.10, 0.22),
                }),
            },
            // Calm baseline with rare tall peaks.
            TraceKind::Irregular => GeneratorProfile {
                mean: (0.22, 0.42),
                diurnal_amplitude: (0.04, 0.08),
                reversion: 0.30,
                sigma: 0.012,
                shared_sigma: 0.008,
                shared_diurnal_amplitude: 0.03,
                bursts: Some(BurstProfile {
                    start_probability: 0.0006,
                    end_probability: 0.125,
                    height: (0.30, 0.50),
                }),
            },
            // Calm, burst-free, highest baseline.
            TraceKind::Common => GeneratorProfile {
                mean: (0.33, 0.53),
                diurnal_amplitude: (0.03, 0.06),
                reversion: 0.30,
                sigma: 0.010,
                shared_sigma: 0.006,
                shared_diurnal_amplitude: 0.03,
                bursts: None,
            },
        }
    }
}

/// Deterministic synthetic-trace generator.
///
/// ```
/// use h2p_workload::{TraceGenerator, TraceKind};
///
/// let a = TraceGenerator::paper(TraceKind::Drastic, 7).generate();
/// let b = TraceGenerator::paper(TraceKind::Drastic, 7).generate();
/// assert_eq!(a, b); // bit-for-bit reproducible
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenerator {
    kind: TraceKind,
    servers: usize,
    steps: usize,
    interval: Seconds,
    seed: u64,
    profile: GeneratorProfile,
}

/// The paper's control interval (Sec. V-B1: "each time interval t
/// (e.g., 5 minutes)").
pub(crate) const PAPER_INTERVAL_MINUTES: f64 = 5.0;

impl TraceGenerator {
    /// A generator matching the paper's setup for the given class:
    /// paper server count, paper duration, 5-minute sampling.
    #[must_use]
    pub fn paper(kind: TraceKind, seed: u64) -> Self {
        let interval = Seconds::minutes(PAPER_INTERVAL_MINUTES);
        // Paper durations are hours at 5-minute sampling: a small,
        // positive, finite step count.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let steps = (kind.paper_duration().value() / interval.value()).round() as usize;
        TraceGenerator {
            kind,
            servers: kind.paper_servers(),
            steps,
            interval,
            seed,
            profile: GeneratorProfile::for_kind(kind),
        }
    }

    /// Overrides the number of servers (e.g. scaled-down experiments).
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn with_servers(mut self, servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        self.servers = servers;
        self
    }

    /// Overrides the number of time steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    #[must_use]
    pub fn with_steps(mut self, steps: usize) -> Self {
        assert!(steps > 0, "need at least one step");
        self.steps = steps;
        self
    }

    /// Overrides the statistical profile (for ablations).
    #[must_use]
    pub fn with_profile(mut self, profile: GeneratorProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The workload class.
    #[must_use]
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// Number of servers the generator will synthesize.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of time steps per server series.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The sampling interval.
    #[must_use]
    pub fn interval(&self) -> Seconds {
        self.interval
    }

    /// Generates the cluster trace (one shard covering every server).
    #[must_use]
    pub fn generate(&self) -> ClusterTrace {
        let per_shard = NonZeroUsize::new(self.servers).unwrap_or(NonZeroUsize::MIN);
        let mut stream = self.shards(per_shard);
        // h2p-lint: allow(L2): servers > 0 is a construction invariant
        let shard = stream.next().expect("a generator always has servers");
        debug_assert!(stream.next().is_none(), "one shard covers the fleet");
        shard.into_cluster()
    }

    /// Streams the trace in per-server shards of at most
    /// `servers_per_shard` servers each, **bit-identical** to
    /// [`generate`](Self::generate): the shared cluster-wide component
    /// is drawn once at stream construction and every per-server series
    /// continues the same RNG sequentially, so concatenating the shards
    /// in index order reproduces the materialized trace exactly
    /// (`tests/shard_stream.rs` asserts this byte-for-byte for every
    /// class). This is how fleet-scale runs keep only one chunk of
    /// trace resident at a time.
    #[must_use]
    pub fn shards(&self, servers_per_shard: NonZeroUsize) -> ShardStream {
        ShardStream::new(self, servers_per_shard)
    }
}

/// One piece of a streamed cluster trace: a contiguous run of servers
/// starting at [`start_server`](Self::start_server), in generation
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceShard {
    index: usize,
    start_server: usize,
    cluster: ClusterTrace,
}

impl TraceShard {
    /// Shard index, `0..`, in stream order.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Global index of the shard's first server.
    #[must_use]
    pub fn start_server(&self) -> usize {
        self.start_server
    }

    /// The shard's servers as a (smaller) cluster trace.
    #[must_use]
    pub fn cluster(&self) -> &ClusterTrace {
        &self.cluster
    }

    /// Consumes the shard, returning its cluster trace.
    #[must_use]
    pub fn into_cluster(self) -> ClusterTrace {
        self.cluster
    }
}

/// Streaming shard generator behind [`TraceGenerator::shards`]. Holds
/// the RNG and the shared cluster-wide component; each
/// [`next`](Iterator::next) synthesizes the following run of servers on
/// demand.
#[derive(Debug, Clone)]
pub struct ShardStream {
    rng: StdRng,
    shared: Vec<f64>,
    steps_per_day: f64,
    profile: GeneratorProfile,
    interval: Seconds,
    steps: usize,
    servers: usize,
    per_shard: usize,
    next_server: usize,
    next_index: usize,
}

impl ShardStream {
    fn new(generator: &TraceGenerator, servers_per_shard: NonZeroUsize) -> Self {
        let mut rng = StdRng::seed_from_u64(generator.seed ^ hash_kind(generator.kind));
        let steps_per_day = Seconds::days(1.0).value() / generator.interval.value();
        let p = &generator.profile;
        // The shared cluster-wide component, drawn once: an OU series
        // plus a common-phase diurnal. Drawing it here — before any
        // per-server series — keeps the RNG sequence identical to the
        // original single-shot generator.
        let shared: Vec<f64> = {
            let phase = rng.gen_range(0.0..core::f64::consts::TAU);
            let mut level = 0.0_f64;
            (0..generator.steps)
                .map(|step| {
                    level += -p.reversion * level + p.shared_sigma * gaussian(&mut rng);
                    let day_angle = core::f64::consts::TAU * step as f64 / steps_per_day + phase;
                    level + p.shared_diurnal_amplitude * day_angle.sin()
                })
                .collect()
        };
        ShardStream {
            rng,
            shared,
            steps_per_day,
            profile: generator.profile,
            interval: generator.interval,
            steps: generator.steps,
            servers: generator.servers,
            per_shard: servers_per_shard.get(),
            next_server: 0,
            next_index: 0,
        }
    }

    /// Servers not yet yielded.
    #[must_use]
    pub fn remaining_servers(&self) -> usize {
        self.servers - self.next_server
    }

    /// Synthesizes the next server's series (the per-server body of the
    /// original generator, verbatim — the RNG advances identically).
    fn next_trace(&mut self) -> Trace {
        let p = &self.profile;
        let mean = self.rng.gen_range(p.mean.0..=p.mean.1);
        let amplitude = self
            .rng
            .gen_range(p.diurnal_amplitude.0..=p.diurnal_amplitude.1);
        let phase = self.rng.gen_range(0.0..core::f64::consts::TAU);
        let mut noise = 0.0_f64;
        let mut burst_level = 0.0_f64;
        let samples: Vec<f64> = (0..self.steps)
            .map(|step| {
                let day_angle = core::f64::consts::TAU * step as f64 / self.steps_per_day + phase;
                let baseline = mean + amplitude * day_angle.sin();
                // OU update.
                noise += -p.reversion * noise + p.sigma * gaussian(&mut self.rng);
                // Burst state machine.
                if let Some(b) = &p.bursts {
                    if burst_level > 0.0 {
                        if self.rng.gen_bool(b.end_probability) {
                            burst_level = 0.0;
                        }
                    } else if self.rng.gen_bool(b.start_probability) {
                        burst_level = self.rng.gen_range(b.height.0..=b.height.1);
                    }
                }
                (baseline + self.shared[step] + noise + burst_level).clamp(0.0, 1.0)
            })
            .collect();
        // h2p-lint: allow(L2): samples clamped to [0, 1], interval validated
        Trace::new(self.interval, samples).expect("generator output is valid")
    }
}

impl Iterator for ShardStream {
    type Item = TraceShard;

    fn next(&mut self) -> Option<TraceShard> {
        if self.next_server >= self.servers {
            return None;
        }
        let start_server = self.next_server;
        let count = self.per_shard.min(self.servers - start_server);
        let traces: Vec<Trace> = (0..count).map(|_| self.next_trace()).collect();
        self.next_server += count;
        let index = self.next_index;
        self.next_index += 1;
        Some(TraceShard {
            index,
            start_server,
            // h2p-lint: allow(L2): all traces share interval and length
            cluster: ClusterTrace::new(traces).expect("generator output is consistent"),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let shards = self.remaining_servers().div_ceil(self.per_shard);
        (shards, Some(shards))
    }
}

impl ExactSizeIterator for ShardStream {}

/// Stable per-kind salt so the same seed gives distinct classes.
fn hash_kind(kind: TraceKind) -> u64 {
    match kind {
        TraceKind::Drastic => 0x9e37_79b9_7f4a_7c15,
        TraceKind::Irregular => 0x2545_f491_4f6c_dd1d,
        TraceKind::Common => 0xda94_2042_e4dd_58b5,
    }
}

/// Standard normal sample via Box-Muller (avoids needing rand_distr).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let d = TraceGenerator::paper(TraceKind::Drastic, 1).generate();
        assert_eq!(d.servers(), 1313);
        assert_eq!(d.steps(), 144); // 12 h at 5 min
        let c = TraceGenerator::paper(TraceKind::Common, 1).generate();
        assert_eq!(c.servers(), 1000);
        assert_eq!(c.steps(), 288);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = TraceGenerator::paper(TraceKind::Irregular, 99)
            .with_servers(10)
            .generate();
        let b = TraceGenerator::paper(TraceKind::Irregular, 99)
            .with_servers(10)
            .generate();
        assert_eq!(a, b);
        let c = TraceGenerator::paper(TraceKind::Irregular, 100)
            .with_servers(10)
            .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn kinds_differ_for_same_seed() {
        let a = TraceGenerator::paper(TraceKind::Common, 5)
            .with_servers(5)
            .generate();
        let mut gen = TraceGenerator::paper(TraceKind::Drastic, 5).with_servers(5);
        gen = gen.with_steps(288);
        let b = gen.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn volatility_ordering_matches_paper_narrative() {
        // Drastic >> Irregular >= Common in step-to-step volatility.
        let seed = 2026;
        let servers = 100;
        let vol = |kind| {
            TraceGenerator::paper(kind, seed)
                .with_servers(servers)
                .generate()
                .mean_volatility()
        };
        let d = vol(TraceKind::Drastic);
        let i = vol(TraceKind::Irregular);
        let c = vol(TraceKind::Common);
        assert!(d > 3.0 * i, "drastic {d} vs irregular {i}");
        assert!(i >= c, "irregular {i} vs common {c}");
    }

    #[test]
    fn irregular_has_occasional_high_peaks() {
        let cluster = TraceGenerator::paper(TraceKind::Irregular, 7)
            .with_servers(200)
            .generate();
        // Some servers spike high...
        let spiking = cluster.iter().filter(|t| t.peak().value() > 0.6).count();
        assert!(spiking > 10, "only {spiking} servers spiked");
        // ...but the cluster mean stays calm.
        assert!(cluster.overall_mean().value() < 0.40);
    }

    #[test]
    fn common_is_calm() {
        let cluster = TraceGenerator::paper(TraceKind::Common, 7)
            .with_servers(200)
            .generate();
        for t in cluster.iter() {
            assert!(t.volatility() < 0.06, "volatility {}", t.volatility());
        }
    }

    #[test]
    fn means_in_low_utilization_band() {
        // Paper Sec. I: "servers in datacenters are in low utilization
        // most of the time" — all classes average well under 50 %.
        for kind in TraceKind::all() {
            let cluster = TraceGenerator::paper(kind, 11).with_servers(100).generate();
            let m = cluster.overall_mean().value();
            assert!((0.10..=0.50).contains(&m), "{kind}: mean {m}");
        }
    }

    #[test]
    fn samples_always_in_range() {
        for kind in TraceKind::all() {
            let cluster = TraceGenerator::paper(kind, 3).with_servers(20).generate();
            for t in cluster.iter() {
                for &s in t.samples() {
                    assert!((0.0..=1.0).contains(&s));
                }
            }
        }
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(TraceKind::Drastic.name(), "drastic");
        assert_eq!(TraceKind::Drastic.to_string(), "drastic");
        assert_eq!(TraceKind::all().len(), 3);
        assert_eq!(TraceKind::Irregular.paper_duration(), Seconds::hours(24.0));
    }
}
