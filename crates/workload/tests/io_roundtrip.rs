//! Property tests for trace persistence and repair: `save_cluster` →
//! `load_cluster` must be the identity on every valid cluster, and the
//! repair policies must turn any partially-damaged record series into a
//! valid trace.

// Test code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_units::Seconds;
use h2p_workload::io::{load_cluster, save_cluster};
use h2p_workload::repair::{repair_records, RepairPolicy};
use h2p_workload::{ClusterTrace, Trace};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp path per proptest case (cases run concurrently).
fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("h2p_io_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}_{}_{n}.json", std::process::id()))
}

const MAX_SERVERS: usize = 5;
const MAX_STEPS: usize = 16;

/// Builds a valid cluster from an oversupplied sample pool: `servers`
/// rows of `steps` samples each, one shared interval.
fn build_cluster(servers: usize, steps: usize, interval: f64, pool: &[f64]) -> ClusterTrace {
    let traces: Vec<Trace> = (0..servers)
        .map(|s| {
            let samples: Vec<f64> = (0..steps).map(|t| pool[s * MAX_STEPS + t]).collect();
            Trace::new(Seconds::new(interval), samples).unwrap()
        })
        .collect();
    ClusterTrace::new(traces).unwrap()
}

fn is_valid_record(r: Option<f64>) -> bool {
    r.is_some_and(|v| v.is_finite() && (0.0..=1.0).contains(&v))
}

/// Decodes one damaged record from a pair of generated numbers: the
/// selector picks the damage mode (valid samples are weighted up), the
/// payload supplies the value.
fn decode_record(selector: u8, payload: f64) -> Option<f64> {
    match selector % 8 {
        0..=3 => Some(payload),            // valid: payload in [0, 1]
        4 => None,                         // gap
        5 => Some(f64::NAN),               // malformed: NaN
        6 => Some(f64::INFINITY),          // malformed: non-finite
        _ => Some(payload * 50.0 + 1.001), // malformed: out of range
    }
}

/// Decodes a whole series and pins one record valid so every generated
/// case is repairable (the all-damaged case has its own unit test).
fn decode_records(selectors: &[u8], payloads: &[f64]) -> Vec<Option<f64>> {
    let mut records: Vec<Option<f64>> = selectors
        .iter()
        .zip(payloads)
        .map(|(&s, &p)| decode_record(s, p))
        .collect();
    if !records.iter().any(|&r| is_valid_record(r)) {
        let pin = payloads[0].clamp(0.0, 1.0);
        records[0] = Some(pin);
    }
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_load_is_identity_on_valid_clusters(
        servers in 1usize..=MAX_SERVERS,
        steps in 1usize..=MAX_STEPS,
        interval in 1.0f64..=3600.0,
        pool in proptest::collection::vec(
            0.0f64..=1.0,
            (MAX_SERVERS * MAX_STEPS)..=(MAX_SERVERS * MAX_STEPS),
        ),
    ) {
        let cluster = build_cluster(servers, steps, interval, &pool);
        let path = temp_path("rt");
        save_cluster(&cluster, &path).unwrap();
        let back = load_cluster(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, cluster);
    }

    #[test]
    fn repair_always_yields_valid_samples(
        selectors in proptest::collection::vec(0u8..=255, 1..=32),
        payloads in proptest::collection::vec(0.0f64..=1.0, 32..=32),
        hold in proptest::bool::ANY,
    ) {
        let records = decode_records(&selectors, &payloads);
        let policy = if hold { RepairPolicy::HoldLast } else { RepairPolicy::Interpolate };
        let (samples, report) = repair_records(&records, policy).unwrap();
        prop_assert_eq!(samples.len(), records.len());
        for v in &samples {
            prop_assert!(v.is_finite() && (0.0..=1.0).contains(v), "bad repaired sample {v}");
        }
        // Valid records are untouched; the report counts exactly the
        // damaged ones.
        let damaged = records.iter().filter(|&&r| !is_valid_record(r)).count();
        prop_assert_eq!(report.repaired(), damaged);
        for (&r, s) in records.iter().zip(&samples) {
            if is_valid_record(r) {
                prop_assert_eq!(r.unwrap(), *s);
            }
        }
        // The repaired trace passes full validation.
        let trace = Trace::new(Seconds::new(300.0), samples).unwrap();
        prop_assert_eq!(trace.len(), records.len());
    }

    #[test]
    fn error_policy_accepts_exactly_the_undamaged(
        selectors in proptest::collection::vec(0u8..=255, 1..=32),
        payloads in proptest::collection::vec(0.0f64..=1.0, 32..=32),
    ) {
        let records = decode_records(&selectors, &payloads);
        let damaged = records.iter().any(|&r| !is_valid_record(r));
        let outcome = repair_records(&records, RepairPolicy::Error);
        prop_assert_eq!(outcome.is_err(), damaged);
    }
}
