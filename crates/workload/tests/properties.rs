//! Property-based tests of the trace substrate.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_units::Seconds;
use h2p_workload::{ClusterTrace, Trace, TraceGenerator, TraceKind};
use proptest::prelude::*;

fn kind() -> impl Strategy<Value = TraceKind> {
    prop_oneof![
        Just(TraceKind::Drastic),
        Just(TraceKind::Irregular),
        Just(TraceKind::Common),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_samples_always_valid(k in kind(), seed in 0u64..1000, servers in 1usize..30) {
        let cluster = TraceGenerator::paper(k, seed)
            .with_servers(servers)
            .with_steps(40)
            .generate();
        prop_assert_eq!(cluster.servers(), servers);
        prop_assert_eq!(cluster.steps(), 40);
        for t in cluster.iter() {
            for &s in t.samples() {
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn generation_is_deterministic(k in kind(), seed in 0u64..1000) {
        let make = || {
            TraceGenerator::paper(k, seed)
                .with_servers(5)
                .with_steps(20)
                .generate()
        };
        prop_assert_eq!(make(), make());
    }

    #[test]
    fn serde_roundtrip_for_random_traces(
        samples in proptest::collection::vec(0.0..=1.0f64, 1..100),
        minutes in 1.0..30.0f64,
    ) {
        let t = Trace::new(Seconds::minutes(minutes), samples).unwrap();
        let cluster = ClusterTrace::new(vec![t]).unwrap();
        let json = serde_json::to_string(&cluster).unwrap();
        let back: ClusterTrace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, cluster);
    }

    #[test]
    fn invalid_documents_rejected_on_load(bad in 1.01..10.0f64) {
        // A hand-crafted document with an out-of-range sample must fail
        // validation even though it is syntactically valid JSON.
        let doc = format!(
            r#"{{"traces":[{{"interval_seconds":300.0,"samples":[0.5,{bad}]}}]}}"#
        );
        let parsed: Result<ClusterTrace, _> = serde_json::from_str(&doc);
        prop_assert!(parsed.is_err());
    }

    #[test]
    fn statistics_bracketed(k in kind(), seed in 0u64..200) {
        let cluster = TraceGenerator::paper(k, seed)
            .with_servers(10)
            .with_steps(50)
            .generate();
        for t in cluster.iter() {
            prop_assert!(t.mean() <= t.peak());
            prop_assert!(t.volatility() >= 0.0);
        }
        let means = cluster.mean_series();
        let maxes = cluster.max_series();
        for (m, x) in means.iter().zip(&maxes) {
            prop_assert!(m <= x);
        }
    }

    #[test]
    fn take_servers_is_a_prefix(k in kind(), n in 1usize..10) {
        let cluster = TraceGenerator::paper(k, 7)
            .with_servers(10)
            .with_steps(20)
            .generate();
        let sub = cluster.take_servers(n);
        prop_assert_eq!(sub.servers(), n);
        for i in 0..n {
            prop_assert_eq!(sub.trace(i), cluster.trace(i));
        }
    }
}
