//! Ingestion round trip on the committed 100-row sample job trace.
//!
//! The fixture (`fixtures/sample_jobs.csv`) is the OpenDC-style shape
//! the loaders accept: this suite pins down that it parses cleanly,
//! that no demand needs repair, and that the CSV → JSONL → CSV-shape
//! round trip is lossless.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use h2p_workload::jobs::{load_jobs, save_jobs};
use h2p_workload::RepairPolicy;
use std::path::{Path, PathBuf};

fn fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("sample_jobs.csv")
}

#[test]
fn sample_fixture_loads_cleanly_under_the_strict_policy() {
    let (trace, report) = load_jobs(fixture(), RepairPolicy::Error).unwrap();
    assert_eq!(trace.len(), 100);
    assert_eq!(report.repaired(), 0);

    // The fixture is arrival-ordered with sane geometry throughout.
    let records = trace.records();
    for pair in records.windows(2) {
        assert!(pair[0].arrival_s <= pair[1].arrival_s);
    }
    for r in records {
        assert!(r.duration_s >= 300.0 && r.duration_s <= 5400.0, "{r:?}");
        assert!((0.0..=1.0).contains(&r.utilization), "{r:?}");
    }
    // All three named tenants plus untagged records appear.
    let tenants: std::collections::BTreeSet<_> = records
        .iter()
        .map(|r| r.tenant.clone().unwrap_or_default())
        .collect();
    assert_eq!(tenants.len(), 4, "{tenants:?}");
}

#[test]
fn sample_fixture_round_trips_through_jsonl() {
    let (original, _) = load_jobs(fixture(), RepairPolicy::Error).unwrap();

    let dir = std::env::temp_dir().join("h2p_job_ingestion_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample_jobs_roundtrip.jsonl");
    save_jobs(&original, &path).unwrap();
    let (back, report) = load_jobs(&path, RepairPolicy::Error).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(back, original);
    assert_eq!(report.repaired(), 0);
}

#[test]
fn repair_policies_agree_on_the_undamaged_fixture() {
    let (strict, _) = load_jobs(fixture(), RepairPolicy::Error).unwrap();
    let (hold, r_hold) = load_jobs(fixture(), RepairPolicy::HoldLast).unwrap();
    let (interp, r_interp) = load_jobs(fixture(), RepairPolicy::Interpolate).unwrap();
    assert_eq!(strict, hold);
    assert_eq!(strict, interp);
    assert_eq!(r_hold.repaired() + r_interp.repaired(), 0);
}
