//! Streaming-shard transparency: for every workload class and any
//! shard size, the shards of [`TraceGenerator::shards`] concatenated in
//! index order must be **byte-identical** to the trace
//! [`TraceGenerator::generate`] materializes in one shot — including
//! when each shard is routed through the damage-repair pipeline
//! ([`h2p_workload::repair`]) instead of the whole trace at once.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]

use h2p_workload::repair::{repair_records, RepairPolicy};
use h2p_workload::{ClusterTrace, Trace, TraceGenerator, TraceKind, TraceShard};
use std::num::NonZeroUsize;

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

fn test_generator(kind: TraceKind) -> TraceGenerator {
    TraceGenerator::paper(kind, 31)
        .with_servers(90)
        .with_steps(24)
}

/// Asserts two traces carry bit-identical samples (f64 bit patterns,
/// which is byte-identity for the serialized sample payload).
fn assert_trace_bits(a: &Trace, b: &Trace, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    assert_eq!(
        a.interval().value().to_bits(),
        b.interval().value().to_bits(),
        "{what}: interval"
    );
    for (i, (x, y)) in a.samples().iter().zip(b.samples()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: sample {i}");
    }
}

fn concat_shards(shards: Vec<TraceShard>) -> ClusterTrace {
    let traces: Vec<Trace> = shards
        .into_iter()
        .flat_map(|s| {
            let cluster = s.into_cluster();
            cluster.iter().cloned().collect::<Vec<Trace>>()
        })
        .collect();
    ClusterTrace::new(traces).unwrap()
}

/// All three generators × shard sizes from single-server to
/// fleet-swallowing: index-order concatenation reproduces the
/// materialized trace exactly.
#[test]
fn shards_concatenate_to_the_materialized_trace() {
    for kind in TraceKind::all() {
        let generator = test_generator(kind);
        let whole = generator.generate();
        for per_shard in [1, 7, 40, 90, 1000] {
            let shards: Vec<TraceShard> = generator.shards(nz(per_shard)).collect();
            let expected_shards = 90usize.div_ceil(per_shard);
            assert_eq!(shards.len(), expected_shards, "{kind}/{per_shard}");
            // Shards arrive indexed, contiguous, and in order.
            let mut cursor = 0usize;
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard.index(), i, "{kind}/{per_shard}");
                assert_eq!(shard.start_server(), cursor, "{kind}/{per_shard}");
                cursor += shard.cluster().servers();
            }
            assert_eq!(cursor, 90, "{kind}/{per_shard}: coverage");
            let glued = concat_shards(shards);
            assert_eq!(glued.servers(), whole.servers());
            for s in 0..whole.servers() {
                assert_trace_bits(
                    whole.trace(s),
                    glued.trace(s),
                    &format!("{kind}/shard size {per_shard}/server {s}"),
                );
            }
        }
    }
}

/// The single-shot generator *is* the one-shard stream (`generate`
/// delegates), and an exhausted stream stays exhausted.
#[test]
fn stream_exhaustion_and_sizing_are_exact() {
    let generator = test_generator(TraceKind::Drastic);
    let mut stream = generator.shards(nz(40));
    assert_eq!(stream.len(), 3); // 40 + 40 + 10
    assert_eq!(stream.remaining_servers(), 90);
    let first = stream.next().unwrap();
    assert_eq!(first.cluster().servers(), 40);
    assert_eq!(stream.remaining_servers(), 50);
    assert_eq!(stream.len(), 2);
    let second = stream.next().unwrap();
    assert_eq!(second.start_server(), 40);
    let tail = stream.next().unwrap();
    assert_eq!(tail.start_server(), 80);
    assert_eq!(tail.cluster().servers(), 10);
    assert!(stream.next().is_none());
    assert!(stream.next().is_none());
    assert_eq!(stream.len(), 0);
}

/// Deterministically damages a sample series: every 9th record becomes
/// a gap, every 13th a malformed out-of-range reading.
fn damage(samples: &[f64]) -> Vec<Option<f64>> {
    samples
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if i % 9 == 3 {
                None
            } else if i % 13 == 5 {
                Some(7.7)
            } else {
                Some(v)
            }
        })
        .collect()
}

/// Repaired traces compose with sharding: damaging and repairing each
/// shard's series independently yields byte-identical samples to
/// damaging and repairing the whole materialized trace — for both
/// repairing policies, on every generator class.
#[test]
fn shard_wise_repair_matches_whole_trace_repair() {
    for kind in TraceKind::all() {
        let generator = test_generator(kind);
        let whole = generator.generate();
        for policy in [RepairPolicy::HoldLast, RepairPolicy::Interpolate] {
            // Whole-trace pipeline.
            let repaired_whole: Vec<Vec<f64>> = whole
                .iter()
                .map(|t| repair_records(&damage(t.samples()), policy).unwrap().0)
                .collect();
            // Shard-wise pipeline: same damage, same policy, applied
            // shard by shard as a streaming consumer would.
            let mut repaired_sharded: Vec<Vec<f64>> = Vec::new();
            for shard in generator.shards(nz(7)) {
                for t in shard.cluster().iter() {
                    repaired_sharded.push(repair_records(&damage(t.samples()), policy).unwrap().0);
                }
            }
            assert_eq!(repaired_whole.len(), repaired_sharded.len());
            for (s, (a, b)) in repaired_whole.iter().zip(&repaired_sharded).enumerate() {
                assert_eq!(a.len(), b.len());
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{kind}/{policy:?}/server {s}/sample {i}"
                    );
                }
            }
        }
        // The refusing policy surfaces the same typed error either way
        // (the first damaged record is the index-3 gap, reported with a
        // NaN value — compare structurally, NaN never compares equal).
        let first_damaged = damage(whole.trace(0).samples());
        let whole_err = repair_records(&first_damaged, RepairPolicy::Error).unwrap_err();
        let shard = generator.shards(nz(1)).next().unwrap();
        let shard_err = repair_records(
            &damage(shard.cluster().trace(0).samples()),
            RepairPolicy::Error,
        )
        .unwrap_err();
        for err in [&whole_err, &shard_err] {
            assert!(
                matches!(
                    err,
                    h2p_workload::WorkloadError::InvalidSample { index: 3, value } if value.is_nan()
                ),
                "{kind}: Error policy gave {err:?}"
            );
        }
    }
}

/// Paper-dimension smoke: the Drastic class streams its full 1,313
/// servers in uneven shards without drift at the tail.
#[test]
fn paper_scale_stream_covers_every_server() {
    let generator = TraceGenerator::paper(TraceKind::Drastic, 3);
    let whole = generator.generate();
    let shards: Vec<TraceShard> = generator.shards(nz(500)).collect();
    assert_eq!(shards.len(), 3); // 500 + 500 + 313
    assert_eq!(shards[2].cluster().servers(), 313);
    // Spot-check the last server of the last shard against the
    // materialized trace (the furthest point the RNG sequence reaches).
    let last_local = shards[2].cluster().trace(312);
    assert_trace_bits(whole.trace(1312), last_local, "drastic tail server");
}
