//! Total-cost-of-ownership analysis for H2P datacenters (paper Sec. V-D,
//! Table I).
//!
//! The paper amortizes every cost to dollars per server per month:
//! datacenter infrastructure and server CapEx/OpEx from Kontorinis et
//! al. \[27\], TEG CapEx from the $1 device price over a conservative
//! 25-year lifespan, and TEG revenue from the average generated power at
//! 13 ¢/kWh \[16\]. H2P then reduces TCO by Eq. 22:
//! `TCO_H2P = TCO_noTEG + TEGCapEx − TEGRev`.
//!
//! # Examples
//!
//! ```
//! use h2p_tco::TcoAnalysis;
//! use h2p_units::Watts;
//!
//! let tco = TcoAnalysis::paper_default();
//! // The paper's TEG_LoadBalance average of 4.177 W per CPU.
//! let reduction = tco.reduction(Watts::new(4.177));
//! assert!((reduction - 0.0057).abs() < 0.0005); // "up to 0.57 %"
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used as a deliberate NaN-rejecting validation idiom
// throughout (NaN fails the guard, unlike `x <= 0.0`).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

pub mod alternatives;
pub mod sensitivity;

use core::fmt;
use h2p_units::{Dollars, KilowattHours, Seconds, Watts};

/// Errors from the TCO analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TcoError {
    /// A parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for TcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcoError::NonPositiveParameter { name, value } => {
                write!(f, "parameter {name} must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for TcoError {}

/// Hours in the paper's accounting month (30 days).
const HOURS_PER_MONTH: f64 = 24.0 * 30.0;

/// Table I parameters, all in dollars per server per month except where
/// noted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoParameters {
    /// Datacenter infrastructure CapEx \[27\].
    pub dc_infra_capex: Dollars,
    /// Server CapEx \[27\].
    pub server_capex: Dollars,
    /// Datacenter infrastructure OpEx \[27\].
    pub dc_infra_opex: Dollars,
    /// Server OpEx \[27\].
    pub server_opex: Dollars,
    /// Electricity price per kWh \[16\].
    pub electricity_per_kwh: Dollars,
    /// TEGs installed per server.
    pub tegs_per_server: usize,
    /// Purchase price of one TEG.
    pub teg_unit_cost: Dollars,
    /// Conservative TEG service life in years.
    pub teg_lifespan_years: f64,
}

impl TcoParameters {
    /// Table I verbatim.
    #[must_use]
    pub fn paper_table1() -> Self {
        TcoParameters {
            dc_infra_capex: Dollars::new(21.26),
            server_capex: Dollars::new(31.25),
            dc_infra_opex: Dollars::new(7.63),
            server_opex: Dollars::new(1.56),
            electricity_per_kwh: Dollars::from_cents(13.0),
            tegs_per_server: 12,
            teg_unit_cost: Dollars::new(1.0),
            teg_lifespan_years: 25.0,
        }
    }
}

impl Default for TcoParameters {
    fn default() -> Self {
        TcoParameters::paper_table1()
    }
}

/// The Sec. V-D analysis over a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoAnalysis {
    params: TcoParameters,
    servers: usize,
}

impl TcoAnalysis {
    /// Creates an analysis for a cluster of `servers` CPUs.
    ///
    /// # Errors
    ///
    /// Returns [`TcoError::NonPositiveParameter`] if `servers` is zero
    /// or a parameter is non-positive.
    pub fn new(params: TcoParameters, servers: usize) -> Result<Self, TcoError> {
        for (name, value) in [
            ("servers", servers as f64),
            ("tegs_per_server", params.tegs_per_server as f64),
            ("teg_unit_cost", params.teg_unit_cost.value()),
            ("teg_lifespan_years", params.teg_lifespan_years),
            ("electricity_per_kwh", params.electricity_per_kwh.value()),
        ] {
            if !(value > 0.0) {
                return Err(TcoError::NonPositiveParameter { name, value });
            }
        }
        Ok(TcoAnalysis { params, servers })
    }

    /// The paper's cluster: Table I parameters, 100,000 CPUs.
    #[must_use]
    pub fn paper_default() -> Self {
        TcoAnalysis {
            params: TcoParameters::paper_table1(),
            servers: 100_000,
        }
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &TcoParameters {
        &self.params
    }

    /// Cluster size.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// TEG CapEx amortized to one server-month (Table I's 0.04).
    #[must_use]
    pub fn teg_capex_per_server_month(&self) -> Dollars {
        self.params.teg_unit_cost * self.params.tegs_per_server as f64
            / (self.params.teg_lifespan_years * 12.0)
    }

    /// TEG revenue per server-month from an average generated power.
    #[must_use]
    pub fn teg_revenue_per_server_month(&self, average_power: Watts) -> Dollars {
        let kwh = average_power.value() * HOURS_PER_MONTH / 1000.0;
        self.params.electricity_per_kwh * kwh
    }

    /// Baseline TCO per server-month without H2P (Eq. 21).
    #[must_use]
    pub fn tco_without(&self) -> Dollars {
        self.params.dc_infra_capex
            + self.params.server_capex
            + self.params.dc_infra_opex
            + self.params.server_opex
    }

    /// TCO per server-month with H2P at an average generated power
    /// (Eq. 22).
    #[must_use]
    pub fn tco_with(&self, average_power: Watts) -> Dollars {
        self.tco_without() + self.teg_capex_per_server_month()
            - self.teg_revenue_per_server_month(average_power)
    }

    /// Fractional TCO reduction from H2P.
    #[must_use]
    pub fn reduction(&self, average_power: Watts) -> f64 {
        self.tco_with(average_power).savings_vs(self.tco_without())
    }

    /// Up-front purchase price of the whole TEG fleet.
    #[must_use]
    pub fn fleet_purchase(&self) -> Dollars {
        self.params.teg_unit_cost * (self.params.tegs_per_server * self.servers) as f64
    }

    /// Cluster-wide harvested energy per day.
    #[must_use]
    pub fn daily_generation(&self, average_power: Watts) -> KilowattHours {
        KilowattHours::new(average_power.value() * self.servers as f64 * 24.0 / 1000.0)
    }

    /// Cluster-wide revenue per day.
    #[must_use]
    pub fn daily_revenue(&self, average_power: Watts) -> Dollars {
        self.params.electricity_per_kwh * self.daily_generation(average_power).value()
    }

    /// Days until revenue pays back the fleet purchase (Sec. V-D's
    /// break-even point). Returns infinity for zero generation.
    #[must_use]
    pub fn break_even(&self, average_power: Watts) -> Seconds {
        let daily = self.daily_revenue(average_power).value();
        if daily <= 0.0 {
            return Seconds::new(f64::INFINITY);
        }
        Seconds::days(self.fleet_purchase().value() / daily)
    }

    /// Net savings per year across the cluster (revenue minus amortized
    /// TEG CapEx).
    #[must_use]
    pub fn annual_savings(&self, average_power: Watts) -> Dollars {
        (self.teg_revenue_per_server_month(average_power) - self.teg_capex_per_server_month())
            * 12.0
            * self.servers as f64
    }
}

impl Default for TcoAnalysis {
    fn default() -> Self {
        TcoAnalysis::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's published per-policy averages.
    const ORIGINAL_W: f64 = 3.694;
    const LOAD_BALANCE_W: f64 = 4.177;

    fn tco() -> TcoAnalysis {
        TcoAnalysis::paper_default()
    }

    #[test]
    fn table1_teg_capex() {
        // 12 x $1 over 25 years = $0.04 /(server x month).
        assert!((tco().teg_capex_per_server_month().value() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn table1_teg_revenue() {
        // 0.34 and 0.39 $/(server x month) for the two policies.
        let orig = tco().teg_revenue_per_server_month(Watts::new(ORIGINAL_W));
        let lb = tco().teg_revenue_per_server_month(Watts::new(LOAD_BALANCE_W));
        assert!((orig.value() - 0.34).abs() < 0.01, "orig = {orig}");
        assert!((lb.value() - 0.39).abs() < 0.01, "lb = {lb}");
    }

    #[test]
    fn baseline_tco() {
        // 21.26 + 31.25 + 7.63 + 1.56 = 61.70.
        assert!((tco().tco_without().value() - 61.70).abs() < 1e-9);
    }

    #[test]
    fn paper_reductions() {
        // 0.49 % and 0.57 %.
        let r_orig = tco().reduction(Watts::new(ORIGINAL_W));
        let r_lb = tco().reduction(Watts::new(LOAD_BALANCE_W));
        assert!((r_orig - 0.0049).abs() < 5e-4, "orig = {r_orig}");
        assert!((r_lb - 0.0057).abs() < 5e-4, "lb = {r_lb}");
        assert!(r_lb > r_orig);
    }

    #[test]
    fn paper_daily_generation_and_break_even() {
        // 10,024.8 kWh/day, $1,303.2/day, break-even ~920 days.
        let t = tco();
        let kwh = t.daily_generation(Watts::new(LOAD_BALANCE_W)).value();
        assert!((kwh - 10_024.8).abs() < 0.1, "kwh = {kwh}");
        let rev = t.daily_revenue(Watts::new(LOAD_BALANCE_W));
        assert!((rev.value() - 1303.2).abs() < 0.2, "rev = {rev}");
        let be = t.break_even(Watts::new(LOAD_BALANCE_W)).to_days();
        assert!((be - 920.0).abs() < 2.0, "break-even = {be}");
    }

    #[test]
    fn paper_annual_savings_band() {
        // "$350,000 ~ $410,000 for a year" (rounding-sensitive; we allow
        // the exact-arithmetic band).
        let t = tco();
        let orig = t.annual_savings(Watts::new(ORIGINAL_W)).value();
        let lb = t.annual_savings(Watts::new(LOAD_BALANCE_W)).value();
        assert!((330_000.0..=380_000.0).contains(&orig), "orig = {orig}");
        assert!((390_000.0..=440_000.0).contains(&lb), "lb = {lb}");
    }

    #[test]
    fn zero_generation_never_pays_back() {
        let t = tco();
        assert!(t.break_even(Watts::zero()).value().is_infinite());
        // And H2P with zero generation is a (small) net loss.
        assert!(t.reduction(Watts::zero()) < 0.0);
    }

    #[test]
    fn reduction_monotone_in_power() {
        let t = tco();
        assert!(t.reduction(Watts::new(5.0)) > t.reduction(Watts::new(4.0)));
    }

    #[test]
    fn validation() {
        assert!(TcoAnalysis::new(TcoParameters::paper_table1(), 0).is_err());
        let mut p = TcoParameters::paper_table1();
        p.teg_lifespan_years = 0.0;
        assert!(TcoAnalysis::new(p, 10).is_err());
    }
}
