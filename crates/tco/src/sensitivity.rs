//! Sensitivity analysis of the TCO result.
//!
//! The paper's headline 0.57 % reduction rests on three externalities:
//! the electricity price (13 ¢/kWh from \[16\]), the $1 TEG unit price,
//! and the assumed 25-year amortization. These sweeps quantify how the
//! conclusion moves when they do.

use crate::{TcoAnalysis, TcoError, TcoParameters};
use h2p_units::{Dollars, Watts};

/// One row of a sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// The swept parameter's value.
    pub parameter: f64,
    /// Fractional TCO reduction at that value.
    pub reduction: f64,
    /// Break-even in days (infinite when revenue is zero).
    pub break_even_days: f64,
    /// Net annual savings across the cluster.
    pub annual_savings: Dollars,
}

fn evaluate(
    params: TcoParameters,
    servers: usize,
    power: Watts,
    swept: f64,
) -> Result<SensitivityPoint, TcoError> {
    let tco = TcoAnalysis::new(params, servers)?;
    Ok(SensitivityPoint {
        parameter: swept,
        reduction: tco.reduction(power),
        break_even_days: tco.break_even(power).to_days(),
        annual_savings: tco.annual_savings(power),
    })
}

/// Sweeps the electricity price (per kWh, dollars).
///
/// # Errors
///
/// Propagates [`TcoAnalysis::new`] validation failures (e.g. a zero
/// price in the sweep).
pub fn electricity_price_sweep(
    base: &TcoAnalysis,
    power: Watts,
    prices: &[f64],
) -> Result<Vec<SensitivityPoint>, TcoError> {
    prices
        .iter()
        .map(|&price| {
            let mut params = *base.params();
            params.electricity_per_kwh = Dollars::new(price);
            evaluate(params, base.servers(), power, price)
        })
        .collect()
}

/// Sweeps the TEG unit cost (dollars per device).
///
/// # Errors
///
/// Propagates [`TcoAnalysis::new`] validation failures.
pub fn teg_cost_sweep(
    base: &TcoAnalysis,
    power: Watts,
    costs: &[f64],
) -> Result<Vec<SensitivityPoint>, TcoError> {
    costs
        .iter()
        .map(|&cost| {
            let mut params = *base.params();
            params.teg_unit_cost = Dollars::new(cost);
            evaluate(params, base.servers(), power, cost)
        })
        .collect()
}

/// Sweeps the amortization lifespan (years).
///
/// # Errors
///
/// Propagates [`TcoAnalysis::new`] validation failures.
pub fn lifespan_sweep(
    base: &TcoAnalysis,
    power: Watts,
    lifespans: &[f64],
) -> Result<Vec<SensitivityPoint>, TcoError> {
    lifespans
        .iter()
        .map(|&years| {
            let mut params = *base.params();
            params.teg_lifespan_years = years;
            evaluate(params, base.servers(), power, years)
        })
        .collect()
}

/// The electricity price at which H2P exactly breaks even on a
/// per-server-month basis (revenue equals amortized CapEx); below it,
/// installing TEGs is a net loss.
#[must_use]
pub fn break_even_electricity_price(base: &TcoAnalysis, power: Watts) -> Dollars {
    if power.value() <= 0.0 {
        return Dollars::new(f64::INFINITY);
    }
    let capex = base.teg_capex_per_server_month();
    let kwh_per_month = power.value() * 24.0 * 30.0 / 1000.0;
    Dollars::new(capex.value() / kwh_per_month)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lb_power() -> Watts {
        Watts::new(4.177)
    }

    fn base() -> TcoAnalysis {
        TcoAnalysis::paper_default()
    }

    #[test]
    fn price_sweep_monotone() {
        let points =
            electricity_price_sweep(&base(), lb_power(), &[0.05, 0.10, 0.13, 0.20, 0.30]).unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].reduction > pair[0].reduction);
            assert!(pair[1].break_even_days < pair[0].break_even_days);
        }
        // The paper's 13 ¢ point reproduces the headline.
        let at13 = points.iter().find(|p| p.parameter == 0.13).unwrap();
        assert!((at13.reduction - 0.0057).abs() < 3e-4);
    }

    #[test]
    fn teg_cost_sweep_monotone() {
        let points = teg_cost_sweep(&base(), lb_power(), &[0.5, 1.0, 2.0, 5.0]).unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].reduction < pair[0].reduction);
            assert!(pair[1].break_even_days > pair[0].break_even_days);
        }
        // At $5/device the 920-day story stretches past a decade.
        assert!(points.last().unwrap().break_even_days > 3650.0);
    }

    #[test]
    fn lifespan_only_moves_amortization() {
        let points = lifespan_sweep(&base(), lb_power(), &[5.0, 25.0, 34.0]).unwrap();
        // Longer amortization -> lower monthly CapEx -> higher reduction.
        assert!(points[2].reduction > points[0].reduction);
        // Break-even is amortization-independent (cash-flow based).
        assert!((points[0].break_even_days - points[2].break_even_days).abs() < 1e-9);
    }

    #[test]
    fn break_even_price_matches_sweep_zero_crossing() {
        let price = break_even_electricity_price(&base(), lb_power());
        // Revenue at that price equals CapEx: net savings ~ 0.
        let points = electricity_price_sweep(&base(), lb_power(), &[price.value()]).unwrap();
        assert!(points[0].annual_savings.abs() < Dollars::new(1.0));
        // The paper's 13 ¢ sits an order of magnitude above it.
        assert!(price.value() < 0.02, "price = {price}");
    }

    #[test]
    fn zero_power_never_breaks_even() {
        assert!(break_even_electricity_price(&base(), Watts::zero())
            .value()
            .is_infinite());
    }
}
