//! Waste-heat reuse alternatives (paper Sec. II-C).
//!
//! The paper motivates TEG harvesting against **district heating**: heat
//! sold to a district heating system (DHS) earns more per joule than
//! Bi₂Te₃ conversion ever will, but it needs expensive piping, a
//! heating-season market and a high-latitude climate — "heat is not
//! always in great demand from season to season, from district to
//! district". This module quantifies that trade so the crossover can be
//! swept (see the `abl_district_heating` experiment).

use crate::TcoError;
use h2p_units::{Dollars, Watts};

/// Economic model of selling datacenter heat to a district heating
/// system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistrictHeating {
    /// Price paid per thermal kWh delivered (typically 2-5 ¢).
    pub heat_price_per_kwh: Dollars,
    /// One-time piping/integration CapEx, amortized per server.
    pub piping_capex_per_server: Dollars,
    /// Amortization horizon for the piping, years.
    pub amortization_years: f64,
    /// Months per year the district actually demands heat.
    pub demand_months: f64,
    /// Fraction of server heat that survives capture and transport.
    pub delivery_efficiency: f64,
}

impl DistrictHeating {
    /// A northern-Europe deployment with a mature DHS market:
    /// 6 ¢/kWh_th, $80/server piping over 20 years, 8 heating months,
    /// 90 % delivery (warm water needs no upgrading — the W5 regime the
    /// paper cites from ASHRAE).
    #[must_use]
    pub fn northern_europe() -> Self {
        DistrictHeating {
            heat_price_per_kwh: Dollars::from_cents(6.0),
            piping_capex_per_server: Dollars::new(80.0),
            amortization_years: 20.0,
            demand_months: 8.0,
            delivery_efficiency: 0.9,
        }
    }

    /// A low-latitude deployment (the paper's Singapore example):
    /// same machinery, but demand barely exists.
    #[must_use]
    pub fn tropics() -> Self {
        DistrictHeating {
            demand_months: 1.0,
            ..DistrictHeating::northern_europe()
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TcoError::NonPositiveParameter`] for a non-positive
    /// price, CapEx horizon, or a delivery efficiency/demand outside
    /// range.
    pub fn validate(&self) -> Result<(), TcoError> {
        for (name, value) in [
            ("heat_price_per_kwh", self.heat_price_per_kwh.value()),
            ("amortization_years", self.amortization_years),
        ] {
            if !(value > 0.0) {
                return Err(TcoError::NonPositiveParameter { name, value });
            }
        }
        if !(0.0..=12.0).contains(&self.demand_months) {
            return Err(TcoError::NonPositiveParameter {
                name: "demand_months",
                value: self.demand_months,
            });
        }
        if !(self.delivery_efficiency > 0.0 && self.delivery_efficiency <= 1.0) {
            return Err(TcoError::NonPositiveParameter {
                name: "delivery_efficiency",
                value: self.delivery_efficiency,
            });
        }
        if self.piping_capex_per_server.value() < 0.0 {
            return Err(TcoError::NonPositiveParameter {
                name: "piping_capex_per_server",
                value: self.piping_capex_per_server.value(),
            });
        }
        Ok(())
    }

    /// Gross heat revenue per server per year, given the mean thermal
    /// power each server rejects into the coolant.
    #[must_use]
    pub fn annual_heat_revenue(&self, server_heat: Watts) -> Dollars {
        let kwh_per_demand_hour = server_heat.value() * self.delivery_efficiency / 1000.0;
        let demand_hours = self.demand_months * 30.0 * 24.0;
        self.heat_price_per_kwh * (kwh_per_demand_hour * demand_hours)
    }

    /// Net benefit per server per year (revenue minus amortized piping).
    #[must_use]
    pub fn annual_net(&self, server_heat: Watts) -> Dollars {
        self.annual_heat_revenue(server_heat)
            - self.piping_capex_per_server / self.amortization_years
    }
}

/// Outcome of comparing the two reuse paths for one deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseComparison {
    /// H2P's net benefit per server per year.
    pub teg_net: Dollars,
    /// District heating's net benefit per server per year.
    pub dhs_net: Dollars,
}

impl ReuseComparison {
    /// Whether the TEG path wins.
    #[must_use]
    pub fn teg_wins(&self) -> bool {
        self.teg_net > self.dhs_net
    }
}

/// Compares H2P (electricity at `electricity_price`/kWh from
/// `teg_power`, amortized TEG CapEx of `teg_capex_per_year`) against a
/// district-heating deployment receiving `server_heat` thermal watts.
#[must_use]
pub fn compare(
    dhs: &DistrictHeating,
    teg_power: Watts,
    teg_capex_per_year: Dollars,
    electricity_price: Dollars,
    server_heat: Watts,
) -> ReuseComparison {
    let teg_revenue = electricity_price * (teg_power.value() * 24.0 * 365.0 / 1000.0);
    ReuseComparison {
        teg_net: teg_revenue - teg_capex_per_year,
        dhs_net: dhs.annual_net(server_heat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's operating point: ~4.2 W electric from ~30 W of heat.
    fn comparison(dhs: &DistrictHeating) -> ReuseComparison {
        compare(
            dhs,
            Watts::new(4.177),
            Dollars::new(0.48), // 12 x $1 over 25 years
            Dollars::from_cents(13.0),
            Watts::new(30.0),
        )
    }

    #[test]
    fn district_heating_wins_in_the_north() {
        // With an 8-month heating season and piping already amortized
        // over 15 years, selling heat beats 5 %-efficient conversion —
        // exactly why the paper does not pitch H2P against mature DHS
        // markets.
        let c = comparison(&DistrictHeating::northern_europe());
        assert!(!c.teg_wins(), "teg {} vs dhs {}", c.teg_net, c.dhs_net);
        assert!(c.dhs_net.value() > 0.0);
    }

    #[test]
    fn teg_wins_in_the_tropics() {
        // One demand-month per year cannot amortize the piping: the
        // paper's Singapore argument.
        let c = comparison(&DistrictHeating::tropics());
        assert!(c.teg_wins(), "teg {} vs dhs {}", c.teg_net, c.dhs_net);
        assert!(c.dhs_net.value() < 0.0, "piping is a net loss");
    }

    #[test]
    fn crossover_in_demand_months_exists() {
        let mut dhs = DistrictHeating::northern_europe();
        let mut last_winner_teg = true;
        let mut flipped = false;
        for months in 1..=12 {
            dhs.demand_months = months as f64;
            let wins = comparison(&dhs).teg_wins();
            if last_winner_teg && !wins {
                flipped = true;
            }
            last_winner_teg = wins;
        }
        assert!(flipped, "there must be a demand-month crossover");
    }

    #[test]
    fn revenue_scales_with_heat_and_season() {
        let dhs = DistrictHeating::northern_europe();
        let base = dhs.annual_heat_revenue(Watts::new(30.0));
        assert!(dhs.annual_heat_revenue(Watts::new(60.0)) > base * 1.9);
        let short = DistrictHeating {
            demand_months: 4.0,
            ..dhs
        };
        assert!((short.annual_heat_revenue(Watts::new(30.0)) / base - 0.5).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        let mut dhs = DistrictHeating::northern_europe();
        assert!(dhs.validate().is_ok());
        dhs.demand_months = 13.0;
        assert!(dhs.validate().is_err());
        dhs = DistrictHeating::northern_europe();
        dhs.delivery_efficiency = 0.0;
        assert!(dhs.validate().is_err());
        dhs = DistrictHeating::northern_europe();
        dhs.heat_price_per_kwh = Dollars::zero();
        assert!(dhs.validate().is_err());
    }
}
