//! `h2p-served`: the scenario daemon — JSONL request/response over
//! stdin/stdout (protocol in [`h2p_serve::protocol`]).
//!
//! ```text
//! cargo run -p h2p-serve --bin h2p-served              # default tuning
//! h2p-served --queue 64 --cache 32 --dispatch 4        # explicit tuning
//! h2p-served --tenant-quota 8                          # per-tenant cap
//! ```
//!
//! Every input line is answered by at least one output line; malformed
//! lines get an `{"event":"error",...}` line and the daemon keeps
//! going. EOF performs a final drain (so piped scripts never lose
//! queued work), prints a `bye` line, and exits 0. Diagnostics go to
//! stderr; stdout carries only protocol lines.
//!
//! A closed downstream (the reader of our stdout went away — the
//! EPIPE-equivalent; Rust never raises SIGPIPE, it surfaces as a
//! [`BrokenPipe`](std::io::ErrorKind::BrokenPipe) write error) is a
//! normal way for a pipeline to end: the daemon stops quietly with
//! exit 0. Any *other* stdout write failure is a real I/O error and
//! exits 1 with a diagnostic on stderr.

use h2p_serve::protocol::{admission_json, parse_line, response_json, stats_json, Command};
use h2p_serve::{ScenarioService, ServiceConfig};
use h2p_telemetry::Registry;
use std::io::{BufRead, ErrorKind, Write};
use std::num::NonZeroUsize;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = ServiceConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let take_usize =
            |i: usize| -> Option<usize> { args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) };
        match flag {
            "--queue" => match take_usize(i) {
                Some(n) => {
                    config.queue_capacity = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--cache" => match take_usize(i) {
                Some(n) => {
                    config.cache_capacity = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--dispatch" => match take_usize(i).and_then(NonZeroUsize::new) {
                Some(n) => {
                    config.dispatch_workers = n;
                    i += 2;
                }
                None => return usage(flag),
            },
            "--tenant-quota" => match take_usize(i) {
                Some(n) => {
                    config.tenant_quota = Some(n);
                    i += 2;
                }
                None => return usage(flag),
            },
            "--help" | "-h" => {
                eprintln!(
                    "h2p-served: JSONL scenario daemon\n\
                     usage: h2p-served [--queue N] [--cache N] [--dispatch N] [--tenant-quota N]\n\
                     protocol: one JSON object per stdin line; see h2p_serve::protocol"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(other),
        }
    }

    let registry = Registry::new();
    let service = ScenarioService::new(config).with_telemetry(&registry);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut served = 0u64;

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("h2p-served: stdin read failed: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_line(&line) {
            Ok(Command::Run(request)) => emit(&mut out, &admission_json(&service.submit(*request))),
            Ok(Command::Drain) => {
                let mut reply = Ok(());
                for response in service.drain() {
                    served += 1;
                    if reply.is_ok() {
                        reply = emit(&mut out, &response_json(&response));
                    }
                }
                reply
            }
            Ok(Command::Stats) => emit(&mut out, &stats_json(&service.stats())),
            Err(reason) => emit(
                &mut out,
                &serde_json::json!({"event": "error", "error": reason}),
            ),
        };
        if let Err(e) = reply {
            return stdout_gone(&e);
        }
    }

    // EOF: never strand queued work.
    for response in service.drain() {
        served += 1;
        if let Err(e) = emit(&mut out, &response_json(&response)) {
            return stdout_gone(&e);
        }
    }
    if let Err(e) = emit(
        &mut out,
        &serde_json::json!({"event": "bye", "served": served}),
    ) {
        return stdout_gone(&e);
    }
    ExitCode::SUCCESS
}

/// Writes one protocol line.
fn emit(out: &mut impl Write, value: &serde_json::Value) -> std::io::Result<()> {
    writeln!(out, "{value}")?;
    out.flush()
}

/// Maps a stdout write failure to the process exit code: a closed
/// downstream (EPIPE-equivalent) is a normal pipeline shutdown, exit
/// 0; anything else is a real fault, exit 1 with a diagnostic.
fn stdout_gone(e: &std::io::Error) -> ExitCode {
    if e.kind() == ErrorKind::BrokenPipe {
        return ExitCode::SUCCESS;
    }
    eprintln!("h2p-served: stdout write failed: {e}");
    ExitCode::FAILURE
}

fn usage(flag: &str) -> ExitCode {
    eprintln!("h2p-served: bad or incomplete flag {flag:?} (see --help)");
    ExitCode::from(2)
}
