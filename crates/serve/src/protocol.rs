//! The `h2p-served` JSONL wire protocol: one JSON object per line in,
//! one JSON object per line out.
//!
//! Requests:
//!
//! ```text
//! {"cmd":"run","trace":"common","seed":7,"servers":80,"steps":24,
//!  "policy":"load_balance","circulation":40,"workers":2,
//!  "priority":"interactive","faults":11,"tenant":"acme",
//!  "placement":"harvest_aware"}
//! {"cmd":"drain"}
//! {"cmd":"stats"}
//! ```
//!
//! `cmd` defaults to `"run"` when a `trace` field is present. A `run`
//! is answered immediately with an `enqueued`/`rejected` admission
//! line; `drain` emits one `result` (or `error`) line per pending
//! ticket; `stats` emits one `stats` line. Parsing and rendering live
//! here (not in the binary) so they are unit-testable and reusable.

use crate::request::{PolicyKind, Priority, ScenarioRequest, TraceSpec};
use crate::service::{Admission, ServeStats, TicketResponse};
use h2p_jobs::PlacementPolicyKind;
use h2p_workload::TraceKind;
use serde::Deserialize as _;
use serde_json::{json, Value};
use std::num::NonZeroUsize;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Submit a scenario.
    Run(Box<ScenarioRequest>),
    /// Serve everything queued.
    Drain,
    /// Report service statistics.
    Stats,
}

/// Parses one JSONL request line.
///
/// # Errors
///
/// A human-readable reason (also the daemon's `error` line) on
/// malformed JSON, unknown commands, or out-of-domain fields.
pub fn parse_line(line: &str) -> Result<Command, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("bad json: {e}"))?;
    let cmd = match value.get("cmd").and_then(Value::as_str) {
        Some(name) => name.to_owned(),
        None if value.get("trace").is_some() => "run".to_owned(),
        None => return Err("missing \"cmd\" (and no \"trace\" to imply a run)".to_owned()),
    };
    match cmd.as_str() {
        "run" => parse_request(&value).map(|r| Command::Run(Box::new(r))),
        "drain" => Ok(Command::Drain),
        "stats" => Ok(Command::Stats),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

fn parse_request(v: &Value) -> Result<ScenarioRequest, String> {
    let kind = match v.get("trace").and_then(Value::as_str) {
        Some(name) => TraceKind::all()
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| format!("unknown trace {name:?} (drastic|irregular|common)"))?,
        None => return Err("missing \"trace\"".to_owned()),
    };
    let trace = TraceSpec {
        kind,
        seed: u64_field(v, "seed", 42)?,
        servers: usize_field(v, "servers", 40)?,
        steps: usize_field(v, "steps", 24)?,
    };
    let policy = match v
        .get("policy")
        .and_then(Value::as_str)
        .unwrap_or("load_balance")
    {
        "original" => PolicyKind::Original,
        "load_balance" => PolicyKind::LoadBalance,
        "consolidate" => PolicyKind::Consolidate,
        "bounded_migration" => {
            let max_step = v
                .get("max_step")
                .and_then(Value::as_f64)
                .ok_or_else(|| "bounded_migration needs a numeric \"max_step\"".to_owned())?;
            PolicyKind::BoundedMigration { max_step }
        }
        other => {
            return Err(format!(
                "unknown policy {other:?} (original|load_balance|consolidate|bounded_migration)"
            ))
        }
    };
    let fault_seed = match v.get("faults") {
        None | Some(Value::Null) => None,
        Some(val) => Some(u64::from_content(val).map_err(|e| format!("field \"faults\": {e}"))?),
    };
    let placement = match v.get("placement") {
        None | Some(Value::Null) => None,
        Some(Value::String(name)) => Some(PlacementPolicyKind::parse(name).ok_or_else(|| {
            format!("unknown placement {name:?} (round_robin|coolest_first|harvest_aware)")
        })?),
        Some(_) => return Err("field \"placement\": expected a string".to_owned()),
    };
    let workers = usize_field(v, "workers", 1)?;
    let priority = match v.get("priority").and_then(Value::as_str).unwrap_or("batch") {
        "interactive" => Priority::Interactive,
        "batch" => Priority::Batch,
        "background" => Priority::Background,
        other => {
            return Err(format!(
                "unknown priority {other:?} (interactive|batch|background)"
            ))
        }
    };
    let tenant = match v.get("tenant") {
        None | Some(Value::Null) => None,
        Some(Value::String(name)) => Some(name.clone()),
        Some(_) => return Err("field \"tenant\": expected a string".to_owned()),
    };
    Ok(ScenarioRequest {
        trace,
        policy,
        fault_seed,
        placement,
        servers_per_circulation: usize_field(v, "circulation", 40)?,
        workers: NonZeroUsize::new(workers).ok_or_else(|| "\"workers\" must be >= 1".to_owned())?,
        priority,
        tenant,
    })
}

fn u64_field(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(val) => u64::from_content(val).map_err(|e| format!("field {key:?}: {e}")),
    }
}

fn usize_field(v: &Value, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(val) => usize::from_content(val).map_err(|e| format!("field {key:?}: {e}")),
    }
}

/// Renders an admission as its response line.
#[must_use]
pub fn admission_json(admission: &Admission) -> Value {
    match admission {
        Admission::Enqueued { ticket, key, depth } => json!({
            "event": "enqueued",
            "ticket": ticket.0,
            "key": key.to_string(),
            "depth": depth,
        }),
        Admission::Rejected { reason } => json!({
            "event": "rejected",
            "reason": reason.to_string(),
        }),
    }
}

/// Renders one drained ticket as its response line.
#[must_use]
pub fn response_json(response: &TicketResponse) -> Value {
    match &response.served {
        Ok(served) => {
            let result = &served.output.result;
            json!({
                "event": "result",
                "ticket": response.ticket.0,
                "key": response.key.to_string(),
                "provenance": served.provenance.name(),
                "policy": result.policy(),
                "servers": result.servers(),
                "steps": result.steps().len(),
                "avg_teg_w_per_server": result.average_teg_power().ok().map(|w| w.value()),
                "pre": result.pre(),
                "partial_pue": result.partial_pue().ok(),
                "partial_ere": result.partial_ere().ok(),
                "violations": result.total_violations(),
                "faulted": served.output.ledger.is_some(),
            })
        }
        Err(e) => json!({
            "event": "error",
            "ticket": response.ticket.0,
            "key": response.key.to_string(),
            "error": e.to_string(),
        }),
    }
}

/// Renders a statistics snapshot as its response line.
#[must_use]
pub fn stats_json(stats: &ServeStats) -> Value {
    json!({
        "event": "stats",
        "submitted": stats.submitted,
        "admitted": stats.admitted,
        "rejected_full": stats.rejected_full,
        "rejected_invalid": stats.rejected_invalid,
        "quota_rejected": stats.quota_rejected,
        "coalesced": stats.coalesced,
        "batches": stats.batches,
        "runs_executed": stats.runs_executed,
        "engine_builds": stats.engine_builds,
        "drains": stats.drains,
        "completed": stats.completed,
        "queue_depth": stats.queue_depth,
        "queue_capacity": stats.queue_capacity,
        "cache_hits": stats.cache.hits,
        "cache_misses": stats.cache.misses,
        "cache_evictions": stats.cache.evictions,
        "cache_entries": stats.cache.entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_lines_parse_with_defaults() {
        let cmd = parse_line(r#"{"trace":"common"}"#).unwrap();
        let Command::Run(req) = cmd else {
            panic!("expected run")
        };
        assert_eq!(req.trace.kind, TraceKind::Common);
        assert_eq!(req.trace.seed, 42);
        assert_eq!((req.trace.servers, req.trace.steps), (40, 24));
        assert_eq!(req.policy, PolicyKind::LoadBalance);
        assert_eq!(req.fault_seed, None);
        assert_eq!(req.servers_per_circulation, 40);
        assert_eq!(req.workers.get(), 1);
        assert_eq!(req.priority, Priority::Batch);
    }

    #[test]
    fn run_lines_parse_every_field() {
        let line = r#"{"cmd":"run","trace":"drastic","seed":7,"servers":80,"steps":12,
            "policy":"bounded_migration","max_step":0.2,"faults":11,
            "circulation":20,"workers":4,"priority":"interactive"}"#;
        let Command::Run(req) = parse_line(line).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(req.trace.kind, TraceKind::Drastic);
        assert_eq!(req.trace.seed, 7);
        assert_eq!(req.policy, PolicyKind::BoundedMigration { max_step: 0.2 });
        assert_eq!(req.fault_seed, Some(11));
        assert_eq!(req.servers_per_circulation, 20);
        assert_eq!(req.workers.get(), 4);
        assert_eq!(req.priority, Priority::Interactive);
    }

    #[test]
    fn tenant_field_parses_and_defaults_to_unattributed() {
        let Command::Run(req) = parse_line(r#"{"trace":"common","tenant":"acme"}"#).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(req.tenant.as_deref(), Some("acme"));
        let Command::Run(req) = parse_line(r#"{"trace":"common"}"#).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(req.tenant, None);
    }

    #[test]
    fn control_lines_parse() {
        assert_eq!(parse_line(r#"{"cmd":"drain"}"#).unwrap(), Command::Drain);
        assert_eq!(parse_line(r#"{"cmd":"stats"}"#).unwrap(), Command::Stats);
    }

    #[test]
    fn malformed_lines_produce_reasons_not_panics() {
        for (line, needle) in [
            ("{", "bad json"),
            (r#"{"cmd":"nope"}"#, "unknown cmd"),
            (r#"{"cmd":"run"}"#, "missing \"trace\""),
            (r#"{"trace":"lunar"}"#, "unknown trace"),
            (r#"{"trace":"common","policy":"fifo"}"#, "unknown policy"),
            (
                r#"{"trace":"common","policy":"bounded_migration"}"#,
                "max_step",
            ),
            (r#"{"trace":"common","workers":0}"#, "workers"),
            (r#"{"trace":"common","seed":1.5}"#, "seed"),
            (
                r#"{"trace":"common","priority":"urgent"}"#,
                "unknown priority",
            ),
            (r#"{"trace":"common","tenant":7}"#, "tenant"),
        ] {
            let err = parse_line(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn parsed_requests_key_like_constructed_ones() {
        let Command::Run(parsed) =
            parse_line(r#"{"trace":"irregular","seed":3,"servers":60,"steps":9}"#).unwrap()
        else {
            panic!("expected run")
        };
        let constructed = ScenarioRequest::new(
            TraceSpec {
                kind: TraceKind::Irregular,
                seed: 3,
                servers: 60,
                steps: 9,
            },
            PolicyKind::LoadBalance,
        );
        assert_eq!(parsed.key(), constructed.key());
    }
}
