//! The LRU result cache, keyed by the canonical scenario key.
//!
//! Values are whole simulation outcomes — pure functions of their key
//! (the engine's determinism contract), so replaying a hit is
//! observationally identical to recomputing, and evicting can only
//! cost a recomputation. Keys are compared by their **full canonical
//! string**, never by fingerprint, so collisions cannot alias
//! scenarios. Hit/miss/insertion/eviction counters are plain atomics
//! (always live), mirroring the engine's `SettingCache` convention.

use crate::request::ScenarioKey;
use h2p_telemetry::Counter;
use std::collections::BTreeMap;

/// Always-on statistics of the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ResultCacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to run the engine.
    pub misses: u64,
    /// Outcomes written into the cache.
    pub insertions: u64,
    /// Outcomes dropped by the LRU bound.
    pub evictions: u64,
    /// Outcomes currently resident.
    pub entries: usize,
}

/// One resident outcome with its recency stamp.
#[derive(Debug)]
struct Entry<V> {
    value: V,
    stamp: u64,
}

/// A strict-LRU map bounded at `capacity` entries (see module docs).
///
/// Recency is tracked with a monotone stamp per entry and a lazy
/// sweep on eviction: O(log n) hits, O(n) only when an insert
/// actually evicts — the right trade for a cache whose values each
/// cost an engine run. The map is a `BTreeMap` (L8): the eviction
/// sweep folds over it, and hash iteration order would make the
/// victim — and therefore every downstream hit/miss pattern — vary
/// per process. Key order breaks recency-stamp ties, so eviction is a
/// pure function of the request history.
#[derive(Debug)]
pub struct ResultCache<V> {
    map: BTreeMap<ScenarioKey, Entry<V>>,
    capacity: usize,
    tick: u64,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

impl<V: Clone> ResultCache<V> {
    /// A cache bounded at `capacity` outcomes (clamped to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            map: BTreeMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &ScenarioKey) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = tick;
                self.hits.incr();
                Some(entry.value.clone())
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the bound would be exceeded.
    pub fn insert(&mut self, key: ScenarioKey, value: V) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(coldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&coldest);
                self.evictions.incr();
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                stamp: self.tick,
            },
        );
        self.insertions.incr();
    }

    /// Always-on statistics.
    #[must_use]
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            entries: self.map.len(),
        }
    }

    /// The counter handles, for registration with a telemetry registry
    /// (shared, not copied).
    #[must_use]
    pub fn counters(&self) -> [(&'static str, &Counter); 4] {
        [
            ("serve.result_cache.hits", &self.hits),
            ("serve.result_cache.misses", &self.misses),
            ("serve.result_cache.insertions", &self.insertions),
            ("serve.result_cache.evictions", &self.evictions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{PolicyKind, ScenarioRequest, TraceSpec};
    use h2p_workload::TraceKind;

    fn key(seed: u64) -> ScenarioKey {
        ScenarioRequest::new(
            TraceSpec {
                kind: TraceKind::Common,
                seed,
                servers: 40,
                steps: 6,
            },
            PolicyKind::Original,
        )
        .key()
    }

    #[test]
    fn hit_miss_and_eviction_counters_account_exactly() {
        let mut cache: ResultCache<u32> = ResultCache::new(2);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), 10);
        cache.insert(key(2), 20);
        assert_eq!(cache.get(&key(1)), Some(10));
        // key(1) is now the most recent; inserting key(3) evicts key(2).
        cache.insert(key(3), 30);
        assert_eq!(cache.get(&key(2)), None);
        assert_eq!(cache.get(&key(1)), Some(10));
        assert_eq!(cache.get(&key(3)), Some(30));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (3, 2));
        assert_eq!((s.insertions, s.evictions, s.entries), (3, 1, 2));
    }

    #[test]
    fn reinserting_a_resident_key_does_not_evict() {
        let mut cache: ResultCache<u32> = ResultCache::new(2);
        cache.insert(key(1), 10);
        cache.insert(key(2), 20);
        cache.insert(key(1), 11);
        let s = cache.stats();
        assert_eq!(s.evictions, 0);
        assert_eq!(s.entries, 2);
        assert_eq!(cache.get(&key(1)), Some(11));
    }

    #[test]
    fn capacity_one_keeps_only_the_newest() {
        let mut cache: ResultCache<u32> = ResultCache::new(0); // clamped to 1
        cache.insert(key(1), 1);
        cache.insert(key(2), 2);
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.get(&key(2)), Some(2));
        assert_eq!(cache.stats().entries, 1);
    }
}
