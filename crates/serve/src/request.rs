//! Typed scenario requests and their canonical content-addressed keys.
//!
//! A [`ScenarioRequest`] names everything that determines a simulation
//! result — trace slice, policy, fault seed, circulation size, worker
//! budget — and nothing else. Its [`canonical key`](ScenarioKey) is a
//! pure function of those inputs, so two requests with equal keys are
//! guaranteed (by the engine's determinism contract, DESIGN.md §8/§11)
//! to produce bit-identical [`SimulationResult`]s — which is what lets
//! the scheduler coalesce duplicates and the result cache replay
//! responses without ever changing observable bits.
//!
//! [`SimulationResult`]: h2p_core::simulation::SimulationResult

use h2p_core::simulation::Simulator;
use h2p_faults::{FaultError, FaultPlan, HazardRates};
use h2p_jobs::{synthetic_jobs, JobsError, PlacementEngine, PlacementPolicyKind};
use h2p_sched::{BoundedMigration, Consolidate, LoadBalance, Original, SchedulingPolicy};
use h2p_workload::{ClusterTrace, TraceGenerator, TraceKind};
use std::fmt;
use std::num::NonZeroUsize;

/// The scheduling policy a scenario runs under, in data form (so it can
/// be keyed, compared, and parsed off the wire).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// `TEG_Original`: no scheduling.
    Original,
    /// `TEG_LoadBalance`: perfect balancing.
    LoadBalance,
    /// `TEG_Consolidate`: energy-proportionality packing.
    Consolidate,
    /// `TEG_BoundedMigration`: balancing under a migration budget.
    BoundedMigration {
        /// Per-server per-interval load budget (fraction of capacity).
        max_step: f64,
    },
}

/// A [`PolicyKind`] materialized into a concrete policy value. Holding
/// the concrete variants (rather than a `Box<dyn ...>`) keeps request
/// handling allocation-free and `Copy`.
#[derive(Debug, Clone, Copy)]
pub enum BuiltPolicy {
    /// See [`Original`].
    Original(Original),
    /// See [`LoadBalance`].
    LoadBalance(LoadBalance),
    /// See [`Consolidate`].
    Consolidate(Consolidate),
    /// See [`BoundedMigration`].
    BoundedMigration(BoundedMigration),
}

impl BuiltPolicy {
    /// The policy as the trait object the engine consumes.
    #[must_use]
    pub fn as_dyn(&self) -> &dyn SchedulingPolicy {
        match self {
            BuiltPolicy::Original(p) => p,
            BuiltPolicy::LoadBalance(p) => p,
            BuiltPolicy::Consolidate(p) => p,
            BuiltPolicy::BoundedMigration(p) => p,
        }
    }
}

impl PolicyKind {
    /// Builds the concrete policy. The caller must have validated the
    /// kind first (see [`PolicyKind::validate`]): `BoundedMigration`
    /// with a negative or NaN budget has no meaning.
    ///
    /// # Panics
    ///
    /// Panics if an invalid `BoundedMigration` budget slipped past
    /// validation ([`BoundedMigration::new`]'s contract).
    #[must_use]
    pub fn build(&self) -> BuiltPolicy {
        match *self {
            PolicyKind::Original => BuiltPolicy::Original(Original),
            PolicyKind::LoadBalance => BuiltPolicy::LoadBalance(LoadBalance),
            PolicyKind::Consolidate => BuiltPolicy::Consolidate(Consolidate),
            PolicyKind::BoundedMigration { max_step } => {
                BuiltPolicy::BoundedMigration(BoundedMigration::new(max_step))
            }
        }
    }

    /// Checks the kind is meaningful; returns the offending detail
    /// otherwise.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the policy parameters are out of
    /// domain.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            PolicyKind::BoundedMigration { max_step } => {
                if max_step.is_finite() && max_step >= 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "bounded_migration max_step must be finite and >= 0, got {max_step}"
                    ))
                }
            }
            _ => Ok(()),
        }
    }

    /// The wire/key spelling. `BoundedMigration` embeds the exact bit
    /// pattern of its budget so that two budgets that print alike but
    /// differ in the last ulp never share a key.
    #[must_use]
    pub fn canonical(&self) -> String {
        match *self {
            PolicyKind::Original => "original".to_owned(),
            PolicyKind::LoadBalance => "load_balance".to_owned(),
            PolicyKind::Consolidate => "consolidate".to_owned(),
            PolicyKind::BoundedMigration { max_step } => {
                format!("bounded_migration[{:016x}]", max_step.to_bits())
            }
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// The trace slice a scenario simulates: a deterministic synthetic
/// trace, fully named by generator inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Which paper workload shape to generate.
    pub kind: TraceKind,
    /// Generator seed.
    pub seed: u64,
    /// Cluster size in servers.
    pub servers: usize,
    /// Number of control intervals.
    pub steps: usize,
}

impl TraceSpec {
    /// Materializes the trace (deterministic in the spec).
    #[must_use]
    pub fn generate(&self) -> ClusterTrace {
        TraceGenerator::paper(self.kind, self.seed)
            .with_servers(self.servers)
            .with_steps(self.steps)
            .generate()
    }
}

/// Admission priority class. Within one drain, higher classes are
/// popped (and therefore executed) first; within a class, order is
/// FIFO. The class is deliberately *not* part of the scenario key:
/// the same scenario submitted at two priorities still coalesces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Latency-sensitive, served first.
    Interactive,
    /// Normal work.
    #[default]
    Batch,
    /// Soak/backfill work, served last.
    Background,
}

impl Priority {
    /// All classes, highest first (the queue's lane order).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// Lane index, 0 = highest priority.
    #[must_use]
    pub fn lane(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::Background => 2,
        }
    }

    /// The wire spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }
}

/// One scenario query: everything the engine needs, nothing more.
///
/// Fault semantics: `fault_seed = None` runs the plan-free engine
/// (`Simulator::run`); `Some(seed)` runs `Simulator::run_with_faults`
/// under a hazard-sampled plan
/// ([`HazardRates::accelerated_demo`](h2p_faults::HazardRates::accelerated_demo)
/// compiled for the request's exact geometry), so a fault scenario is
/// as reproducible as a healthy one.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRequest {
    /// The trace slice to simulate.
    pub trace: TraceSpec,
    /// The scheduling policy.
    pub policy: PolicyKind,
    /// Fault-plan seed (`None` = healthy run).
    pub fault_seed: Option<u64>,
    /// Placement scenario: `None` simulates the generated trace
    /// directly; `Some(kind)` synthesizes shaped jobs from the trace
    /// spec (same kind/seed/geometry) and simulates the trace the
    /// placement engine materializes under that placement policy (see
    /// [`ScenarioRequest::materialize`]). Part of the scenario key —
    /// placement changes the simulated bits.
    pub placement: Option<PlacementPolicyKind>,
    /// Servers per water circulation (the CDU granularity).
    pub servers_per_circulation: usize,
    /// Engine worker budget for this scenario.
    pub workers: NonZeroUsize,
    /// Admission class (not part of the scenario key).
    pub priority: Priority,
    /// Submitting tenant, for per-tenant admission quotas (`None` =
    /// unattributed, never quota-limited). Like [`Priority`], the
    /// tenant is deliberately *not* part of the scenario key: the same
    /// scenario submitted by two tenants still coalesces onto one
    /// engine run.
    pub tenant: Option<String>,
}

impl ScenarioRequest {
    /// A paper-default request shape: 40-server circulations, one
    /// worker, batch priority, healthy.
    #[must_use]
    pub fn new(trace: TraceSpec, policy: PolicyKind) -> Self {
        ScenarioRequest {
            trace,
            policy,
            fault_seed: None,
            placement: None,
            servers_per_circulation: 40,
            workers: NonZeroUsize::MIN,
            priority: Priority::Batch,
            tenant: None,
        }
    }

    /// Attributes the request to a tenant (builder style; see
    /// [`ScenarioRequest::tenant`]).
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Turns the request into a placement scenario (builder style; see
    /// [`ScenarioRequest::placement`]).
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicyKind) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Materializes the cluster trace this request simulates: the
    /// named generator trace, or — for placement requests — the trace
    /// the placement engine synthesizes from shaped synthetic jobs on
    /// the given engine. This is the *single* construction point for
    /// served traces (the service and the transparency tests both call
    /// it), so a served placement scenario is bit-reproducible from
    /// the request plus the engine shape alone.
    ///
    /// # Errors
    ///
    /// Propagates [`JobsError`] from the placement engine (cannot
    /// happen for a validated request on the paper grid).
    pub fn materialize(&self, engine: &Simulator) -> Result<ClusterTrace, JobsError> {
        match self.placement {
            None => Ok(self.trace.generate()),
            Some(kind) => {
                let policy = self.policy.build();
                let placer = PlacementEngine::new(
                    engine,
                    policy.as_dyn(),
                    self.trace.servers,
                    self.trace.steps,
                )?;
                let jobs = synthetic_jobs(
                    self.trace.kind,
                    self.trace.seed,
                    self.trace.servers,
                    self.trace.steps,
                    placer.interval(),
                );
                Ok(placer.place(&jobs, &mut *kind.build())?.trace)
            }
        }
    }

    /// The deterministic fault plan this request names, compiled for
    /// the cluster's exact geometry — `None` for a healthy request.
    /// This is the *single* construction point for served fault plans:
    /// the service and the transparency tests both call it, so a
    /// served fault scenario is bit-reproducible from the request
    /// alone.
    ///
    /// # Errors
    ///
    /// The inner result propagates [`FaultError`] from hazard
    /// validation.
    #[must_use]
    pub fn fault_plan(&self, cluster: &ClusterTrace) -> Option<Result<FaultPlan, FaultError>> {
        let seed = self.fault_seed?;
        let circ = self.servers_per_circulation.min(cluster.servers()).max(1);
        Some(FaultPlan::from_hazards(
            &HazardRates::accelerated_demo(),
            seed,
            cluster.servers(),
            circ,
            cluster.steps(),
            cluster.interval(),
        ))
    }

    /// The canonical content-addressed key (see [`ScenarioKey`]).
    #[must_use]
    pub fn key(&self) -> ScenarioKey {
        let faults = match self.fault_seed {
            None => "none".to_owned(),
            Some(seed) => format!("hazard[{seed}]"),
        };
        let placement = match self.placement {
            None => "none",
            Some(kind) => kind.name(),
        };
        ScenarioKey::from_canonical(format!(
            "trace={kind}:seed={seed}:srv={srv}:steps={steps};policy={policy};placement={placement};faults={faults};circ={circ};workers={workers}",
            kind = self.trace.kind.name(),
            seed = self.trace.seed,
            srv = self.trace.servers,
            steps = self.trace.steps,
            policy = self.policy.canonical(),
            circ = self.servers_per_circulation,
            workers = self.workers.get(),
        ))
    }
}

/// The canonical content address of a scenario: a stable string naming
/// every result-determining input, plus an FNV-1a fingerprint for
/// compact display. Equality, ordering, and hashing use the *full*
/// canonical string — the fingerprint is never trusted for identity,
/// so hash collisions cannot alias two scenarios. The `Ord` instance
/// (byte order of the canonical string) is what makes keyed
/// containers like the result cache iterate deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScenarioKey {
    canonical: String,
}

impl ScenarioKey {
    fn from_canonical(canonical: String) -> Self {
        ScenarioKey { canonical }
    }

    /// The canonical string form.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.canonical
    }

    /// 64-bit FNV-1a fingerprint of the canonical form (display only).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for byte in self.canonical.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

impl fmt::Display for ScenarioKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_request() -> ScenarioRequest {
        ScenarioRequest::new(
            TraceSpec {
                kind: TraceKind::Common,
                seed: 7,
                servers: 80,
                steps: 12,
            },
            PolicyKind::LoadBalance,
        )
    }

    #[test]
    fn equal_requests_share_a_key() {
        assert_eq!(base_request().key(), base_request().key());
        assert_eq!(
            base_request().key().fingerprint(),
            base_request().key().fingerprint()
        );
    }

    #[test]
    fn every_result_determining_field_splits_the_key() {
        let base = base_request();
        let mut variants = Vec::new();
        let mut v = base.clone();
        v.trace.kind = TraceKind::Drastic;
        variants.push(v);
        let mut v = base.clone();
        v.trace.seed = 8;
        variants.push(v);
        let mut v = base.clone();
        v.trace.servers = 81;
        variants.push(v);
        let mut v = base.clone();
        v.trace.steps = 13;
        variants.push(v);
        let mut v = base.clone();
        v.policy = PolicyKind::Original;
        variants.push(v);
        let mut v = base.clone();
        v.fault_seed = Some(1);
        variants.push(v);
        let mut v = base.clone();
        v.placement = Some(h2p_jobs::PlacementPolicyKind::HarvestAware);
        variants.push(v);
        let mut v = base.clone();
        v.servers_per_circulation = 20;
        variants.push(v);
        let mut v = base.clone();
        v.workers = NonZeroUsize::new(2).unwrap();
        variants.push(v);
        for variant in variants {
            assert_ne!(variant.key(), base.key(), "{:?}", variant);
        }
    }

    #[test]
    fn priority_does_not_split_the_key() {
        let mut urgent = base_request();
        urgent.priority = Priority::Interactive;
        assert_eq!(urgent.key(), base_request().key());
    }

    #[test]
    fn tenant_does_not_split_the_key() {
        // Two tenants asking the same question share one engine run;
        // quotas act at admission, not on result identity.
        let attributed = base_request().with_tenant("acme");
        assert_eq!(attributed.key(), base_request().key());
        assert_eq!(attributed.tenant.as_deref(), Some("acme"));
    }

    #[test]
    fn bounded_migration_key_is_bit_exact() {
        let a = PolicyKind::BoundedMigration { max_step: 0.2 };
        let b = PolicyKind::BoundedMigration {
            max_step: 0.2 + f64::EPSILON,
        };
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn policy_validation_rejects_nonsense_budgets() {
        assert!(PolicyKind::BoundedMigration { max_step: -0.1 }
            .validate()
            .is_err());
        assert!(PolicyKind::BoundedMigration { max_step: f64::NAN }
            .validate()
            .is_err());
        assert!(PolicyKind::BoundedMigration { max_step: 0.3 }
            .validate()
            .is_ok());
        assert!(PolicyKind::Original.validate().is_ok());
    }

    #[test]
    fn built_policies_match_their_kinds() {
        assert_eq!(PolicyKind::Original.build().as_dyn().name(), "TEG_Original");
        assert_eq!(
            PolicyKind::BoundedMigration { max_step: 0.25 }
                .build()
                .as_dyn()
                .name(),
            "TEG_BoundedMigration"
        );
    }

    #[test]
    fn priority_lanes_are_ordered() {
        assert!(Priority::Interactive < Priority::Batch);
        assert!(Priority::Batch < Priority::Background);
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.lane(), i);
        }
    }
}
