//! # h2p-serve — the simulation-serving layer
//!
//! Turns the one-shot [`Simulator`](h2p_core::simulation::Simulator)
//! into a concurrent scenario service (DESIGN.md §11): typed
//! [`ScenarioRequest`]s with canonical content-addressed keys, a
//! [`BoundedQueue`] with priority classes and explicit backpressure,
//! a [`ScenarioService`] scheduler that coalesces duplicate in-flight
//! requests, batches compatible scenarios onto shared engines, and
//! dispatches them across the `h2p-exec` worker pool, and an LRU
//! [`ResultCache`] over whole outcomes. The `h2p-served` binary wraps
//! the service in a JSONL stdin/stdout daemon.
//!
//! **Serving invariant**: a scenario served through this layer returns
//! bit-identical results to a direct engine call with the same inputs
//! — cached or uncached, coalesced or not, at any worker count
//! (pinned by `tests/serve_transparency.rs`).
//!
//! ```
//! use h2p_serve::{
//!     Admission, PolicyKind, ScenarioRequest, ScenarioService, TraceSpec,
//! };
//! use h2p_workload::TraceKind;
//!
//! let service = ScenarioService::with_defaults();
//! let request = ScenarioRequest::new(
//!     TraceSpec { kind: TraceKind::Common, seed: 42, servers: 40, steps: 6 },
//!     PolicyKind::LoadBalance,
//! );
//! // Duplicates coalesce onto one engine run.
//! let first = service.submit(request.clone());
//! let second = service.submit(request);
//! assert!(matches!(first, Admission::Enqueued { .. }));
//! assert!(matches!(second, Admission::Enqueued { .. }));
//! let responses = service.drain();
//! assert_eq!(responses.len(), 2);
//! assert_eq!(service.stats().runs_executed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)`-style NaN-rejecting guards are idiomatic here.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Lock-order manifest (h2p-lint L10). `drain_gate` serializes drains
// and is held across the engine/cache critical sections; the queue
// lanes (`inner`), the engine map and the result cache are leaf
// locks, never held while acquiring another.
// h2p-lint: lock-order: drain_gate, tenants, inner, engines, cache
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

pub mod cache;
pub mod protocol;
pub mod queue;
pub mod request;
pub mod service;

pub use cache::{ResultCache, ResultCacheStats};
pub use queue::{BoundedQueue, QueueFull};
pub use request::{BuiltPolicy, PolicyKind, Priority, ScenarioKey, ScenarioRequest, TraceSpec};
pub use service::{
    Admission, Provenance, RejectReason, RunOutput, ScenarioService, ServeError, ServeStats,
    ServedScenario, ServiceConfig, TicketId, TicketResponse, SERVE_REJECTED_EVENT,
};
