//! The bounded, prioritized admission queue.
//!
//! This is the *only* sanctioned queue construction site in the
//! workspace (lint rule L7 forbids unbounded queue/channel construction
//! everywhere else): a fixed total capacity shared across the three
//! [`Priority`] lanes, checked on every push. A full queue **rejects**
//! — it never blocks the producer and never grows, so admission
//! pressure is always visible to the caller instead of becoming hidden
//! memory growth.

use crate::request::Priority;
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Why an enqueue was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured total capacity that was reached.
    pub capacity: usize,
}

/// Interior: one FIFO lane per priority class.
#[derive(Debug)]
struct Lanes<T> {
    // h2p-lint: allow(L7): the lanes live behind BoundedQueue's capacity check
    lanes: [VecDeque<T>; 3],
    len: usize,
}

/// A multi-producer bounded queue with priority classes (see the
/// module docs). All methods are `&self`; the interior mutex makes the
/// queue shareable across producer threads.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Lanes<T>>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items in total (across all
    /// lanes). A zero capacity is clamped to one.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Lanes {
                // h2p-lint: allow(L7): bounded by the push-side capacity check below
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// The configured total capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current total depth across all lanes.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.lock().len
    }

    /// Enqueues onto the class's lane. Returns the post-push total
    /// depth, or [`QueueFull`] (leaving the queue untouched) when the
    /// total capacity is already reached.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when `depth() == capacity()`.
    pub fn push(&self, priority: Priority, item: T) -> Result<usize, QueueFull> {
        let mut inner = self.lock();
        if inner.len >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        inner.lanes[priority.lane()].push_back(item);
        inner.len += 1;
        Ok(inner.len)
    }

    /// Drains the whole queue: every item, highest-priority lane first,
    /// FIFO within a lane. The queue is empty afterwards.
    #[must_use]
    pub fn pop_all(&self) -> Vec<T> {
        let mut inner = self.lock();
        let mut out = Vec::with_capacity(inner.len);
        for lane in &mut inner.lanes {
            out.extend(lane.drain(..));
        }
        inner.len = 0;
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Lanes<T>> {
        // A poisoned admission queue carries no cross-call invariant
        // worth dying for; take the data through poisoning.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_lane() {
        let q = BoundedQueue::new(8);
        for i in 0..4 {
            q.push(Priority::Batch, i).unwrap();
        }
        assert_eq!(q.pop_all(), vec![0, 1, 2, 3]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn higher_priority_lanes_drain_first() {
        let q = BoundedQueue::new(8);
        q.push(Priority::Background, "bg").unwrap();
        q.push(Priority::Batch, "batch1").unwrap();
        q.push(Priority::Interactive, "now").unwrap();
        q.push(Priority::Batch, "batch2").unwrap();
        assert_eq!(q.pop_all(), vec!["now", "batch1", "batch2", "bg"]);
    }

    #[test]
    fn full_queue_rejects_with_its_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(Priority::Batch, 1).unwrap(), 1);
        assert_eq!(q.push(Priority::Interactive, 2).unwrap(), 2);
        let err = q.push(Priority::Interactive, 3).unwrap_err();
        assert_eq!(err, QueueFull { capacity: 2 });
        // The reject left the queue intact; draining frees capacity.
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop_all().len(), 2);
        assert!(q.push(Priority::Batch, 4).is_ok());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push(Priority::Batch, 1).is_ok());
        assert!(q.push(Priority::Batch, 2).is_err());
    }
}
