//! The scenario scheduler: queue → coalesce → batch → pool → cache.
//!
//! [`ScenarioService`] is the serving brain. Producers [`submit`] into
//! the bounded admission queue (getting an explicit
//! [`Admission::Enqueued`] or [`Admission::Rejected`] — never a block,
//! never unbounded growth); a [`drain`] then serves everything queued:
//!
//! 1. **resolve** — requests whose canonical key is resident in the
//!    LRU result cache are answered immediately;
//! 2. **coalesce** — remaining requests are deduplicated by key, so N
//!    identical in-flight requests cost exactly one engine run;
//! 3. **batch** — distinct scenarios are grouped by engine shape
//!    (circulation size, worker budget) and served by one shared
//!    [`Simulator`] per shape, so they reuse one lookup-space fit and
//!    one warm optimizer-setting cache;
//! 4. **dispatch** — batches execute on the `h2p-exec` scoped pool
//!    (`dispatch_workers` lanes across scenarios; each scenario uses
//!    its own requested engine worker budget inside);
//! 5. **cache** — fresh outcomes are inserted into the result cache
//!    for future drains.
//!
//! # Determinism & transparency
//!
//! Every response is bit-identical to what a direct
//! [`Simulator::run`] / [`run_with_faults`] call with the same inputs
//! would return, cached or uncached, at any worker count: the engine
//! itself is deterministic across worker counts (DESIGN.md §8), the
//! canonical key names every result-determining input, and the cache
//! only ever replays values computed by that same engine
//! (`tests/serve_transparency.rs` pins all of it).
//!
//! [`submit`]: ScenarioService::submit
//! [`drain`]: ScenarioService::drain
//! [`run_with_faults`]: Simulator::run_with_faults

use crate::cache::{ResultCache, ResultCacheStats};
use crate::queue::{BoundedQueue, QueueFull};
use crate::request::{ScenarioKey, ScenarioRequest};
use h2p_core::simulation::{SimulationConfig, SimulationResult, Simulator};
use h2p_core::H2pError;
use h2p_faults::{FaultError, FaultLedger};
use h2p_server::ServerModel;
use h2p_telemetry::{BucketSpec, Counter, Event, Histogram, Registry};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Journal event name for refused admissions.
pub const SERVE_REJECTED_EVENT: &str = "serve_rejected";

/// A serving-layer failure attributed to one scenario.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The engine (or its construction) failed.
    Engine(H2pError),
    /// The request's fault plan failed hazard validation.
    Faults(FaultError),
    /// The request's placement run failed (see
    /// [`ScenarioRequest::materialize`]).
    Placement(h2p_jobs::JobsError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Faults(e) => write!(f, "fault plan error: {e}"),
            ServeError::Placement(e) => write!(f, "placement error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<H2pError> for ServeError {
    fn from(e: H2pError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<FaultError> for ServeError {
    fn from(e: FaultError) -> Self {
        ServeError::Faults(e)
    }
}

impl From<h2p_jobs::JobsError> for ServeError {
    fn from(e: h2p_jobs::JobsError) -> Self {
        ServeError::Placement(e)
    }
}

/// Admission ticket: the identity of one accepted request. Tickets are
/// unique per service and strictly increasing in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TicketId(pub u64);

impl fmt::Display for TicketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Why a request was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The bounded queue is at capacity; retry after a drain.
    QueueFull {
        /// The configured queue capacity that was reached.
        capacity: usize,
    },
    /// The request failed validation (out-of-domain or over the
    /// service's admission limits).
    InvalidRequest {
        /// Human-readable detail.
        reason: String,
    },
    /// The submitting tenant already has its full quota of requests
    /// queued; retry after a drain. Distinct from [`QueueFull`]: the
    /// shared queue may have room, but this tenant's share of it is
    /// spent.
    ///
    /// [`QueueFull`]: RejectReason::QueueFull
    QuotaExceeded {
        /// The tenant that hit its quota.
        tenant: String,
        /// The configured per-tenant limit on queued requests.
        limit: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::InvalidRequest { reason } => {
                write!(f, "invalid request: {reason}")
            }
            RejectReason::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant {tenant:?} quota exceeded (limit {limit} queued)")
            }
        }
    }
}

/// The outcome of a [`submit`](ScenarioService::submit): explicit
/// backpressure, never a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Accepted; the ticket will be answered by a future
    /// [`drain`](ScenarioService::drain).
    Enqueued {
        /// The accepted request's ticket.
        ticket: TicketId,
        /// Its canonical scenario key.
        key: ScenarioKey,
        /// Queue depth right after this enqueue.
        depth: usize,
    },
    /// Refused, with a typed reason. Nothing was queued.
    Rejected {
        /// Why admission was refused.
        reason: RejectReason,
    },
}

/// A complete engine outcome: the simulated series, plus the fault
/// ledger when the scenario was fault-injected.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The simulation result (bit-identical to a direct engine call).
    pub result: SimulationResult,
    /// Degradation accounting (`Some` iff the request named a fault
    /// seed).
    pub ledger: Option<FaultLedger>,
}

/// How one ticket's bits were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// This ticket triggered the engine run.
    Computed,
    /// Deduplicated onto another in-flight ticket's run this drain.
    Coalesced,
    /// Replayed from the LRU result cache.
    Cached,
}

impl Provenance {
    /// The wire spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Provenance::Computed => "computed",
            Provenance::Coalesced => "coalesced",
            Provenance::Cached => "cached",
        }
    }
}

/// A successfully served scenario.
#[derive(Debug, Clone)]
pub struct ServedScenario {
    /// The outcome (shared — coalesced tickets alias one output).
    pub output: Arc<RunOutput>,
    /// How this ticket's bits were obtained.
    pub provenance: Provenance,
}

/// One drained ticket's response.
#[derive(Debug, Clone)]
pub struct TicketResponse {
    /// The ticket being answered.
    pub ticket: TicketId,
    /// Its canonical scenario key.
    pub key: ScenarioKey,
    /// The outcome, or the failure attributed to this scenario.
    pub served: Result<ServedScenario, ServeError>,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total admission-queue capacity (across priority lanes).
    pub queue_capacity: usize,
    /// LRU result-cache capacity, in outcomes.
    pub cache_capacity: usize,
    /// Pool lanes used to dispatch *distinct scenarios* of one drain
    /// in parallel (each scenario still uses its own requested engine
    /// worker budget internally).
    pub dispatch_workers: NonZeroUsize,
    /// Admission limit on `trace.servers`.
    pub max_servers: usize,
    /// Admission limit on `trace.steps`.
    pub max_steps: usize,
    /// Admission limit on a request's engine worker budget.
    pub max_workers: usize,
    /// Per-tenant admission quota: the most requests one tenant may
    /// have queued at once (`None` = unlimited). The quota bounds each
    /// tenant's *share of the admission queue*, so one chatty tenant
    /// cannot starve the others out of the shared capacity; it frees
    /// up as drains answer the tenant's tickets. Unattributed requests
    /// (`tenant: None`) are never quota-limited. A limit of zero
    /// rejects every attributed request.
    pub tenant_quota: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 256,
            cache_capacity: 128,
            dispatch_workers: h2p_exec::worker_count(),
            max_servers: 4096,
            max_steps: 8192,
            max_workers: 64,
            tenant_quota: None,
        }
    }
}

/// Always-on service statistics (see [`ScenarioService::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeStats {
    /// Requests presented to [`submit`](ScenarioService::submit).
    pub submitted: u64,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused because the queue was full.
    pub rejected_full: u64,
    /// Requests refused by validation.
    pub rejected_invalid: u64,
    /// Requests refused because their tenant hit its admission quota.
    pub quota_rejected: u64,
    /// Tickets answered by another in-flight ticket's run.
    pub coalesced: u64,
    /// Engine batches executed (distinct engine shapes across drains).
    pub batches: u64,
    /// Engine runs actually executed by the service.
    pub runs_executed: u64,
    /// Engines (lookup-space fits) constructed.
    pub engine_builds: u64,
    /// Drains performed.
    pub drains: u64,
    /// Tickets answered.
    pub completed: u64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Result-cache statistics.
    pub cache: ResultCacheStats,
}

/// Always-live counters (plain atomics; registered with the telemetry
/// registry on attach, mirroring the engine's `SettingCache`).
#[derive(Debug)]
struct ServeCounters {
    submitted: Counter,
    admitted: Counter,
    rejected_full: Counter,
    rejected_invalid: Counter,
    quota_rejected: Counter,
    coalesced: Counter,
    batches: Counter,
    runs_executed: Counter,
    engine_builds: Counter,
    drains: Counter,
    completed: Counter,
}

impl ServeCounters {
    fn new() -> Self {
        ServeCounters {
            submitted: Counter::new(),
            admitted: Counter::new(),
            rejected_full: Counter::new(),
            rejected_invalid: Counter::new(),
            quota_rejected: Counter::new(),
            coalesced: Counter::new(),
            batches: Counter::new(),
            runs_executed: Counter::new(),
            engine_builds: Counter::new(),
            drains: Counter::new(),
            completed: Counter::new(),
        }
    }

    fn handles(&self) -> [(&'static str, &Counter); 11] {
        [
            ("serve.submitted", &self.submitted),
            ("serve.admitted", &self.admitted),
            ("serve.rejected_full", &self.rejected_full),
            ("serve.rejected_invalid", &self.rejected_invalid),
            ("serve.quota_rejected", &self.quota_rejected),
            ("serve.coalesced", &self.coalesced),
            ("serve.batches", &self.batches),
            ("serve.runs_executed", &self.runs_executed),
            ("serve.engine_builds", &self.engine_builds),
            ("serve.drains", &self.drains),
            ("serve.completed", &self.completed),
        ]
    }
}

/// Telemetry handles resolved once per attachment.
#[derive(Debug)]
struct ServeTelemetry {
    registry: Registry,
    wait: Histogram,
    service: Histogram,
    depth: Histogram,
}

impl ServeTelemetry {
    fn disabled() -> Self {
        ServeTelemetry {
            registry: Registry::disabled(),
            wait: Histogram::disabled(),
            service: Histogram::disabled(),
            depth: Histogram::disabled(),
        }
    }

    fn from_registry(registry: &Registry) -> Self {
        if !registry.is_enabled() {
            return ServeTelemetry::disabled();
        }
        let durations = BucketSpec::duration_default();
        let depth_spec = BucketSpec::exponential(1, 12).unwrap_or_else(|_| durations.clone());
        let hist = |name: &str, spec: &BucketSpec| {
            registry
                .histogram(name, spec)
                .unwrap_or_else(|_| Histogram::disabled())
        };
        ServeTelemetry {
            registry: registry.clone(),
            wait: hist("serve.wait_nanos", &durations),
            service: hist("serve.service_nanos", &durations),
            depth: hist("serve.queue_depth", &depth_spec),
        }
    }
}

/// One queued request with its admission bookkeeping.
#[derive(Debug)]
struct Job {
    ticket: TicketId,
    request: ScenarioRequest,
    key: ScenarioKey,
    tenant: Option<String>,
    enqueued_nanos: u64,
}

/// Engines are shared by shape: two scenarios with the same
/// circulation size and worker budget run on one `Simulator`, sharing
/// its lookup-space fit and warm optimizer-setting cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EngineKey {
    servers_per_circulation: usize,
    workers: usize,
}

/// A deduplicated unit of work: one distinct scenario and every ticket
/// riding on it this drain.
struct PendingGroup {
    key: ScenarioKey,
    request: ScenarioRequest,
    tickets: Vec<TicketId>,
}

/// The batching, backpressured scenario service (see module docs).
#[derive(Debug)]
pub struct ScenarioService {
    config: ServiceConfig,
    queue: BoundedQueue<Job>,
    cache: Mutex<ResultCache<Arc<RunOutput>>>,
    engines: Mutex<HashMap<EngineKey, Arc<Simulator>>>,
    next_ticket: AtomicU64,
    /// Serializes drains; submits stay concurrent with a running
    /// drain (they land in the next one).
    drain_gate: Mutex<()>,
    /// Queued-request count per attributed tenant, for admission
    /// quotas. Held across the queue push in `submit` so a quota check
    /// and the admission it authorizes cannot interleave with another
    /// submitter's (no over-admission race).
    tenants: Mutex<BTreeMap<String, usize>>,
    counters: ServeCounters,
    telemetry: ServeTelemetry,
}

impl ScenarioService {
    /// A service with the given tuning, telemetry detached.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        ScenarioService {
            queue: BoundedQueue::new(config.queue_capacity),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            engines: Mutex::new(HashMap::new()),
            next_ticket: AtomicU64::new(0),
            drain_gate: Mutex::new(()),
            tenants: Mutex::new(BTreeMap::new()),
            counters: ServeCounters::new(),
            telemetry: ServeTelemetry::disabled(),
            config,
        }
    }

    /// A service with default tuning.
    #[must_use]
    pub fn with_defaults() -> Self {
        ScenarioService::new(ServiceConfig::default())
    }

    /// Attaches a telemetry registry (builder style; attach before
    /// first use). Queue-depth, wait and service-time histograms, all
    /// serve counters, result-cache counters, admission-rejection
    /// journal events, and the underlying engines' own telemetry
    /// (`engine.runs`, pool and setting-cache counters) all become
    /// visible through `registry`. Responses are bit-identical with or
    /// without telemetry attached.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.telemetry = ServeTelemetry::from_registry(registry);
        for (name, counter) in self.counters.handles() {
            registry.register_counter(name, counter);
        }
        for (name, counter) in lock(&self.cache).counters() {
            registry.register_counter(name, counter);
        }
        self
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The attached registry ([`Registry::disabled`] when detached).
    #[must_use]
    pub fn telemetry_registry(&self) -> &Registry {
        &self.telemetry.registry
    }

    /// Always-on statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.counters.submitted.get(),
            admitted: self.counters.admitted.get(),
            rejected_full: self.counters.rejected_full.get(),
            rejected_invalid: self.counters.rejected_invalid.get(),
            quota_rejected: self.counters.quota_rejected.get(),
            coalesced: self.counters.coalesced.get(),
            batches: self.counters.batches.get(),
            runs_executed: self.counters.runs_executed.get(),
            engine_builds: self.counters.engine_builds.get(),
            drains: self.counters.drains.get(),
            completed: self.counters.completed.get(),
            queue_depth: self.queue.depth(),
            queue_capacity: self.queue.capacity(),
            cache: lock(&self.cache).stats(),
        }
    }

    /// Submits one request: validation, then bounded admission.
    /// Never blocks and never grows memory past the queue bound —
    /// pressure surfaces as [`Admission::Rejected`], which is also
    /// counted (`serve.rejected_*`) and journaled
    /// ([`SERVE_REJECTED_EVENT`]).
    pub fn submit(&self, request: ScenarioRequest) -> Admission {
        self.counters.submitted.incr();
        if let Err(reason) = self.validate(&request) {
            self.counters.rejected_invalid.incr();
            self.telemetry.registry.record_event(
                Event::new(SERVE_REJECTED_EVENT)
                    .with("reason", "invalid_request")
                    .with("detail", reason.as_str()),
            );
            return Admission::Rejected {
                reason: RejectReason::InvalidRequest { reason },
            };
        }
        let key = request.key();
        let ticket = TicketId(self.next_ticket.fetch_add(1, Ordering::Relaxed));
        let priority = request.priority;
        let tenant = request.tenant.clone();
        let job = Job {
            ticket,
            request,
            key: key.clone(),
            tenant: tenant.clone(),
            enqueued_nanos: self.telemetry.registry.now_nanos(),
        };
        // The tenants lock is held across the queue push so the quota
        // check and the admission it authorizes are one atomic step —
        // two racing submitters cannot both pass a last-slot check.
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        if let (Some(limit), Some(name)) = (self.config.tenant_quota, tenant.as_deref()) {
            let queued = tenants.get(name).copied().unwrap_or(0);
            if queued >= limit {
                drop(tenants);
                self.counters.quota_rejected.incr();
                self.telemetry.registry.record_event(
                    Event::new(SERVE_REJECTED_EVENT)
                        .with("reason", "quota_exceeded")
                        .with("tenant", name)
                        .with("limit", limit as u64),
                );
                return Admission::Rejected {
                    reason: RejectReason::QuotaExceeded {
                        tenant: name.to_owned(),
                        limit,
                    },
                };
            }
        }
        match self.queue.push(priority, job) {
            Ok(depth) => {
                if let Some(name) = tenant {
                    *tenants.entry(name).or_insert(0) += 1;
                }
                drop(tenants);
                self.counters.admitted.incr();
                self.telemetry.depth.record(depth as u64);
                Admission::Enqueued { ticket, key, depth }
            }
            Err(QueueFull { capacity }) => {
                drop(tenants);
                self.counters.rejected_full.incr();
                self.telemetry.registry.record_event(
                    Event::new(SERVE_REJECTED_EVENT)
                        .with("reason", "queue_full")
                        .with("capacity", capacity as u64)
                        .with("key", key.to_string()),
                );
                Admission::Rejected {
                    reason: RejectReason::QueueFull { capacity },
                }
            }
        }
    }

    /// Serves everything queued (see the module docs for the
    /// pipeline). Responses come back sorted by ticket. Drains are
    /// serialized with each other; concurrent submits land in the
    /// next drain.
    #[must_use]
    pub fn drain(&self) -> Vec<TicketResponse> {
        let _gate = self
            .drain_gate
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let jobs = self.queue.pop_all();
        if jobs.is_empty() {
            return Vec::new();
        }
        // Popped jobs no longer occupy their tenant's quota slots.
        {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            for job in &jobs {
                if let Some(name) = &job.tenant {
                    if let Some(count) = tenants.get_mut(name) {
                        *count = count.saturating_sub(1);
                        if *count == 0 {
                            tenants.remove(name);
                        }
                    }
                }
            }
        }
        self.counters.drains.incr();
        let drain_start = self.telemetry.registry.now_nanos();
        for job in &jobs {
            self.telemetry
                .wait
                .record(drain_start.saturating_sub(job.enqueued_nanos));
        }

        // 1+2. Resolve against the result cache and coalesce
        // duplicates, in pop (priority, then FIFO) order.
        let mut responses = Vec::with_capacity(jobs.len());
        let mut groups: Vec<PendingGroup> = Vec::new();
        let mut group_of: HashMap<ScenarioKey, usize> = HashMap::new();
        {
            let mut cache = lock(&self.cache);
            for job in jobs {
                if let Some(index) = group_of.get(&job.key) {
                    self.counters.coalesced.incr();
                    groups[*index].tickets.push(job.ticket);
                    continue;
                }
                if let Some(hit) = cache.get(&job.key) {
                    responses.push(TicketResponse {
                        ticket: job.ticket,
                        key: job.key,
                        served: Ok(ServedScenario {
                            output: hit,
                            provenance: Provenance::Cached,
                        }),
                    });
                    continue;
                }
                group_of.insert(job.key.clone(), groups.len());
                groups.push(PendingGroup {
                    key: job.key,
                    request: job.request,
                    tickets: vec![job.ticket],
                });
            }
        }

        // 3. Batch by engine shape: one shared simulator per shape.
        // Construction failures stay attached to their groups and are
        // reported per ticket in stage 5.
        let mut shapes: std::collections::HashSet<EngineKey> = std::collections::HashSet::new();
        let work: Vec<(PendingGroup, Result<Arc<Simulator>, H2pError>)> = {
            let mut engines = self.engines.lock().unwrap_or_else(PoisonError::into_inner);
            groups
                .into_iter()
                .map(|group| {
                    let shape = EngineKey {
                        servers_per_circulation: group.request.servers_per_circulation,
                        workers: group.request.workers.get(),
                    };
                    shapes.insert(shape);
                    let engine = match engines.get(&shape) {
                        Some(engine) => Ok(engine.clone()),
                        None => self.build_engine(&group.request).map(|engine| {
                            let engine = Arc::new(engine);
                            engines.insert(shape, engine.clone());
                            self.counters.engine_builds.incr();
                            engine
                        }),
                    };
                    (group, engine)
                })
                .collect()
        };
        self.counters.batches.add(shapes.len() as u64);

        // 4. Dispatch distinct scenarios across the h2p-exec pool.
        let outcomes =
            h2p_exec::par_map(self.config.dispatch_workers, &work, |_, (group, engine)| {
                let t0 = self.telemetry.registry.now_nanos();
                let outcome = match engine {
                    Ok(engine) => self.execute(engine, group).map(Arc::new),
                    Err(e) => Err(ServeError::Engine(e.clone())),
                };
                self.telemetry
                    .service
                    .record(self.telemetry.registry.now_nanos().saturating_sub(t0));
                outcome
            });

        // 5. Fill the cache and answer every ticket of every group.
        let mut cache = lock(&self.cache);
        for ((group, _), outcome) in work.into_iter().zip(outcomes) {
            if let Ok(output) = &outcome {
                cache.insert(group.key.clone(), output.clone());
                self.counters.runs_executed.incr();
            }
            for (i, ticket) in group.tickets.into_iter().enumerate() {
                responses.push(TicketResponse {
                    ticket,
                    key: group.key.clone(),
                    served: outcome.clone().map(|output| ServedScenario {
                        output,
                        provenance: if i == 0 {
                            Provenance::Computed
                        } else {
                            Provenance::Coalesced
                        },
                    }),
                });
            }
        }
        drop(cache);

        responses.sort_by_key(|r| r.ticket);
        self.counters.completed.add(responses.len() as u64);
        responses
    }

    /// Validation behind [`Admission::Rejected`] /
    /// [`RejectReason::InvalidRequest`].
    fn validate(&self, request: &ScenarioRequest) -> Result<(), String> {
        if request.trace.servers == 0 {
            return Err("trace.servers must be >= 1".to_owned());
        }
        if request.trace.servers > self.config.max_servers {
            return Err(format!(
                "trace.servers {} exceeds admission limit {}",
                request.trace.servers, self.config.max_servers
            ));
        }
        if request.trace.steps == 0 {
            return Err("trace.steps must be >= 1".to_owned());
        }
        if request.trace.steps > self.config.max_steps {
            return Err(format!(
                "trace.steps {} exceeds admission limit {}",
                request.trace.steps, self.config.max_steps
            ));
        }
        if request.servers_per_circulation == 0 {
            return Err("servers_per_circulation must be >= 1".to_owned());
        }
        if request.workers.get() > self.config.max_workers {
            return Err(format!(
                "workers {} exceeds admission limit {}",
                request.workers, self.config.max_workers
            ));
        }
        request.policy.validate()
    }

    /// Builds the engine a request's shape is served by: the paper
    /// simulator with the requested circulation size and worker
    /// budget. This construction *is* the serving contract the
    /// transparency tests compare against.
    fn build_engine(&self, request: &ScenarioRequest) -> Result<Simulator, H2pError> {
        let mut config = SimulationConfig::paper_default();
        config.servers_per_circulation = request.servers_per_circulation;
        Ok(Simulator::new(&ServerModel::paper_default(), config)?
            .with_workers(request.workers)
            .with_telemetry(&self.telemetry.registry))
    }

    /// Runs one distinct scenario on its shared engine.
    fn execute(&self, engine: &Simulator, group: &PendingGroup) -> Result<RunOutput, ServeError> {
        let cluster = group.request.materialize(engine)?;
        let policy = group.request.policy.build();
        match group.request.fault_plan(&cluster) {
            None => {
                let result = engine.run(&cluster, policy.as_dyn())?;
                Ok(RunOutput {
                    result,
                    ledger: None,
                })
            }
            Some(plan) => {
                let faulted = engine.run_with_faults(&cluster, policy.as_dyn(), &plan?)?;
                Ok(RunOutput {
                    result: faulted.result,
                    ledger: Some(faulted.ledger),
                })
            }
        }
    }
}

/// Cache locks never carry cross-call invariants worth dying for.
fn lock<V>(mutex: &Mutex<ResultCache<V>>) -> MutexGuard<'_, ResultCache<V>> {
    // h2p-lint: allow(L10): generic poison-tolerant helper; every call site carries the manifest order
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}
