//! Process-level regression tests for the `h2p-served` daemon's I/O
//! contract: EOF triggers a final drain (queued work is never
//! stranded), a closed downstream pipe (EPIPE-equivalent) is a quiet
//! exit-0 shutdown rather than a panic, and admission flags reach the
//! service.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

fn daemon(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_h2p-served"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn h2p-served")
}

const RUN_LINE: &str =
    r#"{"cmd":"run","trace":"common","seed":3,"servers":20,"steps":2,"circulation":20}"#;

#[test]
fn eof_final_drain_answers_queued_work() {
    let mut child = daemon(&[]);
    {
        let stdin = child.stdin.as_mut().unwrap();
        // Two distinct runs, queued but never explicitly drained.
        writeln!(stdin, "{RUN_LINE}").unwrap();
        writeln!(
            stdin,
            r#"{{"cmd":"run","trace":"common","seed":4,"servers":20,"steps":2,"circulation":20}}"#
        )
        .unwrap();
    }
    drop(child.stdin.take()); // EOF
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success(), "exit: {:?}", output.status);
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"event\":\"enqueued\""))
            .count(),
        2,
        "both runs admitted: {stdout}"
    );
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"event\":\"result\""))
            .count(),
        2,
        "EOF drained both queued tickets: {stdout}"
    );
    assert!(
        lines
            .last()
            .is_some_and(|l| l.contains("\"event\":\"bye\"") && l.contains("\"served\":2")),
        "bye line accounts for the final drain: {stdout}"
    );
}

#[test]
fn closed_stdout_pipe_exits_zero_without_panic() {
    let mut child = daemon(&[]);
    // Read the first admission line so we know the daemon is live,
    // then close our end of its stdout — the EPIPE-equivalent.
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "{RUN_LINE}").unwrap();
    }
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    assert!(first.contains("\"event\":\"enqueued\""), "{first}");
    drop(reader);

    // Keep talking into the void until the daemon notices its stdout
    // is gone and exits (writes on our side may fail once it does —
    // that's the expected shutdown, not a test failure).
    {
        let stdin = child.stdin.as_mut().unwrap();
        for _ in 0..64 {
            if writeln!(stdin, "{{\"cmd\":\"stats\"}}").is_err() {
                break;
            }
        }
    }
    drop(child.stdin.take());
    let status = child.wait().unwrap();
    assert!(status.success(), "broken pipe must exit 0, got {status:?}");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        !stderr.contains("panic"),
        "no panic on closed stdout: {stderr}"
    );
    assert!(
        !stderr.contains("stdout write failed"),
        "broken pipe is a quiet shutdown, not a diagnostic: {stderr}"
    );
}

#[test]
fn tenant_quota_flag_reaches_admission() {
    let mut child = daemon(&["--tenant-quota", "1"]);
    {
        let stdin = child.stdin.as_mut().unwrap();
        for seed in [5, 6] {
            writeln!(
                stdin,
                r#"{{"cmd":"run","trace":"common","seed":{seed},"servers":20,"steps":2,"circulation":20,"tenant":"acme"}}"#
            )
            .unwrap();
        }
    }
    drop(child.stdin.take());
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success(), "exit: {:?}", output.status);
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[0].contains("\"event\":\"enqueued\""),
        "first request fits the quota: {stdout}"
    );
    assert!(
        lines[1].contains("\"event\":\"rejected\"") && lines[1].contains("quota exceeded"),
        "second request trips the quota: {stdout}"
    );
}
