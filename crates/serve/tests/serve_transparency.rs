//! The serving invariant, pinned: a scenario served through
//! `h2p-serve` returns **bit-identical** results to a direct engine
//! call with the same inputs — across every trace kind, worker count,
//! and cache temperature — duplicate in-flight requests coalesce onto
//! one engine run, and backpressure is typed, counted, and journaled.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use h2p_core::simulation::{SimulationConfig, SimulationResult, Simulator};
use h2p_sched::LoadBalance;
use h2p_serve::{
    Admission, PolicyKind, Priority, Provenance, RejectReason, ScenarioRequest, ScenarioService,
    ServiceConfig, TraceSpec, SERVE_REJECTED_EVENT,
};
use h2p_server::ServerModel;
use h2p_telemetry::Registry;
use h2p_workload::TraceKind;
use std::num::NonZeroUsize;

const CIRC: usize = 40;

fn request(kind: TraceKind, workers: usize) -> ScenarioRequest {
    let mut req = ScenarioRequest::new(
        TraceSpec {
            kind,
            seed: 7,
            servers: 80,
            steps: 12,
        },
        PolicyKind::LoadBalance,
    );
    req.workers = NonZeroUsize::new(workers).unwrap();
    req.servers_per_circulation = CIRC;
    req
}

/// The serving contract's reference implementation: the paper
/// simulator with the request's circulation size and worker budget,
/// run directly.
fn direct_engine(workers: usize) -> Simulator {
    let mut config = SimulationConfig::paper_default();
    config.servers_per_circulation = CIRC;
    Simulator::new(&ServerModel::paper_default(), config)
        .unwrap()
        .with_workers(NonZeroUsize::new(workers).unwrap())
}

fn assert_bit_identical(served: &SimulationResult, direct: &SimulationResult, label: &str) {
    assert_eq!(served.policy(), direct.policy(), "{label}: policy");
    assert_eq!(served.servers(), direct.servers(), "{label}: servers");
    assert_eq!(
        served.steps().len(),
        direct.steps().len(),
        "{label}: step count"
    );
    for (i, (a, b)) in served.steps().iter().zip(direct.steps()).enumerate() {
        assert_eq!(a, b, "{label}: step {i} diverged");
    }
}

#[test]
fn served_results_are_bit_identical_to_direct_runs() {
    // All trace kinds × {1, 2, 5} workers × {cold cache, warm cache}.
    let service = ScenarioService::with_defaults();
    for kind in TraceKind::all() {
        for workers in [1usize, 2, 5] {
            let req = request(kind, workers);
            let direct = direct_engine(workers)
                .run(&req.trace.generate(), &LoadBalance)
                .unwrap();

            // Cold: first sight of this scenario computes it.
            assert!(matches!(
                service.submit(req.clone()),
                Admission::Enqueued { .. }
            ));
            let cold = service.drain();
            assert_eq!(cold.len(), 1);
            let served = cold[0].served.as_ref().unwrap();
            assert_eq!(served.provenance, Provenance::Computed);
            assert_bit_identical(
                &served.output.result,
                &direct,
                &format!("{kind}/{workers}w/cold"),
            );

            // Warm: the second sight replays from the result cache.
            assert!(matches!(
                service.submit(req.clone()),
                Admission::Enqueued { .. }
            ));
            let warm = service.drain();
            assert_eq!(warm.len(), 1);
            let cached = warm[0].served.as_ref().unwrap();
            assert_eq!(cached.provenance, Provenance::Cached);
            assert_bit_identical(
                &cached.output.result,
                &direct,
                &format!("{kind}/{workers}w/warm"),
            );
        }
    }
    let stats = service.stats();
    // 9 distinct scenarios: each computed once, replayed once.
    assert_eq!(stats.runs_executed, 9);
    assert_eq!(stats.cache.hits, 9);
}

#[test]
fn faulted_scenarios_are_bit_identical_and_carry_the_ledger() {
    let mut req = request(TraceKind::Irregular, 2);
    req.fault_seed = Some(11);

    let cluster = req.trace.generate();
    let plan = req.fault_plan(&cluster).unwrap().unwrap();
    let direct = direct_engine(2)
        .run_with_faults(&cluster, &LoadBalance, &plan)
        .unwrap();

    let service = ScenarioService::with_defaults();
    assert!(matches!(service.submit(req), Admission::Enqueued { .. }));
    let responses = service.drain();
    assert_eq!(responses.len(), 1);
    let served = responses[0].served.as_ref().unwrap();
    assert_bit_identical(&served.output.result, &direct.result, "faulted");
    let ledger = served.output.ledger.as_ref().expect("fault ledger");
    assert_eq!(
        ledger.faulted_circulation_steps(),
        direct.ledger.faulted_circulation_steps(),
        "ledger must ride along unchanged"
    );
    assert_eq!(
        ledger.faulted_harvest().value(),
        direct.ledger.faulted_harvest().value(),
        "harvest accounting must ride along unchanged"
    );
}

#[test]
fn duplicate_in_flight_requests_coalesce_onto_one_engine_run() {
    let registry = Registry::new();
    let service = ScenarioService::with_defaults().with_telemetry(&registry);
    let req = request(TraceKind::Common, 2);

    // Four concurrent submitters, same scenario (different priorities —
    // priority is not part of the identity).
    std::thread::scope(|scope| {
        for priority in [
            Priority::Interactive,
            Priority::Batch,
            Priority::Batch,
            Priority::Background,
        ] {
            let mut dup = req.clone();
            dup.priority = priority;
            let service = &service;
            scope.spawn(move || {
                assert!(matches!(service.submit(dup), Admission::Enqueued { .. }));
            });
        }
    });

    let responses = service.drain();
    assert_eq!(responses.len(), 4);
    let engine_runs = registry
        .counters()
        .into_iter()
        .find(|(name, _)| name == "engine.runs")
        .map(|(_, v)| v)
        .unwrap_or(0);
    assert_eq!(engine_runs, 1, "four duplicates must cost one engine run");

    let stats = service.stats();
    assert_eq!(stats.runs_executed, 1);
    assert_eq!(stats.coalesced, 3);
    let computed = responses
        .iter()
        .filter(|r| r.served.as_ref().unwrap().provenance == Provenance::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one ticket carries the run");
    // All four see the same bits (the same shared outcome).
    let reference = &responses[0].served.as_ref().unwrap().output.result;
    for r in &responses[1..] {
        assert_bit_identical(
            &r.served.as_ref().unwrap().output.result,
            reference,
            "coalesced",
        );
    }
}

#[test]
fn full_queue_rejects_with_typed_reason_counter_and_journal_event() {
    let registry = Registry::new();
    let config = ServiceConfig {
        queue_capacity: 2,
        ..ServiceConfig::default()
    };
    let service = ScenarioService::new(config).with_telemetry(&registry);

    let mut admitted = 0;
    let mut rejected = 0;
    for seed in 0..5u64 {
        let mut req = request(TraceKind::Common, 1);
        req.trace.seed = seed;
        req.trace.steps = 2;
        match service.submit(req) {
            Admission::Enqueued { .. } => admitted += 1,
            Admission::Rejected {
                reason: RejectReason::QueueFull { capacity },
            } => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Admission::Rejected { reason } => panic!("unexpected reason: {reason}"),
        }
    }
    assert_eq!((admitted, rejected), (2, 3), "bounded means bounded");
    assert_eq!(service.stats().queue_depth, 2, "queue never grew past cap");
    assert_eq!(service.stats().rejected_full, 3);

    // Rejections are visible in the named counters and the journal.
    let counters: std::collections::BTreeMap<String, u64> =
        registry.counters().into_iter().collect();
    assert_eq!(counters["serve.rejected_full"], 3);
    let events = registry.journal_events();
    let rejections: Vec<_> = events
        .iter()
        .filter(|e| e.name == SERVE_REJECTED_EVENT)
        .collect();
    assert_eq!(rejections.len(), 3);
    assert_eq!(
        rejections[0].field("reason").and_then(|v| v.as_str()),
        Some("queue_full")
    );

    // Draining frees capacity; service recovers.
    let responses = service.drain();
    assert_eq!(responses.len(), 2);
    assert!(matches!(
        service.submit(request(TraceKind::Common, 1)),
        Admission::Enqueued { .. }
    ));
}

#[test]
fn invalid_requests_reject_with_detail_instead_of_panicking() {
    let service = ScenarioService::with_defaults();
    let mut zero_servers = request(TraceKind::Common, 1);
    zero_servers.trace.servers = 0;
    let mut nan_budget = request(TraceKind::Common, 1);
    nan_budget.policy = PolicyKind::BoundedMigration { max_step: f64::NAN };
    let mut over_budget = request(TraceKind::Common, 1);
    over_budget.workers = NonZeroUsize::new(10_000).unwrap();
    for (req, needle) in [
        (zero_servers, "trace.servers"),
        (nan_budget, "max_step"),
        (over_budget, "workers"),
    ] {
        match service.submit(req) {
            Admission::Rejected {
                reason: RejectReason::InvalidRequest { reason },
            } => assert!(reason.contains(needle), "{reason}"),
            other => panic!("expected invalid-request rejection, got {other:?}"),
        }
    }
    assert_eq!(service.stats().rejected_invalid, 3);
    assert_eq!(service.stats().queue_depth, 0);
}

#[test]
fn mixed_batches_share_engines_by_shape_without_cross_talk() {
    // Two scenarios per engine shape, two shapes — plus a duplicate.
    // Everything lands in one drain; every response must match its own
    // direct run.
    let registry = Registry::new();
    let service = ScenarioService::with_defaults().with_telemetry(&registry);
    let a1 = request(TraceKind::Common, 1);
    let mut a2 = request(TraceKind::Drastic, 1);
    a2.trace.seed = 9;
    let b1 = request(TraceKind::Irregular, 2);
    for req in [a1.clone(), a2.clone(), b1.clone(), a1.clone()] {
        assert!(matches!(service.submit(req), Admission::Enqueued { .. }));
    }
    let responses = service.drain();
    assert_eq!(responses.len(), 4);
    for (req, workers) in [(&a1, 1), (&a2, 1), (&b1, 2)] {
        let direct = direct_engine(workers)
            .run(&req.trace.generate(), &LoadBalance)
            .unwrap();
        let served = responses
            .iter()
            .find(|r| {
                r.key == req.key() && {
                    r.served.as_ref().unwrap().provenance != Provenance::Coalesced
                }
            })
            .unwrap();
        assert_bit_identical(
            &served.served.as_ref().unwrap().output.result,
            &direct,
            req.key().as_str(),
        );
    }
    let stats = service.stats();
    assert_eq!(stats.runs_executed, 3, "three distinct scenarios");
    assert_eq!(stats.coalesced, 1);
    assert_eq!(stats.engine_builds, 2, "one engine per shape");
    assert_eq!(stats.batches, 2);
}

#[test]
fn responses_come_back_in_ticket_order_with_priority_execution() {
    let service = ScenarioService::with_defaults();
    let mut low = request(TraceKind::Common, 1);
    low.priority = Priority::Background;
    low.trace.steps = 2;
    let mut high = request(TraceKind::Drastic, 1);
    high.priority = Priority::Interactive;
    high.trace.steps = 2;
    let Admission::Enqueued { ticket: t0, .. } = service.submit(low) else {
        panic!("admit low");
    };
    let Admission::Enqueued { ticket: t1, .. } = service.submit(high) else {
        panic!("admit high");
    };
    let responses = service.drain();
    assert_eq!(responses.len(), 2);
    // Responses are ticket-sorted regardless of execution order.
    assert_eq!(responses[0].ticket, t0);
    assert_eq!(responses[1].ticket, t1);
}

#[test]
fn tenant_quota_rejections_are_distinct_from_queue_full() {
    let registry = Registry::new();
    let config = ServiceConfig {
        queue_capacity: 8,
        tenant_quota: Some(2),
        ..ServiceConfig::default()
    };
    let service = ScenarioService::new(config).with_telemetry(&registry);
    let cheap = |seed: u64, tenant: Option<&str>| {
        let mut req = request(TraceKind::Common, 1);
        req.trace.seed = seed;
        req.trace.steps = 2;
        req.tenant = tenant.map(str::to_owned);
        req
    };

    // One tenant's quota bounds only that tenant.
    for seed in 0..2 {
        assert!(matches!(
            service.submit(cheap(seed, Some("acme"))),
            Admission::Enqueued { .. }
        ));
    }
    for seed in 2..4 {
        match service.submit(cheap(seed, Some("acme"))) {
            Admission::Rejected {
                reason: RejectReason::QuotaExceeded { tenant, limit },
            } => {
                assert_eq!(tenant, "acme");
                assert_eq!(limit, 2);
            }
            other => panic!("expected quota rejection, got {other:?}"),
        }
    }
    // A different tenant and unattributed requests are unaffected.
    for seed in 4..6 {
        assert!(matches!(
            service.submit(cheap(seed, Some("zen"))),
            Admission::Enqueued { .. }
        ));
    }
    for seed in 6..10 {
        assert!(matches!(
            service.submit(cheap(seed, None)),
            Admission::Enqueued { .. }
        ));
    }
    // The queue is now at capacity (2 + 2 + 4 = 8): an attributed
    // request over quota still reports the quota, while an
    // unattributed one reports the full queue — two typed paths.
    assert!(matches!(
        service.submit(cheap(10, Some("acme"))),
        Admission::Rejected {
            reason: RejectReason::QuotaExceeded { .. }
        }
    ));
    assert!(matches!(
        service.submit(cheap(11, None)),
        Admission::Rejected {
            reason: RejectReason::QueueFull { capacity: 8 }
        }
    ));

    let stats = service.stats();
    assert_eq!(stats.quota_rejected, 3);
    assert_eq!(stats.rejected_full, 1);
    let counters: std::collections::BTreeMap<String, u64> =
        registry.counters().into_iter().collect();
    assert_eq!(counters["serve.quota_rejected"], 3);
    assert_eq!(counters["serve.rejected_full"], 1);
    let events = registry.journal_events();
    let quota_events: Vec<_> = events
        .iter()
        .filter(|e| e.name == SERVE_REJECTED_EVENT)
        .filter(|e| e.field("reason").and_then(|v| v.as_str()) == Some("quota_exceeded"))
        .collect();
    assert_eq!(quota_events.len(), 3);
    assert_eq!(
        quota_events[0].field("tenant").and_then(|v| v.as_str()),
        Some("acme")
    );
    assert_eq!(
        quota_events[0].field("limit").and_then(|v| v.as_f64()),
        Some(2.0)
    );

    // Draining releases quota slots; the tenant can submit again.
    let responses = service.drain();
    assert_eq!(responses.len(), 8);
    assert!(matches!(
        service.submit(cheap(12, Some("acme"))),
        Admission::Enqueued { .. }
    ));
}

#[test]
fn zero_quota_rejects_every_attributed_request_but_not_unattributed() {
    let service = ScenarioService::new(ServiceConfig {
        tenant_quota: Some(0),
        ..ServiceConfig::default()
    });
    let mut attributed = request(TraceKind::Common, 1);
    attributed.trace.steps = 2;
    attributed.tenant = Some("acme".to_owned());
    assert!(matches!(
        service.submit(attributed),
        Admission::Rejected {
            reason: RejectReason::QuotaExceeded { limit: 0, .. }
        }
    ));
    let mut unattributed = request(TraceKind::Common, 1);
    unattributed.trace.steps = 2;
    assert!(matches!(
        service.submit(unattributed),
        Admission::Enqueued { .. }
    ));
}

#[test]
fn served_placement_scenarios_are_bit_identical_to_direct_materialization() {
    // A placement request is served exactly like any other scenario:
    // the service materializes the placement-synthesized trace through
    // `ScenarioRequest::materialize` and runs it on the shared engine,
    // so a direct call through the same seam must match to the bit.
    let service = ScenarioService::with_defaults();
    for placement in h2p_jobs::PlacementPolicyKind::ALL {
        let mut req = request(TraceKind::Common, 1);
        req.trace.servers = 20;
        req.placement = Some(placement);

        let engine = direct_engine(1);
        let cluster = req.materialize(&engine).unwrap();
        let direct = engine.run(&cluster, &LoadBalance).unwrap();

        assert!(matches!(
            service.submit(req.clone()),
            Admission::Enqueued { .. }
        ));
        let responses = service.drain();
        assert_eq!(responses.len(), 1);
        let served = responses[0].served.as_ref().unwrap();
        assert_bit_identical(
            &served.output.result,
            &direct,
            &format!("placement/{placement}"),
        );

        // Placement is result-determining: the same request without it
        // must not share a key (and so must not coalesce).
        let mut plain = req.clone();
        plain.placement = None;
        assert_ne!(req.key(), plain.key());
    }
}
