//! Property-based tests of the server models.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_server::{LookupSpace, ServerModel, ThrottleController};
use h2p_units::{Celsius, DegC, LitersPerHour, Utilization};
use proptest::prelude::*;
use std::sync::OnceLock;

fn model() -> &'static ServerModel {
    static MODEL: OnceLock<ServerModel> = OnceLock::new();
    MODEL.get_or_init(ServerModel::paper_default)
}

fn space() -> &'static LookupSpace {
    static SPACE: OnceLock<LookupSpace> = OnceLock::new();
    SPACE.get_or_init(|| LookupSpace::paper_grid(model()).expect("paper grid builds"))
}

proptest! {
    #[test]
    fn die_monotone_in_inlet(
        u in 0.0..=1.0f64,
        flow in 15.0..300.0f64,
        t1 in 15.0..60.0f64,
        t2 in 15.0..60.0f64,
    ) {
        let uu = Utilization::new(u).unwrap();
        let f = LitersPerHour::new(flow);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let a = model().operating_point(uu, f, Celsius::new(lo)).unwrap();
        let b = model().operating_point(uu, f, Celsius::new(hi)).unwrap();
        prop_assert!(b.cpu_temperature >= a.cpu_temperature - DegC::new(1e-9));
        prop_assert!(b.outlet >= a.outlet - DegC::new(1e-9));
    }

    #[test]
    fn die_monotone_in_flow_at_load(
        u in 0.2..=1.0f64,
        f1 in 15.0..300.0f64,
        f2 in 15.0..300.0f64,
        inlet in 20.0..55.0f64,
    ) {
        // More flow can only cool the die (at fixed inlet and load).
        let uu = Utilization::new(u).unwrap();
        let t = Celsius::new(inlet);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let slow = model().operating_point(uu, LitersPerHour::new(lo), t).unwrap();
        let fast = model().operating_point(uu, LitersPerHour::new(hi), t).unwrap();
        prop_assert!(fast.cpu_temperature <= slow.cpu_temperature + DegC::new(1e-9));
    }

    #[test]
    fn lookup_monotone_along_inlet_axis(
        u in 0.01..0.99f64,
        flow in 25.0..245.0f64,
        t1 in 21.0..59.0f64,
        t2 in 21.0..59.0f64,
    ) {
        let uu = Utilization::new(u).unwrap();
        let f = LitersPerHour::new(flow);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let a = space().cpu_temperature(uu, f, Celsius::new(lo)).unwrap();
        let b = space().cpu_temperature(uu, f, Celsius::new(hi)).unwrap();
        prop_assert!(b >= a - DegC::new(1e-6));
    }

    #[test]
    fn max_safe_inlet_is_safe_and_monotone(
        u in 0.0..=1.0f64,
        flow in 20.0..250.0f64,
        t_safe in 55.0..75.0f64,
    ) {
        let uu = Utilization::new(u).unwrap();
        let f = LitersPerHour::new(flow);
        let ts = Celsius::new(t_safe);
        let inlet = model().max_safe_inlet(uu, f, ts).unwrap();
        let op = model().operating_point(uu, f, inlet).unwrap();
        prop_assert!(op.cpu_temperature <= ts + DegC::new(1e-4));
        // A laxer target admits at least as warm an inlet.
        let lax = model().max_safe_inlet(uu, f, ts + DegC::new(3.0)).unwrap();
        prop_assert!(lax >= inlet - DegC::new(1e-6));
    }

    #[test]
    fn throttle_admits_no_more_than_requested_and_is_safe(
        requested in 0.0..=1.0f64,
        flow in 20.0..250.0f64,
        inlet in 30.0..60.0f64,
    ) {
        let controller = ThrottleController::at_max_operating();
        let req = Utilization::new(requested).unwrap();
        let f = LitersPerHour::new(flow);
        let t = Celsius::new(inlet);
        let d = controller.throttle(model(), req, f, t).unwrap();
        prop_assert!(d.admitted <= req);
        prop_assert!((0.0..=1.0).contains(&d.performance_loss));
        let op = model().operating_point(d.admitted, f, t).unwrap();
        // Whatever was admitted respects the hard limit, unless even
        // idle exceeds it (impossible for these input ranges).
        prop_assert!(
            op.cpu_temperature <= controller.limit() + DegC::new(1e-4)
                || d.admitted == Utilization::IDLE
        );
        prop_assert_eq!(d.throttled, d.admitted < req);
    }

    #[test]
    fn frequency_monotone(u1 in 0.0..=1.0f64, u2 in 0.0..=1.0f64) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let f = LitersPerHour::new(50.0);
        let t = Celsius::new(40.0);
        let a = model().operating_point(Utilization::new(lo).unwrap(), f, t).unwrap();
        let b = model().operating_point(Utilization::new(hi).unwrap(), f, t).unwrap();
        prop_assert!(b.frequency >= a.frequency);
        prop_assert!(b.cpu_power >= a.cpu_power);
    }
}
