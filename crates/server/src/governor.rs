//! The powersave frequency governor (paper Fig. 10).
//!
//! The prototype runs the CPU with the Linux `powersave` governor. The
//! paper observes that clock frequency climbs quickly with load but
//! "starts to increase slower [beyond 50 % utilization] and finally
//! settles down at about 2.5 GHz". This module reproduces that
//! piecewise-linear saturation for the E5-2650 V3 (1.2 GHz minimum,
//! 2.3 GHz base clock).

use crate::ServerError;
use h2p_units::{Gigahertz, Utilization};

/// A powersave-style frequency governor: fast linear ramp to the knee,
/// slow ramp to the cap afterwards.
///
/// ```
/// use h2p_server::PowersaveGovernor;
/// use h2p_units::Utilization;
///
/// let gov = PowersaveGovernor::paper_default();
/// let half = gov.frequency(Utilization::new(0.5)?);
/// let full = gov.frequency(Utilization::FULL);
/// assert!(half.value() > 2.2 && half.value() < 2.4);
/// assert!((full.value() - 2.5).abs() < 1e-12);
/// # Ok::<(), h2p_units::UtilizationRangeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowersaveGovernor {
    /// Frequency at zero load.
    min: Gigahertz,
    /// Frequency reached at the knee utilization.
    knee_frequency: Gigahertz,
    /// Frequency approached at full load.
    cap: Gigahertz,
    /// Utilization at which the ramp slows (0.5 in Fig. 10).
    knee_utilization: Utilization,
}

impl PowersaveGovernor {
    /// Creates a governor.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::NonPositiveParameter`] unless
    /// `0 < min ≤ knee_frequency ≤ cap` and the knee utilization is
    /// strictly between 0 and 1.
    pub fn new(
        min: Gigahertz,
        knee_frequency: Gigahertz,
        cap: Gigahertz,
        knee_utilization: Utilization,
    ) -> Result<Self, ServerError> {
        if !(min.value() > 0.0) {
            return Err(ServerError::NonPositiveParameter {
                name: "min",
                value: min.value(),
            });
        }
        if knee_frequency < min || cap < knee_frequency {
            return Err(ServerError::NonPositiveParameter {
                name: "frequency ordering (min <= knee <= cap)",
                value: knee_frequency.value(),
            });
        }
        let ku = knee_utilization.value();
        if !(ku > 0.0 && ku < 1.0) {
            return Err(ServerError::NonPositiveParameter {
                name: "knee_utilization",
                value: ku,
            });
        }
        Ok(PowersaveGovernor {
            min,
            knee_frequency,
            cap,
            knee_utilization,
        })
    }

    /// Fig. 10's governor for the E5-2650 V3: 1.2 GHz idle, 2.3 GHz at
    /// the 50 % knee, settling at 2.5 GHz.
    #[must_use]
    pub fn paper_default() -> Self {
        PowersaveGovernor {
            min: Gigahertz::new(1.2),
            knee_frequency: Gigahertz::new(2.3),
            cap: Gigahertz::new(2.5),
            // h2p-lint: allow(L2): 0.5 is inside [0, 1]
            knee_utilization: Utilization::new(0.5).expect("constant in range"),
        }
    }

    /// Steady-state clock frequency at a utilization.
    #[must_use]
    pub fn frequency(&self, u: Utilization) -> Gigahertz {
        let ku = self.knee_utilization.value();
        let x = u.value();
        if x <= ku {
            self.min + (self.knee_frequency - self.min) * (x / ku)
        } else {
            self.knee_frequency + (self.cap - self.knee_frequency) * ((x - ku) / (1.0 - ku))
        }
    }

    /// The frequency cap (the "settles down at about 2.5 GHz" value).
    #[must_use]
    pub fn cap(&self) -> Gigahertz {
        self.cap
    }
}

impl Default for PowersaveGovernor {
    fn default() -> Self {
        PowersaveGovernor::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov() -> PowersaveGovernor {
        PowersaveGovernor::paper_default()
    }

    fn u(x: f64) -> Utilization {
        Utilization::new(x).unwrap()
    }

    #[test]
    fn endpoints() {
        assert_eq!(gov().frequency(Utilization::IDLE), Gigahertz::new(1.2));
        assert_eq!(gov().frequency(Utilization::FULL), Gigahertz::new(2.5));
    }

    #[test]
    fn monotone_nondecreasing() {
        let g = gov();
        let mut prev = Gigahertz::zero();
        for i in 0..=100 {
            let f = g.frequency(u(i as f64 / 100.0));
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn ramp_slows_past_knee() {
        // Fig. 10: the pre-knee slope must exceed the post-knee slope.
        let g = gov();
        let pre = (g.frequency(u(0.4)) - g.frequency(u(0.3))).value();
        let post = (g.frequency(u(0.8)) - g.frequency(u(0.7))).value();
        assert!(pre > 2.0 * post, "pre {pre} post {post}");
    }

    #[test]
    fn knee_continuity() {
        let g = gov();
        let below = g.frequency(u(0.499_999));
        let above = g.frequency(u(0.500_001));
        assert!((below - above).value().abs() < 1e-4);
    }

    #[test]
    fn validation() {
        // cap below knee frequency rejected.
        assert!(PowersaveGovernor::new(
            Gigahertz::new(1.2),
            Gigahertz::new(2.3),
            Gigahertz::new(2.0),
            u(0.5)
        )
        .is_err());
        // degenerate knee utilization rejected.
        assert!(PowersaveGovernor::new(
            Gigahertz::new(1.2),
            Gigahertz::new(2.3),
            Gigahertz::new(2.5),
            Utilization::IDLE
        )
        .is_err());
    }
}
