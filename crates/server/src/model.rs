//! Coupled steady-state server model (Figs. 9-11).
//!
//! For a cooling setting `(u, f, T_in)` the die temperature, package
//! power and coolant outlet temperature are mutually coupled:
//!
//! * the die sits above the local coolant temperature by `P·R(f)`
//!   (cold-plate conduction/convection),
//! * the coolant warms along the plate by `P/(ṁ·c_p)` (we take the die
//!   to see the mid-plate temperature, `T_in + ΔT/2`),
//! * the package power grows with die temperature through leakage,
//!   `P = P₀(u) + γ·(T_die − T_ref)`.
//!
//! The three relations are linear, so the fixed point has the closed
//! form implemented in [`ServerModel::operating_point`]:
//!
//! ```text
//! S = R(f) + m/2,  m = 1/(ṁ·c_p)
//! P = (P₀(u) + γ·(T_in − T_ref)) / (1 − γ·S)
//! T_die = T_in + P·S,   T_out = T_in + P·m
//! ```
//!
//! The `1/(1 − γ·S)` amplification is exactly the paper's k slope of
//! Fig. 11 — steeper at low flow, k → 1 at high flow.

use crate::governor::PowersaveGovernor;
use crate::power::CpuPowerModel;
use crate::ServerError;
use h2p_thermal::ColdPlate;
use h2p_units::{Celsius, DegC, Gigahertz, LitersPerHour, Utilization, Watts};

/// Static properties of the modelled CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Maximum operating temperature (78.9 °C for the E5-2650 V3).
    pub max_operating: Celsius,
    /// Thermal design power.
    pub tdp: Watts,
}

impl CpuSpec {
    /// The Intel Xeon E5-2650 V3.
    #[must_use]
    pub fn e5_2650_v3() -> Self {
        CpuSpec {
            max_operating: Celsius::new(78.9),
            tdp: Watts::new(105.0),
        }
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        CpuSpec::e5_2650_v3()
    }
}

/// The resolved steady state of a server under a cooling setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Die temperature.
    pub cpu_temperature: Celsius,
    /// Package power (dynamic + leakage).
    pub cpu_power: Watts,
    /// Coolant outlet temperature (= the TEG module's warm inlet,
    /// paper Eq. 8).
    pub outlet: Celsius,
    /// Outlet-minus-inlet coolant difference (Fig. 9's ΔT_out−in).
    pub delta_out_in: DegC,
    /// Clock frequency under the powersave governor.
    pub frequency: Gigahertz,
    /// Whether the die exceeds the CPU's maximum operating temperature.
    pub over_limit: bool,
}

/// A complete water-cooled server model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerModel {
    power: CpuPowerModel,
    plate: ColdPlate,
    governor: PowersaveGovernor,
    spec: CpuSpec,
}

impl ServerModel {
    /// Creates a server model from its parts.
    #[must_use]
    pub fn new(
        power: CpuPowerModel,
        plate: ColdPlate,
        governor: PowersaveGovernor,
        spec: CpuSpec,
    ) -> Self {
        ServerModel {
            power,
            plate,
            governor,
            spec,
        }
    }

    /// The calibrated prototype server: E5-2650 V3, paper power fit,
    /// paper cold plate, powersave governor.
    #[must_use]
    pub fn paper_default() -> Self {
        ServerModel {
            power: CpuPowerModel::paper_e5_2650_v3(),
            plate: ColdPlate::paper_default(),
            governor: PowersaveGovernor::paper_default(),
            spec: CpuSpec::e5_2650_v3(),
        }
    }

    /// The CPU specification.
    #[must_use]
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// The power model.
    #[must_use]
    pub fn power_model(&self) -> &CpuPowerModel {
        &self.power
    }

    /// The cold plate.
    #[must_use]
    pub fn cold_plate(&self) -> &ColdPlate {
        &self.plate
    }

    /// Solves the coupled steady state for `(u, f, T_in)`.
    ///
    /// # Errors
    ///
    /// * [`ServerError::NonPositiveParameter`] for a non-positive flow.
    /// * [`ServerError::ThermalRunaway`] if the leakage loop gain
    ///   `γ·(R + m/2)` reaches 1 (cannot happen for the calibrated
    ///   parameters, but custom models are validated).
    pub fn operating_point(
        &self,
        u: Utilization,
        flow: LitersPerHour,
        inlet: Celsius,
    ) -> Result<OperatingPoint, ServerError> {
        let resistance =
            self.plate
                .resistance(flow)
                .map_err(|_| ServerError::NonPositiveParameter {
                    name: "flow",
                    value: flow.value(),
                })?;
        let m = 1.0 / flow.mass_flow().capacity_rate();
        let coupling = resistance + 0.5 * m;
        let gamma = self.power.leakage_per_kelvin();
        let loop_gain = gamma * coupling;
        if loop_gain >= 1.0 {
            return Err(ServerError::ThermalRunaway { loop_gain });
        }
        let p0 = self.power.base_power(u).value();
        let t_ref = self.power.leakage_reference().value();
        let p = ((p0 + gamma * (inlet.value() - t_ref)) / (1.0 - loop_gain))
            .max(self.power.minimum_power().value());
        let die = inlet + DegC::new(p * coupling);
        let outlet = inlet + DegC::new(p * m);
        Ok(OperatingPoint {
            cpu_temperature: die,
            cpu_power: Watts::new(p),
            outlet,
            delta_out_in: outlet - inlet,
            frequency: self.governor.frequency(u),
            over_limit: die > self.spec.max_operating,
        })
    }

    /// The Fig. 11 slope `k = dT_die/dT_in = 1/(1 − γ·(R(f) + m/2))` at
    /// a flow rate.
    ///
    /// # Errors
    ///
    /// As for [`operating_point`](Self::operating_point).
    pub fn coolant_slope(&self, flow: LitersPerHour) -> Result<f64, ServerError> {
        let a = self.operating_point(Utilization::FULL, flow, Celsius::new(30.0))?;
        let b = self.operating_point(Utilization::FULL, flow, Celsius::new(40.0))?;
        Ok((b.cpu_temperature - a.cpu_temperature).value() / 10.0)
    }

    /// The warmest inlet temperature keeping the die at or below
    /// `t_safe` for a given load and flow, found by bisection (the
    /// quantity the cooling controller pushes toward its ceiling).
    ///
    /// # Errors
    ///
    /// As for [`operating_point`](Self::operating_point).
    pub fn max_safe_inlet(
        &self,
        u: Utilization,
        flow: LitersPerHour,
        t_safe: Celsius,
    ) -> Result<Celsius, ServerError> {
        let mut lo = 5.0_f64;
        let mut hi = t_safe.value(); // die is always >= inlet
        let die_at = |inlet: f64| -> Result<f64, ServerError> {
            Ok(self
                .operating_point(u, flow, Celsius::new(inlet))?
                .cpu_temperature
                .value())
        };
        if die_at(lo)? > t_safe.value() {
            // Even very cold water cannot hold t_safe; report the floor.
            return Ok(Celsius::new(lo));
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if die_at(mid)? <= t_safe.value() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Celsius::new(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> ServerModel {
        ServerModel::paper_default()
    }

    fn u(x: f64) -> Utilization {
        Utilization::new(x).unwrap()
    }

    #[test]
    fn warm_water_is_safe_at_full_load() {
        // Paper Sec. II-B: 40-45 °C water keeps a 100 %-loaded E5-2650 V3
        // below its 78.9 °C limit.
        let s = server();
        for inlet in [40.0, 42.5, 45.0] {
            let op = s
                .operating_point(
                    Utilization::FULL,
                    LitersPerHour::new(20.0),
                    Celsius::new(inlet),
                )
                .unwrap();
            assert!(!op.over_limit, "inlet {inlet}: die {}", op.cpu_temperature);
        }
    }

    #[test]
    fn hot_water_at_high_load_exceeds_limit() {
        // Paper Sec. II-B: above 50 °C water and >70 % utilization the
        // CPU exceeds its maximum operating temperature.
        let s = server();
        let op = s
            .operating_point(
                Utilization::FULL,
                LitersPerHour::new(20.0),
                Celsius::new(52.0),
            )
            .unwrap();
        assert!(op.over_limit, "die {}", op.cpu_temperature);
    }

    #[test]
    fn fig11_slope_band() {
        // k in [1, 1.3], larger at lower flow.
        let s = server();
        let k20 = s.coolant_slope(LitersPerHour::new(20.0)).unwrap();
        let k250 = s.coolant_slope(LitersPerHour::new(250.0)).unwrap();
        assert!(k20 > k250, "slope must grow as flow shrinks");
        assert!((1.0..=1.35).contains(&k20), "k20 = {k20}");
        assert!((1.0..=1.15).contains(&k250), "k250 = {k250}");
    }

    #[test]
    fn fig11_linear_in_coolant_temperature() {
        let s = server();
        let f = LitersPerHour::new(100.0);
        let t = |inlet: f64| {
            s.operating_point(Utilization::FULL, f, Celsius::new(inlet))
                .unwrap()
                .cpu_temperature
                .value()
        };
        let d1 = t(35.0) - t(30.0);
        let d2 = t(45.0) - t(40.0);
        assert!((d1 - d2).abs() < 1e-9, "linearity violated");
    }

    #[test]
    fn fig9_outlet_delta_band() {
        // ΔT_out−in at 20 L/H across loads: ~0.4 °C idle to ~3.7 °C full —
        // matching the paper's 1-3.5 °C band over its measured loads.
        let s = server();
        let f = LitersPerHour::new(20.0);
        let d = |x: f64| {
            s.operating_point(u(x), f, Celsius::new(45.0))
                .unwrap()
                .delta_out_in
                .value()
        };
        assert!(d(0.0) > 0.15 && d(0.0) < 1.0, "d(0) = {}", d(0.0));
        assert!(d(0.2) > 0.8 && d(0.2) < 1.6, "d(0.2) = {}", d(0.2));
        assert!(d(1.0) > 3.0 && d(1.0) < 4.0);
        // Monotone in utilization.
        assert!(d(0.6) > d(0.3));
    }

    #[test]
    fn fig9_outlet_delta_insensitive_to_inlet() {
        // Paper: inlet temperature has little effect on ΔT_out−in (only
        // the weak leakage coupling).
        let s = server();
        let f = LitersPerHour::new(20.0);
        let d30 = s
            .operating_point(u(0.5), f, Celsius::new(30.0))
            .unwrap()
            .delta_out_in
            .value();
        let d45 = s
            .operating_point(u(0.5), f, Celsius::new(45.0))
            .unwrap()
            .delta_out_in
            .value();
        assert!((d45 - d30).abs() < 0.6, "d30 {d30} d45 {d45}");
    }

    #[test]
    fn outlet_delta_shrinks_with_flow() {
        let s = server();
        let d = |f: f64| {
            s.operating_point(u(0.5), LitersPerHour::new(f), Celsius::new(45.0))
                .unwrap()
                .delta_out_in
                .value()
        };
        assert!(d(20.0) > d(50.0));
        assert!(d(50.0) > d(200.0));
    }

    #[test]
    fn die_above_outlet_above_inlet() {
        let s = server();
        let op = s
            .operating_point(u(0.4), LitersPerHour::new(50.0), Celsius::new(42.0))
            .unwrap();
        assert!(op.cpu_temperature > op.outlet);
        assert!(op.outlet > Celsius::new(42.0));
    }

    #[test]
    fn max_safe_inlet_is_tight() {
        let s = server();
        let f = LitersPerHour::new(60.0);
        let t_safe = Celsius::new(62.0);
        let inlet = s.max_safe_inlet(u(0.3), f, t_safe).unwrap();
        let op = s.operating_point(u(0.3), f, inlet).unwrap();
        assert!(op.cpu_temperature <= t_safe + DegC::new(1e-6));
        // 0.5 °C warmer water breaks the cap.
        let op_hot = s
            .operating_point(u(0.3), f, inlet + DegC::new(0.5))
            .unwrap();
        assert!(op_hot.cpu_temperature > t_safe);
    }

    #[test]
    fn max_safe_inlet_decreases_with_load() {
        let s = server();
        let f = LitersPerHour::new(60.0);
        let t_safe = Celsius::new(62.0);
        let lo = s.max_safe_inlet(u(0.1), f, t_safe).unwrap();
        let hi = s.max_safe_inlet(u(0.9), f, t_safe).unwrap();
        assert!(lo > hi);
    }

    #[test]
    fn low_utilization_admits_warm_inlet() {
        // The H2P operating point: at ~10-20 % load the safe inlet is in
        // the low 50s °C, yielding outlet ≈ 54-57 °C and ΔT ≈ 34-37 °C
        // over a 20 °C cold source — the regime that generates ≈ 4.2 W
        // from 12 TEGs (Fig. 14).
        let s = server();
        let inlet = s
            .max_safe_inlet(u(0.15), LitersPerHour::new(60.0), Celsius::new(62.0))
            .unwrap();
        assert!(
            inlet.value() > 50.0 && inlet.value() < 60.0,
            "inlet = {inlet}"
        );
    }

    #[test]
    fn frequency_reported() {
        let s = server();
        let op = s
            .operating_point(
                Utilization::FULL,
                LitersPerHour::new(20.0),
                Celsius::new(40.0),
            )
            .unwrap();
        assert!((op.frequency.value() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn runaway_guard_triggers_for_pathological_model() {
        let power = CpuPowerModel::new(109.71, 1.17, -7.83, 10.0, Celsius::new(60.0)).unwrap();
        let s = ServerModel::new(
            power,
            ColdPlate::paper_default(),
            PowersaveGovernor::paper_default(),
            CpuSpec::e5_2650_v3(),
        );
        let err = s
            .operating_point(
                Utilization::FULL,
                LitersPerHour::new(20.0),
                Celsius::new(40.0),
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::ThermalRunaway { .. }));
    }
}
