//! CPU power/thermal models and the measurement lookup space.
//!
//! This crate is the "virtual Xeon E5-2650 V3": it reproduces the
//! behaviours the paper measured on its prototype —
//!
//! * [`CpuPowerModel`] — package power versus utilization (Eq. 20),
//!   with the temperature-dependent leakage term that explains why
//!   CPU temperature rises *faster* than coolant temperature at low flow
//!   (the k ∈ [1, 1.3] slopes of Fig. 11);
//! * [`PowersaveGovernor`] — the clock behaviour of Fig. 10 (frequency
//!   settles at ≈ 2.5 GHz beyond 50 % load under the powersave
//!   governor);
//! * [`ServerModel`] — the coupled steady state of die temperature,
//!   package power and coolant outlet temperature for a cooling setting
//!   `(u, f, T_in)` (Figs. 9-11);
//! * [`LookupSpace`] — the 3-D discrete measurement space of Fig. 12
//!   with trilinear interpolation and the iso-temperature slicing that
//!   the cooling-setting optimizer (Sec. V-B) searches;
//! * [`throttle`] — the emergency software backstop: the largest load a
//!   cooling setting can safely admit (CoolProvision-style).
//!
//! # Examples
//!
//! ```
//! use h2p_server::ServerModel;
//! use h2p_units::{Celsius, LitersPerHour, Utilization};
//!
//! let server = ServerModel::paper_default();
//! let op = server.operating_point(
//!     Utilization::new(0.3)?,
//!     LitersPerHour::new(20.0),
//!     Celsius::new(45.0),
//! )?;
//! assert!(op.cpu_temperature > Celsius::new(45.0));
//! assert!(op.outlet > Celsius::new(45.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used as a deliberate NaN-rejecting validation idiom
// throughout (NaN fails the guard, unlike `x <= 0.0`).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

mod governor;
pub mod lookup;
mod model;
mod power;
pub mod throttle;

pub use governor::PowersaveGovernor;
pub use lookup::{CoolingSetting, LookupSpace, SpacePoint};
pub use model::{CpuSpec, OperatingPoint, ServerModel};
pub use power::CpuPowerModel;
pub use throttle::{ThrottleController, ThrottleDecision};

use core::fmt;

/// Errors from the server models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServerError {
    /// A parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The leakage feedback loop is unstable for this cooling setting
    /// (γ·R ≥ 1): the model rejects it instead of predicting thermal
    /// runaway temperatures.
    ThermalRunaway {
        /// The loop gain γ·(R + m/2) that reached or exceeded one.
        loop_gain: f64,
    },
    /// A lookup-grid axis had fewer than two samples or was unsorted.
    BadGridAxis {
        /// Which axis was malformed.
        axis: &'static str,
    },
    /// A query fell outside the lookup grid.
    OutOfGrid {
        /// Which axis was out of range.
        axis: &'static str,
        /// The query value.
        value: f64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::NonPositiveParameter { name, value } => {
                write!(f, "parameter {name} must be positive, got {value}")
            }
            ServerError::ThermalRunaway { loop_gain } => {
                write!(f, "leakage loop gain {loop_gain} >= 1: thermal runaway")
            }
            ServerError::BadGridAxis { axis } => {
                write!(f, "grid axis {axis} needs >= 2 sorted samples")
            }
            ServerError::OutOfGrid { axis, value } => {
                write!(f, "query {value} outside grid axis {axis}")
            }
        }
    }
}

impl std::error::Error for ServerError {}
