//! The 3-D measurement lookup space (paper Fig. 12-13).
//!
//! The paper samples CPU temperature over the discrete space
//! `(u, f, T_warm_in)` and argues that, since the underlying behaviour
//! is continuous and near-linear, the samples can be fitted into a
//! continuous look-up space "in practical use". [`LookupSpace`] is that
//! artifact: it is *built by running a measurement campaign* against a
//! [`ServerModel`] (the virtual prototype) and thereafter answers
//! queries by trilinear interpolation — downstream code never touches
//! the physics directly, mirroring how the paper's controller only ever
//! consults measured data.

use crate::model::ServerModel;
use crate::ServerError;
use h2p_units::{Celsius, LitersPerHour, Utilization};

/// A cooling setting `{f, T_warm_in}` — the knob pair the paper's
/// controller adjusts every interval (Sec. V-B1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingSetting {
    /// Per-server coolant flow.
    pub flow: LitersPerHour,
    /// Inlet (facility-supplied) coolant temperature.
    pub inlet: Celsius,
}

/// One sampled vertex of the lookup space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpacePoint {
    /// CPU utilization coordinate.
    pub utilization: Utilization,
    /// Flow coordinate.
    pub flow: LitersPerHour,
    /// Inlet-temperature coordinate.
    pub inlet: Celsius,
    /// Sampled die temperature.
    pub cpu_temperature: Celsius,
    /// Sampled coolant outlet temperature.
    pub outlet: Celsius,
}

/// The fitted continuous lookup space over `(u, f, T_in)`.
///
/// The space is immutable once built: every query method takes `&self`
/// and only reads the fitted sample arrays, so a single space is safely
/// shared by concurrent readers (`Sync` — asserted at compile time
/// below). The parallel simulation engine relies on this to let every
/// worker thread interpolate against one shared space without copies.
///
/// ```
/// use h2p_server::{LookupSpace, ServerModel};
/// use h2p_units::{Celsius, LitersPerHour, Utilization};
///
/// let space = LookupSpace::paper_grid(&ServerModel::paper_default())?;
/// let t = space.cpu_temperature(
///     Utilization::new(0.33)?,
///     LitersPerHour::new(73.0),
///     Celsius::new(47.2),
/// )?;
/// assert!(t > Celsius::new(47.2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LookupSpace {
    u_axis: Vec<f64>,
    f_axis: Vec<f64>,
    t_axis: Vec<f64>,
    cpu_temp: Vec<f64>,
    outlet: Vec<f64>,
}

impl LookupSpace {
    /// Runs a measurement campaign on `model` over the cartesian grid of
    /// the three axes and fits the lookup space.
    ///
    /// Axes must be strictly increasing with at least two samples each;
    /// utilizations are fractions in `\[0, 1\]`.
    ///
    /// # Errors
    ///
    /// * [`ServerError::BadGridAxis`] for a malformed axis.
    /// * Any error from [`ServerModel::operating_point`] at a vertex.
    pub fn build(
        model: &ServerModel,
        u_axis: Vec<f64>,
        f_axis: Vec<f64>,
        t_axis: Vec<f64>,
    ) -> Result<Self, ServerError> {
        for (name, axis) in [("u", &u_axis), ("f", &f_axis), ("t", &t_axis)] {
            if axis.len() < 2 || axis.windows(2).any(|w| w[0] >= w[1]) {
                return Err(ServerError::BadGridAxis { axis: name });
            }
        }
        // h2p-lint: allow(L2): axis length >= 2 checked above
        if u_axis[0] < 0.0 || *u_axis.last().expect("non-empty") > 1.0 {
            return Err(ServerError::BadGridAxis { axis: "u" });
        }
        let (nu, nf, nt) = (u_axis.len(), f_axis.len(), t_axis.len());
        let mut cpu_temp = Vec::with_capacity(nu * nf * nt);
        let mut outlet = Vec::with_capacity(nu * nf * nt);
        for &u in &u_axis {
            // h2p-lint: allow(L2): u-axis range-checked above
            let util = Utilization::new(u).expect("validated above");
            for &f in &f_axis {
                for &t in &t_axis {
                    let op = model.operating_point(util, LitersPerHour::new(f), Celsius::new(t))?;
                    cpu_temp.push(op.cpu_temperature.value());
                    outlet.push(op.outlet.value());
                }
            }
        }
        Ok(LookupSpace {
            u_axis,
            f_axis,
            t_axis,
            cpu_temp,
            outlet,
        })
    }

    /// The paper's measurement grid: utilization 0-100 % in 5 % steps,
    /// flow 20-250 L/H in 10 L/H steps, inlet 20-60 °C in 2 °C steps.
    ///
    /// # Errors
    ///
    /// Propagates [`build`](Self::build) failures.
    pub fn paper_grid(model: &ServerModel) -> Result<Self, ServerError> {
        let u_axis: Vec<f64> = (0..=20).map(|i| f64::from(i) / 20.0).collect();
        let f_axis: Vec<f64> = (0..=23).map(|i| 20.0 + 10.0 * f64::from(i)).collect();
        let t_axis: Vec<f64> = (0..=20).map(|i| 20.0 + 2.0 * f64::from(i)).collect();
        Self::build(model, u_axis, f_axis, t_axis)
    }

    /// Number of sampled vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cpu_temp.len()
    }

    /// Whether the space holds no samples (never true for a built space).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cpu_temp.is_empty()
    }

    /// The flow axis samples (L/H).
    #[must_use]
    pub fn flow_axis(&self) -> &[f64] {
        &self.f_axis
    }

    /// The inlet-temperature axis samples (°C).
    #[must_use]
    pub fn inlet_axis(&self) -> &[f64] {
        &self.t_axis
    }

    /// The utilization axis samples (fractions).
    #[must_use]
    pub fn utilization_axis(&self) -> &[f64] {
        &self.u_axis
    }

    /// Iterates over every sampled vertex (the discrete points of
    /// Fig. 12).
    pub fn points(&self) -> impl Iterator<Item = SpacePoint> + '_ {
        let nf = self.f_axis.len();
        let nt = self.t_axis.len();
        (0..self.len()).map(move |idx| {
            let iu = idx / (nf * nt);
            let rem = idx % (nf * nt);
            let ifl = rem / nt;
            let it = rem % nt;
            SpacePoint {
                utilization: Utilization::saturating(self.u_axis[iu]),
                flow: LitersPerHour::new(self.f_axis[ifl]),
                inlet: Celsius::new(self.t_axis[it]),
                cpu_temperature: Celsius::new(self.cpu_temp[idx]),
                outlet: Celsius::new(self.outlet[idx]),
            }
        })
    }

    fn index(&self, iu: usize, ifl: usize, it: usize) -> usize {
        (iu * self.f_axis.len() + ifl) * self.t_axis.len() + it
    }

    /// Finds the bracketing interval `[i, i+1]` of `x` on `axis`.
    fn bracket(axis: &[f64], x: f64, name: &'static str) -> Result<(usize, f64), ServerError> {
        let lo = axis[0];
        let hi = *axis.last().expect("validated non-empty"); // h2p-lint: allow(L2): axes validated at build
        if x < lo - 1e-9 || x > hi + 1e-9 {
            return Err(ServerError::OutOfGrid {
                axis: name,
                value: x,
            });
        }
        let x = x.clamp(lo, hi);
        let i = axis.partition_point(|&v| v <= x).saturating_sub(1);
        let i = i.min(axis.len() - 2);
        let frac = (x - axis[i]) / (axis[i + 1] - axis[i]);
        Ok((i, frac))
    }

    fn interpolate(
        &self,
        field: &[f64],
        u: Utilization,
        flow: LitersPerHour,
        inlet: Celsius,
    ) -> Result<f64, ServerError> {
        let (iu, fu) = Self::bracket(&self.u_axis, u.value(), "u")?;
        let (ifl, ff) = Self::bracket(&self.f_axis, flow.value(), "f")?;
        let (it, ft) = Self::bracket(&self.t_axis, inlet.value(), "t")?;
        let mut acc = 0.0;
        for (du, wu) in [(0, 1.0 - fu), (1, fu)] {
            for (df, wf) in [(0, 1.0 - ff), (1, ff)] {
                for (dt, wt) in [(0, 1.0 - ft), (1, ft)] {
                    let w = wu * wf * wt;
                    if w > 0.0 {
                        acc += w * field[self.index(iu + du, ifl + df, it + dt)];
                    }
                }
            }
        }
        Ok(acc)
    }

    /// Interpolated die temperature at `(u, f, T_in)`.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::OutOfGrid`] outside the sampled ranges.
    pub fn cpu_temperature(
        &self,
        u: Utilization,
        flow: LitersPerHour,
        inlet: Celsius,
    ) -> Result<Celsius, ServerError> {
        Ok(Celsius::new(self.interpolate(
            &self.cpu_temp,
            u,
            flow,
            inlet,
        )?))
    }

    /// Interpolated coolant outlet temperature at `(u, f, T_in)`.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::OutOfGrid`] outside the sampled ranges.
    pub fn outlet_temperature(
        &self,
        u: Utilization,
        flow: LitersPerHour,
        inlet: Celsius,
    ) -> Result<Celsius, ServerError> {
        Ok(Celsius::new(self.interpolate(
            &self.outlet,
            u,
            flow,
            inlet,
        )?))
    }

    /// The paper's Step 2 + intersection of Step 3 (Sec. V-B1): slice
    /// the space at the utilization plane `u` and return the cooling
    /// settings whose die temperature lies within `tolerance` of
    /// `t_safe` — the region `A = U ∩ X` of Fig. 13.
    ///
    /// Settings on the grid's `(f, T_in)` lattice are returned; callers
    /// pick among them (the optimizer maximizes TEG power).
    #[must_use]
    pub fn safe_settings(
        &self,
        u: Utilization,
        t_safe: Celsius,
        tolerance: h2p_units::DegC,
    ) -> Vec<CoolingSetting> {
        let mut out = Vec::new();
        for &f in &self.f_axis {
            for &t in &self.t_axis {
                let flow = LitersPerHour::new(f);
                let inlet = Celsius::new(t);
                if let Ok(die) = self.cpu_temperature(u, flow, inlet) {
                    if (die - t_safe).abs() <= tolerance {
                        out.push(CoolingSetting { flow, inlet });
                    }
                }
            }
        }
        out
    }
}

// Shared-read guarantee: the parallel simulation engine interpolates
// against one `&LookupSpace` from every worker thread.
#[allow(dead_code)]
fn _assert_lookup_space_is_sync() {
    fn is_sync<T: Sync>() {}
    is_sync::<LookupSpace>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_units::DegC;

    fn space() -> LookupSpace {
        LookupSpace::paper_grid(&ServerModel::paper_default()).unwrap()
    }

    fn u(x: f64) -> Utilization {
        Utilization::new(x).unwrap()
    }

    #[test]
    fn grid_size_matches_axes() {
        let s = space();
        assert_eq!(s.len(), 21 * 24 * 21);
        assert_eq!(s.points().count(), s.len());
        assert!(!s.is_empty());
    }

    #[test]
    fn vertex_queries_are_exact() {
        let s = space();
        let model = ServerModel::paper_default();
        // Check a handful of lattice vertices round-trip exactly.
        for (uu, ff, tt) in [(0.0, 20.0, 20.0), (0.5, 100.0, 40.0), (1.0, 250.0, 60.0)] {
            let from_space = s
                .cpu_temperature(u(uu), LitersPerHour::new(ff), Celsius::new(tt))
                .unwrap();
            let direct = model
                .operating_point(u(uu), LitersPerHour::new(ff), Celsius::new(tt))
                .unwrap()
                .cpu_temperature;
            assert!((from_space - direct).value().abs() < 1e-9);
        }
    }

    #[test]
    fn interpolation_error_is_small_off_grid() {
        // The underlying model is smooth; trilinear error on the paper
        // grid must stay well under a degree.
        let s = space();
        let model = ServerModel::paper_default();
        for (uu, ff, tt) in [
            (0.13, 37.0, 43.7),
            (0.42, 86.0, 51.3),
            (0.77, 143.0, 33.1),
            (0.94, 221.0, 57.9),
        ] {
            let approx = s
                .cpu_temperature(u(uu), LitersPerHour::new(ff), Celsius::new(tt))
                .unwrap()
                .value();
            let exact = model
                .operating_point(u(uu), LitersPerHour::new(ff), Celsius::new(tt))
                .unwrap()
                .cpu_temperature
                .value();
            assert!(
                (approx - exact).abs() < 0.5,
                "({uu}, {ff}, {tt}): {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn outlet_interpolation_tracks_model() {
        let s = space();
        let model = ServerModel::paper_default();
        let approx = s
            .outlet_temperature(u(0.3), LitersPerHour::new(55.0), Celsius::new(48.0))
            .unwrap()
            .value();
        let exact = model
            .operating_point(u(0.3), LitersPerHour::new(55.0), Celsius::new(48.0))
            .unwrap()
            .outlet
            .value();
        assert!((approx - exact).abs() < 0.3);
    }

    #[test]
    fn out_of_grid_rejected() {
        let s = space();
        assert!(matches!(
            s.cpu_temperature(u(0.5), LitersPerHour::new(10.0), Celsius::new(40.0)),
            Err(ServerError::OutOfGrid { axis: "f", .. })
        ));
        assert!(matches!(
            s.cpu_temperature(u(0.5), LitersPerHour::new(100.0), Celsius::new(70.0)),
            Err(ServerError::OutOfGrid { axis: "t", .. })
        ));
    }

    #[test]
    fn safe_settings_within_band() {
        let s = space();
        let t_safe = Celsius::new(62.0);
        let tol = DegC::new(1.0);
        let settings = s.safe_settings(u(0.2), t_safe, tol);
        assert!(!settings.is_empty());
        for cs in &settings {
            let die = s.cpu_temperature(u(0.2), cs.flow, cs.inlet).unwrap();
            assert!((die - t_safe).abs() <= tol + DegC::new(1e-9));
        }
    }

    #[test]
    fn fig13_low_util_slice_admits_warmer_inlets() {
        // The A_avg region (low utilization) reaches higher T_warm_in
        // than the A_max region (high utilization) — Fig. 13's key
        // visual.
        let s = space();
        let t_safe = Celsius::new(62.0);
        let tol = DegC::new(1.0);
        let hottest = |uu: f64| {
            s.safe_settings(u(uu), t_safe, tol)
                .iter()
                .map(|cs| cs.inlet)
                .fold(Celsius::new(0.0), Celsius::max)
        };
        assert!(hottest(0.2) > hottest(0.9));
    }

    #[test]
    fn bad_axes_rejected() {
        let model = ServerModel::paper_default();
        assert!(matches!(
            LookupSpace::build(&model, vec![0.0], vec![20.0, 30.0], vec![20.0, 30.0]),
            Err(ServerError::BadGridAxis { axis: "u" })
        ));
        assert!(matches!(
            LookupSpace::build(&model, vec![0.0, 1.0], vec![30.0, 20.0], vec![20.0, 30.0]),
            Err(ServerError::BadGridAxis { axis: "f" })
        ));
        assert!(matches!(
            LookupSpace::build(&model, vec![0.0, 1.5], vec![20.0, 30.0], vec![20.0, 30.0]),
            Err(ServerError::BadGridAxis { axis: "u" })
        ));
    }
}
