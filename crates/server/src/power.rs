//! CPU package power model (paper Eq. 20) with temperature-dependent
//! leakage.

use crate::ServerError;
use h2p_units::{Celsius, Utilization, Watts};

/// Package power of the Intel Xeon E5-2650 V3 under the powersave
/// governor.
///
/// The paper fits `P_CPU = 109.71·log(u + 1.17) − 7.83` (Eq. 20) with
/// RMSE < 5 W. Interpreted with `u ∈ \[0, 1\]` and a natural logarithm the
/// fit gives ≈ 9.4 W idle and ≈ 77 W at full load — the only reading
/// consistent with the part's 105 W TDP and with the paper's published
/// PRE numbers (see DESIGN.md §5).
///
/// On top of the utilization fit, a linearized leakage term
/// `γ·(T − T_ref)` captures the temperature dependence of static power.
/// The paper never states γ directly, but its Fig. 11 slopes k ∈ [1, 1.3]
/// pin it down: `k = 1/(1 − γ·(R + m/2))` (DESIGN.md §5), and γ = 0.7 W/K
/// reproduces the observed range over f ∈ \[20, 250\] L/H.
///
/// ```
/// use h2p_server::CpuPowerModel;
/// use h2p_units::Utilization;
///
/// let model = CpuPowerModel::paper_e5_2650_v3();
/// let idle = model.base_power(Utilization::IDLE);
/// let full = model.base_power(Utilization::FULL);
/// assert!(idle.value() > 8.0 && idle.value() < 11.0);
/// assert!(full.value() > 70.0 && full.value() < 85.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerModel {
    /// Logarithm coefficient (W).
    log_coefficient: f64,
    /// Shift inside the logarithm.
    log_shift: f64,
    /// Constant offset (W).
    offset: f64,
    /// Leakage sensitivity γ (W/K).
    leakage_per_kelvin: f64,
    /// Die temperature at which Eq. 20 was measured.
    leakage_reference: Celsius,
}

impl CpuPowerModel {
    /// Creates a power model.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::NonPositiveParameter`] if
    /// `log_coefficient`, `log_shift` or the leakage coefficient is not
    /// strictly positive (zero leakage is allowed).
    pub fn new(
        log_coefficient: f64,
        log_shift: f64,
        offset: f64,
        leakage_per_kelvin: f64,
        leakage_reference: Celsius,
    ) -> Result<Self, ServerError> {
        for (name, value) in [
            ("log_coefficient", log_coefficient),
            ("log_shift", log_shift),
        ] {
            if !(value > 0.0) {
                return Err(ServerError::NonPositiveParameter { name, value });
            }
        }
        if leakage_per_kelvin < 0.0 {
            return Err(ServerError::NonPositiveParameter {
                name: "leakage_per_kelvin",
                value: leakage_per_kelvin,
            });
        }
        Ok(CpuPowerModel {
            log_coefficient,
            log_shift,
            offset,
            leakage_per_kelvin,
            leakage_reference,
        })
    }

    /// The paper's Eq. 20 with the calibrated leakage feedback
    /// (γ = 0.7 W/K referenced to a 60 °C die).
    #[must_use]
    pub fn paper_e5_2650_v3() -> Self {
        CpuPowerModel {
            log_coefficient: 109.71,
            log_shift: 1.17,
            offset: -7.83,
            leakage_per_kelvin: 0.7,
            leakage_reference: Celsius::new(60.0),
        }
    }

    /// Utilization-driven package power at the reference die temperature
    /// (Eq. 20).
    #[must_use]
    pub fn base_power(&self, u: Utilization) -> Watts {
        let p = self.log_coefficient * (u.value() + self.log_shift).ln() + self.offset;
        Watts::new(p.max(0.0))
    }

    /// Additional (possibly negative) leakage power at die temperature
    /// `t` relative to the reference.
    #[must_use]
    pub fn leakage_delta(&self, t: Celsius) -> Watts {
        Watts::new(self.leakage_per_kelvin * (t - self.leakage_reference).value())
    }

    /// Total package power at a utilization and die temperature.
    #[must_use]
    pub fn power(&self, u: Utilization, die: Celsius) -> Watts {
        self.base_power(u) + self.leakage_delta(die)
    }

    /// The leakage sensitivity γ in W/K.
    #[must_use]
    pub fn leakage_per_kelvin(&self) -> f64 {
        self.leakage_per_kelvin
    }

    /// The reference die temperature of the utilization fit.
    #[must_use]
    pub fn leakage_reference(&self) -> Celsius {
        self.leakage_reference
    }

    /// Floor on total package power: clocks, uncore and VRs never let
    /// the package draw less than this, however cool the die runs.
    #[must_use]
    pub fn minimum_power(&self) -> Watts {
        Watts::new(5.0)
    }
}

impl Default for CpuPowerModel {
    fn default() -> Self {
        CpuPowerModel::paper_e5_2650_v3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CpuPowerModel {
        CpuPowerModel::paper_e5_2650_v3()
    }

    #[test]
    fn eq20_reference_points() {
        // Direct evaluation of the paper's fit at u in [0, 1].
        let m = model();
        let expect = |u: f64| 109.71 * (u + 1.17).ln() - 7.83;
        for u in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
            let p = m.base_power(Utilization::new(u).unwrap()).value();
            assert!((p - expect(u)).abs() < 1e-9, "u = {u}");
        }
    }

    #[test]
    fn power_is_monotone_and_concave_in_utilization() {
        let m = model();
        let mut prev_p = -1.0;
        let mut prev_gain = f64::INFINITY;
        for i in 0..=10 {
            let u = Utilization::new(i as f64 / 10.0).unwrap();
            let p = m.base_power(u).value();
            assert!(p > prev_p);
            if prev_p >= 0.0 {
                let gain = p - prev_p;
                assert!(gain < prev_gain, "log model must be concave");
                prev_gain = gain;
            }
            prev_p = p;
        }
    }

    #[test]
    fn tdp_consistency() {
        // Full-load package power must sit below the 105 W TDP even with
        // a hot 75 °C die.
        let m = model();
        let p = m.power(Utilization::FULL, Celsius::new(75.0));
        assert!(p.value() < 105.0, "p = {p}");
        assert!(p.value() > 70.0);
    }

    #[test]
    fn pre_consistency_band() {
        // Paper PRE ≈ 12-16 % at ≈ 4.2 W generated implies 26-33 W mean
        // CPU power; that corresponds to mean utilizations ~0.2-0.35.
        let m = model();
        let p20 = m.base_power(Utilization::new(0.2).unwrap()).value();
        let p35 = m.base_power(Utilization::new(0.35).unwrap()).value();
        assert!(p20 > 24.0 && p20 < 30.0, "p20 = {p20}");
        assert!(p35 > 30.0 && p35 < 40.0, "p35 = {p35}");
    }

    #[test]
    fn leakage_sign_and_linearity() {
        let m = model();
        assert_eq!(m.leakage_delta(Celsius::new(60.0)), Watts::zero());
        let up = m.leakage_delta(Celsius::new(70.0));
        let down = m.leakage_delta(Celsius::new(50.0));
        assert!((up.value() - 7.0).abs() < 1e-12);
        assert!((down.value() + 7.0).abs() < 1e-12);
    }

    #[test]
    fn refit_recovers_eq20() {
        // Sample the model and refit with h2p-stats: coefficients must
        // round-trip (the "measurement campaign" sanity check).
        let m = model();
        let us: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let ps: Vec<f64> = us
            .iter()
            .map(|&u| m.base_power(Utilization::new(u).unwrap()).value())
            .collect();
        let (a, b) = h2p_stats::fit::log_shifted_fit(&us, &ps, 1.17).unwrap();
        assert!((a - 109.71).abs() < 1e-6);
        assert!((b + 7.83).abs() < 1e-6);
    }

    #[test]
    fn validation() {
        assert!(CpuPowerModel::new(0.0, 1.17, -7.83, 0.7, Celsius::new(60.0)).is_err());
        assert!(CpuPowerModel::new(109.71, 0.0, -7.83, 0.7, Celsius::new(60.0)).is_err());
        assert!(CpuPowerModel::new(109.71, 1.17, -7.83, -0.1, Celsius::new(60.0)).is_err());
        assert!(CpuPowerModel::new(109.71, 1.17, -7.83, 0.0, Celsius::new(60.0)).is_ok());
    }
}
