//! Emergency workload throttling (the software backstop).
//!
//! The paper's related work (CoolProvision \[34\]) handles cooling
//! under-provisioning by *throttling* — trading performance for
//! safety. In the H2P stack the escalation ladder on a hot spot is:
//! cooling setting → TEC boost → throttle. This module implements the
//! last rung: the largest utilization a server may run at a given
//! cooling setting without exceeding a temperature limit.

use crate::lookup::LookupSpace;
use crate::model::ServerModel;
use crate::ServerError;
use h2p_units::{Celsius, LitersPerHour, Utilization};

/// Outcome of a throttling decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleDecision {
    /// The admitted utilization (≤ requested).
    pub admitted: Utilization,
    /// Whether the request was actually cut.
    pub throttled: bool,
    /// Work cut, as a fraction of the request (0 when not throttled).
    pub performance_loss: f64,
}

/// Emergency throttle keeping the die at or below a temperature limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleController {
    limit: Celsius,
}

impl ThrottleController {
    /// Creates a controller with the given die-temperature limit.
    #[must_use]
    pub fn new(limit: Celsius) -> Self {
        ThrottleController { limit }
    }

    /// A controller pinned at the E5-2650 V3 maximum operating
    /// temperature — the hard envelope, beyond even `T_safe`.
    #[must_use]
    pub fn at_max_operating() -> Self {
        ThrottleController {
            limit: Celsius::new(78.9),
        }
    }

    /// The temperature limit.
    #[must_use]
    pub fn limit(&self) -> Celsius {
        self.limit
    }

    /// The largest utilization the server can run under `(flow, inlet)`
    /// without exceeding the limit (bisection on the monotone
    /// temperature-vs-utilization curve). Returns `Utilization::FULL`
    /// when even full load is safe, `Utilization::IDLE` when nothing is.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerModel::operating_point`] failures.
    pub fn max_safe_utilization(
        &self,
        model: &ServerModel,
        flow: LitersPerHour,
        inlet: Celsius,
    ) -> Result<Utilization, ServerError> {
        let die_at = |u: Utilization| -> Result<Celsius, ServerError> {
            Ok(model.operating_point(u, flow, inlet)?.cpu_temperature)
        };
        if die_at(Utilization::FULL)? <= self.limit {
            return Ok(Utilization::FULL);
        }
        if die_at(Utilization::IDLE)? > self.limit {
            return Ok(Utilization::IDLE);
        }
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if die_at(Utilization::saturating(mid))? <= self.limit {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Utilization::saturating(lo))
    }

    /// [`max_safe_utilization`](Self::max_safe_utilization) evaluated
    /// against an interpolated [`LookupSpace`] instead of the raw
    /// server model — the variant the fault-injected simulation engine
    /// uses, so that its throttle decisions agree *exactly* with the
    /// die temperatures the engine itself predicts (the engine reads
    /// the space, not the model; mixing the two would let a
    /// model-admitted load register as an interpolation-space thermal
    /// violation).
    ///
    /// # Errors
    ///
    /// Propagates [`LookupSpace::cpu_temperature`] failures (the
    /// `(flow, inlet)` operating point must lie on the sampled grid).
    pub fn max_safe_utilization_in_space(
        &self,
        space: &LookupSpace,
        flow: LitersPerHour,
        inlet: Celsius,
    ) -> Result<Utilization, ServerError> {
        let die_at = |u: Utilization| -> Result<Celsius, ServerError> {
            space.cpu_temperature(u, flow, inlet)
        };
        if die_at(Utilization::FULL)? <= self.limit {
            return Ok(Utilization::FULL);
        }
        if die_at(Utilization::IDLE)? > self.limit {
            return Ok(Utilization::IDLE);
        }
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if die_at(Utilization::saturating(mid))? <= self.limit {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Utilization::saturating(lo))
    }

    /// Decides how much of a requested load to admit.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerModel::operating_point`] failures.
    pub fn throttle(
        &self,
        model: &ServerModel,
        requested: Utilization,
        flow: LitersPerHour,
        inlet: Celsius,
    ) -> Result<ThrottleDecision, ServerError> {
        let cap = self.max_safe_utilization(model, flow, inlet)?;
        if requested <= cap {
            Ok(ThrottleDecision {
                admitted: requested,
                throttled: false,
                performance_loss: 0.0,
            })
        } else {
            let loss = if requested.value() > 0.0 {
                1.0 - cap.value() / requested.value()
            } else {
                0.0
            };
            Ok(ThrottleDecision {
                admitted: cap,
                throttled: true,
                performance_loss: loss,
            })
        }
    }
}

impl Default for ThrottleController {
    fn default() -> Self {
        ThrottleController::at_max_operating()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServerModel;

    fn model() -> ServerModel {
        ServerModel::paper_default()
    }

    fn u(x: f64) -> Utilization {
        Utilization::new(x).unwrap()
    }

    #[test]
    fn warm_but_safe_water_never_throttles() {
        // 45 °C water: full load stays under 78.9 °C (Sec. II-B).
        let c = ThrottleController::at_max_operating();
        let d = c
            .throttle(
                &model(),
                Utilization::FULL,
                LitersPerHour::new(20.0),
                Celsius::new(45.0),
            )
            .unwrap();
        assert!(!d.throttled);
        assert_eq!(d.admitted, Utilization::FULL);
        assert_eq!(d.performance_loss, 0.0);
    }

    #[test]
    fn hot_water_at_high_load_throttles() {
        // 55 °C water at full load exceeds the limit; the throttle cuts
        // to the binding utilization.
        let c = ThrottleController::at_max_operating();
        let m = model();
        let flow = LitersPerHour::new(20.0);
        let inlet = Celsius::new(55.0);
        let d = c.throttle(&m, Utilization::FULL, flow, inlet).unwrap();
        assert!(d.throttled);
        assert!(d.admitted < Utilization::FULL);
        assert!(d.performance_loss > 0.0 && d.performance_loss < 1.0);
        // The admitted load really is safe, and nearly tight.
        let op = m.operating_point(d.admitted, flow, inlet).unwrap();
        assert!(op.cpu_temperature <= c.limit());
        let op_more = m
            .operating_point(u((d.admitted.value() + 0.02).min(1.0)), flow, inlet)
            .unwrap();
        assert!(op_more.cpu_temperature > c.limit());
    }

    #[test]
    fn cap_monotone_in_inlet_temperature() {
        let c = ThrottleController::at_max_operating();
        let m = model();
        let flow = LitersPerHour::new(20.0);
        let cool = c
            .max_safe_utilization(&m, flow, Celsius::new(45.0))
            .unwrap();
        let warm = c
            .max_safe_utilization(&m, flow, Celsius::new(58.0))
            .unwrap();
        assert!(cool >= warm);
    }

    #[test]
    fn higher_flow_raises_the_cap() {
        let c = ThrottleController::new(Celsius::new(70.0));
        let m = model();
        let inlet = Celsius::new(52.0);
        let slow = c
            .max_safe_utilization(&m, LitersPerHour::new(20.0), inlet)
            .unwrap();
        let fast = c
            .max_safe_utilization(&m, LitersPerHour::new(200.0), inlet)
            .unwrap();
        assert!(fast >= slow);
    }

    #[test]
    fn space_throttle_agrees_with_interpolated_die() {
        // The space-backed cap must be tight against the *space's* die
        // prediction: at the cap the interpolated die is at or below the
        // limit, a nudge above it is not.
        let m = model();
        let space = crate::lookup::LookupSpace::paper_grid(&m).unwrap();
        let c = ThrottleController::new(Celsius::new(70.0));
        let flow = LitersPerHour::new(20.0);
        let inlet = Celsius::new(54.0);
        let cap = c
            .max_safe_utilization_in_space(&space, flow, inlet)
            .unwrap();
        assert!(cap > Utilization::IDLE && cap < Utilization::FULL);
        let at_cap = space.cpu_temperature(cap, flow, inlet).unwrap();
        assert!(at_cap <= c.limit());
        let above = space
            .cpu_temperature(u((cap.value() + 0.01).min(1.0)), flow, inlet)
            .unwrap();
        assert!(above > c.limit());
    }

    #[test]
    fn space_throttle_extremes() {
        let m = model();
        let space = crate::lookup::LookupSpace::paper_grid(&m).unwrap();
        // Cool water: full load safe.
        let c = ThrottleController::at_max_operating();
        let cap = c
            .max_safe_utilization_in_space(&space, LitersPerHour::new(250.0), Celsius::new(25.0))
            .unwrap();
        assert_eq!(cap, Utilization::FULL);
        // Impossible limit: idle.
        let strict = ThrottleController::new(Celsius::new(20.0));
        let cap = strict
            .max_safe_utilization_in_space(&space, LitersPerHour::new(20.0), Celsius::new(45.0))
            .unwrap();
        assert_eq!(cap, Utilization::IDLE);
        // Off-grid operating point propagates the typed error.
        assert!(c
            .max_safe_utilization_in_space(&space, LitersPerHour::new(5.0), Celsius::new(45.0))
            .is_err());
    }

    #[test]
    fn impossible_limit_throttles_to_idle() {
        // A limit below what even an idle die reaches.
        let c = ThrottleController::new(Celsius::new(30.0));
        let d = c
            .throttle(
                &model(),
                u(0.5),
                LitersPerHour::new(20.0),
                Celsius::new(45.0),
            )
            .unwrap();
        assert_eq!(d.admitted, Utilization::IDLE);
        assert!(d.throttled);
        assert_eq!(d.performance_loss, 1.0);
    }
}
