//! Natural cold-water source models.
//!
//! H2P's cold loop is fed by "the domestic water or the running water
//! from nature, which is around 20 °C" (Sec. III-C); the paper points at
//! AliCloud's Qiandao Lake datacenter, whose deep water "stabilizes
//! perennially at 15 °C ~ 20 °C". The evaluation assumes a constant
//! 20 °C; the seasonal model feeds the cold-source ablation experiment.

use h2p_units::{Celsius, DegC, Seconds};

/// A source of cold water for the TEG cold loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColdSource {
    /// Temperature never changes (the paper's evaluation assumption).
    Constant(Celsius),
    /// Sinusoidal seasonal variation around a mean:
    /// `T(t) = mean + amplitude·sin(2π·t/period)`.
    Seasonal {
        /// Annual mean temperature.
        mean: Celsius,
        /// Peak deviation from the mean.
        amplitude: DegC,
        /// Period of the cycle (e.g. one year).
        period: Seconds,
    },
}

impl ColdSource {
    /// The paper's evaluation source: constant 20 °C.
    #[must_use]
    pub fn paper_default() -> Self {
        ColdSource::Constant(Celsius::new(20.0))
    }

    /// Deep-lake water modelled on Qiandao Lake: 17.5 °C ± 2.5 °C over a
    /// year, spanning the paper's quoted 15-20 °C band.
    #[must_use]
    pub fn qiandao_lake() -> Self {
        ColdSource::Seasonal {
            mean: Celsius::new(17.5),
            amplitude: DegC::new(2.5),
            period: Seconds::days(365.0),
        }
    }

    /// Water temperature at simulated time `t` (measured from an
    /// arbitrary epoch).
    #[must_use]
    pub fn temperature(&self, t: Seconds) -> Celsius {
        match *self {
            ColdSource::Constant(temp) => temp,
            ColdSource::Seasonal {
                mean,
                amplitude,
                period,
            } => {
                let phase = 2.0 * core::f64::consts::PI * t.value() / period.value();
                mean + amplitude * phase.sin()
            }
        }
    }
}

impl Default for ColdSource {
    fn default() -> Self {
        ColdSource::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_source_is_constant() {
        let s = ColdSource::paper_default();
        for days in [0.0, 10.0, 100.0, 400.0] {
            assert_eq!(s.temperature(Seconds::days(days)), Celsius::new(20.0));
        }
    }

    #[test]
    fn seasonal_source_stays_in_band() {
        let s = ColdSource::qiandao_lake();
        for day in 0..730 {
            let t = s.temperature(Seconds::days(day as f64)).value();
            assert!((15.0..=20.0).contains(&t), "day {day}: {t}");
        }
    }

    #[test]
    fn seasonal_source_is_periodic() {
        let s = ColdSource::qiandao_lake();
        let a = s.temperature(Seconds::days(42.0));
        let b = s.temperature(Seconds::days(42.0 + 365.0));
        assert!((a.value() - b.value()).abs() < 1e-9);
    }

    #[test]
    fn seasonal_source_actually_varies() {
        let s = ColdSource::qiandao_lake();
        let summer = s.temperature(Seconds::days(91.25)); // quarter period
        let winter = s.temperature(Seconds::days(273.75));
        assert!((summer - winter).value().abs() > 4.0);
    }
}
