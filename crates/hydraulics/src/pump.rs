//! Variable-speed pump model (affinity laws).
//!
//! The paper's prototype uses variable-speed pumps in both loops and
//! notes (Sec. IV-B1) that raising the flow rate "means more power
//! consumption of the pump" — a cost the cooling-setting optimizer must
//! weigh against the slight generation gain. A centrifugal pump under
//! the affinity laws draws power proportional to the cube of flow.

use crate::HydraulicsError;
use h2p_units::{LitersPerHour, Watts};

/// A variable-speed centrifugal pump.
///
/// ```
/// use h2p_hydraulics::Pump;
/// use h2p_units::{LitersPerHour, Watts};
///
/// let pump = Pump::new(LitersPerHour::new(250.0), Watts::new(15.0))?;
/// // Halving the flow costs an eighth of the power.
/// let p = pump.power(LitersPerHour::new(125.0))?;
/// assert!((p.value() - 15.0 / 8.0).abs() < 1e-9);
/// # Ok::<(), h2p_hydraulics::HydraulicsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pump {
    rated_flow: LitersPerHour,
    rated_power: Watts,
    /// Affinity exponent (3 for ideal centrifugal pumps).
    exponent: f64,
    /// Fixed electronics/idle draw added on top of the hydraulic power.
    idle_power: Watts,
}

impl Pump {
    /// Creates a pump from its rated operating point with the ideal
    /// cubic affinity exponent and no idle draw.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositiveParameter`] if the rated
    /// flow or power is not strictly positive.
    pub fn new(rated_flow: LitersPerHour, rated_power: Watts) -> Result<Self, HydraulicsError> {
        Self::with_characteristics(rated_flow, rated_power, 3.0, Watts::zero())
    }

    /// Creates a pump with an explicit affinity exponent and idle draw.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositiveParameter`] if the rated
    /// flow, rated power or exponent is not strictly positive, or the
    /// idle power is negative.
    pub fn with_characteristics(
        rated_flow: LitersPerHour,
        rated_power: Watts,
        exponent: f64,
        idle_power: Watts,
    ) -> Result<Self, HydraulicsError> {
        for (name, value) in [
            ("rated_flow", rated_flow.value()),
            ("rated_power", rated_power.value()),
            ("exponent", exponent),
        ] {
            if !(value > 0.0) {
                return Err(HydraulicsError::NonPositiveParameter { name, value });
            }
        }
        if idle_power.value() < 0.0 {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "idle_power",
                value: idle_power.value(),
            });
        }
        Ok(Pump {
            rated_flow,
            rated_power,
            exponent,
            idle_power,
        })
    }

    /// The prototype's TCS loop pump: 15 W at 250 L/H with a 0.5 W
    /// controller draw.
    #[must_use]
    pub fn paper_tcs_pump() -> Self {
        Pump::with_characteristics(
            LitersPerHour::new(250.0),
            Watts::new(15.0),
            3.0,
            Watts::new(0.5),
        )
        // h2p-lint: allow(L2): hard-coded positive constants
        .expect("constants are valid")
    }

    /// Rated flow.
    #[must_use]
    pub fn rated_flow(&self) -> LitersPerHour {
        self.rated_flow
    }

    /// Rated electrical power at rated flow (excluding idle draw).
    #[must_use]
    pub fn rated_power(&self) -> Watts {
        self.rated_power
    }

    /// Electrical power drawn to sustain `flow`:
    /// `P = P_idle + P_rated·(f/f_rated)^exponent`.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositiveParameter`] if `flow` is
    /// negative (zero flow is allowed and draws only the idle power).
    pub fn power(&self, flow: LitersPerHour) -> Result<Watts, HydraulicsError> {
        if flow.value() < 0.0 {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "flow",
                value: flow.value(),
            });
        }
        let ratio = flow.value() / self.rated_flow.value();
        Ok(self.idle_power + self.rated_power * ratio.powf(self.exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_affinity_law() {
        let pump = Pump::new(LitersPerHour::new(200.0), Watts::new(10.0)).unwrap();
        let cases = [(200.0, 10.0), (100.0, 1.25), (400.0, 80.0), (0.0, 0.0)];
        for (flow, want) in cases {
            let p = pump.power(LitersPerHour::new(flow)).unwrap();
            assert!((p.value() - want).abs() < 1e-9, "flow = {flow}");
        }
    }

    #[test]
    fn idle_power_floors_consumption() {
        let pump = Pump::paper_tcs_pump();
        let p0 = pump.power(LitersPerHour::new(0.0)).unwrap();
        assert_eq!(p0, Watts::new(0.5));
        let p_low = pump.power(LitersPerHour::new(20.0)).unwrap();
        assert!(p_low > p0);
        // 20 L/H costs almost nothing hydraulic: (20/250)^3 * 15 ≈ 7.7 mW.
        assert!(p_low.value() < 0.6);
    }

    #[test]
    fn power_monotone_in_flow() {
        let pump = Pump::paper_tcs_pump();
        let mut prev = Watts::zero();
        for f in [10.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0] {
            let p = pump.power(LitersPerHour::new(f)).unwrap();
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn validation() {
        assert!(Pump::new(LitersPerHour::new(0.0), Watts::new(1.0)).is_err());
        assert!(Pump::new(LitersPerHour::new(1.0), Watts::new(0.0)).is_err());
        let pump = Pump::paper_tcs_pump();
        assert!(pump.power(LitersPerHour::new(-1.0)).is_err());
        assert!(Pump::with_characteristics(
            LitersPerHour::new(1.0),
            Watts::new(1.0),
            3.0,
            Watts::new(-0.1)
        )
        .is_err());
    }
}
