//! Water-circulation substrate: pumps, branches, stream mixing and cold
//! sources.
//!
//! The paper's cooling plant (Fig. 1) is two liquid loops — the
//! technology cooling system (TCS) that washes the servers and the
//! facility water system (FWS) that rejects heat — joined by the CDU's
//! heat exchanger, plus H2P's third, *cold* loop fed by a natural water
//! source (Sec. III-C). This crate provides the hydraulic pieces those
//! loops are assembled from:
//!
//! * [`Branch`] — a per-server coolant branch: advection energy balance
//!   `T_out = T_in + P/(ṁ·c_p)`;
//! * [`mix`] — enthalpy-weighted merging of parallel branch outlets;
//! * [`Pump`] — centrifugal pump electrical power via the affinity laws;
//! * [`cold_source`] — models of the natural cold-water source (constant
//!   lake water, seasonal variation);
//! * [`circulation`] — a flow-network solver: parallel trim-valved
//!   branches on a centralized variable-speed pump, solved at the
//!   intersection of the pump and demand curves.
//!
//! # Examples
//!
//! ```
//! use h2p_hydraulics::Branch;
//! use h2p_units::{Celsius, LitersPerHour, Watts};
//!
//! let branch = Branch::new(LitersPerHour::new(20.0))?;
//! let out = branch.outlet(Celsius::new(45.0), Watts::new(60.0));
//! assert!(out > Celsius::new(45.0) && out < Celsius::new(48.5));
//! # Ok::<(), h2p_hydraulics::HydraulicsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used as a deliberate NaN-rejecting validation idiom
// throughout (NaN fails the guard, unlike `x <= 0.0`).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

pub mod circulation;
pub mod cold_source;
mod pump;

pub use circulation::{BranchCircuit, Circulation, OperatingFlow, PumpCurve};
pub use cold_source::ColdSource;
pub use pump::Pump;

use core::fmt;
use h2p_units::{Celsius, KgPerSecond, LitersPerHour, Watts};

/// Errors from the hydraulics substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HydraulicsError {
    /// A parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Mixing requires at least one stream.
    NoStreams,
}

impl fmt::Display for HydraulicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HydraulicsError::NonPositiveParameter { name, value } => {
                write!(f, "parameter {name} must be positive, got {value}")
            }
            HydraulicsError::NoStreams => write!(f, "cannot mix zero streams"),
        }
    }
}

impl std::error::Error for HydraulicsError {}

/// A coolant branch with a fixed volumetric flow — one server's share of
/// a circulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Branch {
    flow: LitersPerHour,
}

impl Branch {
    /// Creates a branch with the given flow.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositiveParameter`] if the flow is
    /// not strictly positive.
    pub fn new(flow: LitersPerHour) -> Result<Self, HydraulicsError> {
        if !(flow.value() > 0.0) {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "flow",
                value: flow.value(),
            });
        }
        Ok(Branch { flow })
    }

    /// The branch flow.
    #[must_use]
    pub fn flow(&self) -> LitersPerHour {
        self.flow
    }

    /// The branch mass flow.
    #[must_use]
    pub fn mass_flow(&self) -> KgPerSecond {
        self.flow.mass_flow()
    }

    /// Outlet temperature after the branch absorbs `power`:
    /// `T_out = T_in + P/(ṁ·c_p)` (the paper's Eq. 8 with
    /// `ΔT_out−in = P/(ṁ·c_p)`).
    #[must_use]
    pub fn outlet(&self, inlet: Celsius, power: Watts) -> Celsius {
        inlet + self.mass_flow().temperature_rise(power)
    }

    /// Heat absorbed when the branch warms from `inlet` to `outlet`.
    #[must_use]
    pub fn absorbed(&self, inlet: Celsius, outlet: Celsius) -> Watts {
        self.mass_flow().heat_rate(outlet - inlet)
    }
}

/// Enthalpy-weighted mixing of parallel streams `(mass flow, temperature)`
/// into a single return stream.
///
/// # Errors
///
/// Returns [`HydraulicsError::NoStreams`] if `streams` is empty and
/// [`HydraulicsError::NonPositiveParameter`] if any mass flow is not
/// strictly positive.
pub fn mix(streams: &[(KgPerSecond, Celsius)]) -> Result<(KgPerSecond, Celsius), HydraulicsError> {
    if streams.is_empty() {
        return Err(HydraulicsError::NoStreams);
    }
    let mut total_flow = 0.0;
    let mut weighted = 0.0;
    for &(m, t) in streams {
        if !(m.value() > 0.0) {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "mass_flow",
                value: m.value(),
            });
        }
        total_flow += m.value();
        weighted += m.value() * t.value();
    }
    Ok((
        KgPerSecond::new(total_flow),
        Celsius::new(weighted / total_flow),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlet_rises_with_power() {
        let b = Branch::new(LitersPerHour::new(20.0)).unwrap();
        let t0 = b.outlet(Celsius::new(45.0), Watts::zero());
        let t1 = b.outlet(Celsius::new(45.0), Watts::new(40.0));
        let t2 = b.outlet(Celsius::new(45.0), Watts::new(80.0));
        assert_eq!(t0, Celsius::new(45.0));
        assert!(t1 > t0 && t2 > t1);
        // Linearity.
        assert!(((t2 - t0).value() - 2.0 * (t1 - t0).value()).abs() < 1e-12);
    }

    #[test]
    fn absorbed_inverts_outlet() {
        let b = Branch::new(LitersPerHour::new(50.0)).unwrap();
        let inlet = Celsius::new(42.0);
        let out = b.outlet(inlet, Watts::new(65.0));
        assert!((b.absorbed(inlet, out).value() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn paper_delta_band() {
        // Fig. 9: 1-3.5 °C outlet-inlet difference at 20 L/H across the
        // utilization range (25-80 W CPU power).
        let b = Branch::new(LitersPerHour::new(20.0)).unwrap();
        let lo = b.outlet(Celsius::new(45.0), Watts::new(25.0)) - Celsius::new(45.0);
        let hi = b.outlet(Celsius::new(45.0), Watts::new(80.0)) - Celsius::new(45.0);
        assert!(lo.value() > 0.9 && hi.value() < 3.6, "lo {lo}, hi {hi}");
    }

    #[test]
    fn mixing_preserves_energy() {
        let streams = [
            (LitersPerHour::new(20.0).mass_flow(), Celsius::new(48.0)),
            (LitersPerHour::new(40.0).mass_flow(), Celsius::new(45.0)),
            (LitersPerHour::new(20.0).mass_flow(), Celsius::new(51.0)),
        ];
        let (m, t) = mix(&streams).unwrap();
        assert!((m.value() - LitersPerHour::new(80.0).mass_flow().value()).abs() < 1e-12);
        let enthalpy_in: f64 = streams.iter().map(|(m, t)| m.value() * t.value()).sum();
        assert!((m.value() * t.value() - enthalpy_in).abs() < 1e-9);
        // Mixed temperature bracketed by the extremes.
        assert!(t > Celsius::new(45.0) && t < Celsius::new(51.0));
    }

    #[test]
    fn mixing_equal_streams_is_identity() {
        let s = (LitersPerHour::new(30.0).mass_flow(), Celsius::new(44.0));
        let (_, t) = mix(&[s, s]).unwrap();
        assert!((t.value() - 44.0).abs() < 1e-12);
    }

    #[test]
    fn mix_input_validation() {
        assert_eq!(mix(&[]), Err(HydraulicsError::NoStreams));
        assert!(mix(&[(KgPerSecond::new(0.0), Celsius::new(20.0))]).is_err());
    }

    #[test]
    fn branch_validation() {
        assert!(Branch::new(LitersPerHour::new(0.0)).is_err());
        assert!(Branch::new(LitersPerHour::new(-5.0)).is_err());
    }
}
