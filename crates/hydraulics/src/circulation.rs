//! Flow-network solver for a water circulation: parallel server
//! branches with trim valves, driven by one centralized variable-speed
//! pump (paper Sec. II-A: "CDUs regulate the coolant temperature and
//! the flow rate by using valves and centralized pumps").
//!
//! Each branch has a quadratic (turbulent) hydraulic characteristic
//! `Δp = k·Q²`; its trim valve scales `k` by `1/position²`. Parallel
//! branches all see the pump's head, so the network operating point is
//! the intersection of the pump curve `Δp = h₀·(1 − (Q/Q_max)²)` with
//! the aggregate demand curve, found by bisection on Δp.

use crate::HydraulicsError;
use h2p_units::{LitersPerHour, Pascals, Watts};

/// One parallel branch: fixed pipe/cold-plate hydraulics plus a trim
/// valve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchCircuit {
    /// Hydraulic coefficient of the fully-open branch, Pa/(L/H)².
    k_open: f64,
    /// Valve position in `(0, 1]` (1 = fully open).
    valve: f64,
}

impl BranchCircuit {
    /// Creates a branch from its fully-open coefficient.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositiveParameter`] if `k_open`
    /// is not strictly positive.
    pub fn new(k_open: f64) -> Result<Self, HydraulicsError> {
        if !(k_open > 0.0) {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "k_open",
                value: k_open,
            });
        }
        Ok(BranchCircuit { k_open, valve: 1.0 })
    }

    /// A typical server branch: 4 mm microchannel cold plate plus hose,
    /// dropping ~20 kPa at 250 L/H fully open.
    #[must_use]
    pub fn typical_server() -> Self {
        BranchCircuit {
            k_open: 20_000.0 / (250.0_f64 * 250.0),
            valve: 1.0,
        }
    }

    /// Sets the trim-valve position.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositiveParameter`] if `position`
    /// is outside `(0, 1]`.
    pub fn set_valve(&mut self, position: f64) -> Result<(), HydraulicsError> {
        if !(position > 0.0 && position <= 1.0) {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "valve position",
                value: position,
            });
        }
        self.valve = position;
        Ok(())
    }

    /// The trim-valve position.
    #[must_use]
    pub fn valve(&self) -> f64 {
        self.valve
    }

    /// Effective hydraulic coefficient with the valve applied.
    #[must_use]
    pub fn k_effective(&self) -> f64 {
        self.k_open / (self.valve * self.valve)
    }

    /// Flow through this branch at a given head.
    #[must_use]
    pub fn flow_at(&self, head: Pascals) -> LitersPerHour {
        LitersPerHour::new((head.value().max(0.0) / self.k_effective()).sqrt())
    }
}

/// The centralized pump's head curve: `Δp = h₀·(1 − (Q/Q_max)²)`,
/// scaled by the square of the speed fraction (affinity laws).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PumpCurve {
    /// Shut-off head at full speed.
    shutoff_head: Pascals,
    /// Free-delivery flow at full speed.
    max_flow: LitersPerHour,
    /// Speed fraction in `(0, 1]`.
    speed: f64,
    /// Wire-to-water efficiency in `(0, 1]`.
    efficiency: f64,
}

impl PumpCurve {
    /// Creates a pump curve.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositiveParameter`] for a
    /// non-positive head or flow, or an efficiency outside `(0, 1]`.
    pub fn new(
        shutoff_head: Pascals,
        max_flow: LitersPerHour,
        efficiency: f64,
    ) -> Result<Self, HydraulicsError> {
        for (name, value) in [
            ("shutoff_head", shutoff_head.value()),
            ("max_flow", max_flow.value()),
        ] {
            if !(value > 0.0) {
                return Err(HydraulicsError::NonPositiveParameter { name, value });
            }
        }
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "efficiency",
                value: efficiency,
            });
        }
        Ok(PumpCurve {
            shutoff_head,
            max_flow,
            speed: 1.0,
            efficiency,
        })
    }

    /// A CDU-scale circulator: 60 kPa shut-off, 15,000 L/H free
    /// delivery, 45 % wire-to-water efficiency.
    #[must_use]
    pub fn cdu_circulator() -> Self {
        PumpCurve::new(
            Pascals::from_kilopascals(60.0),
            LitersPerHour::new(15_000.0),
            0.45,
        )
        // h2p-lint: allow(L2): hard-coded positive constants
        .expect("constants are valid")
    }

    /// Sets the speed fraction (variable-speed drive).
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositiveParameter`] if `speed` is
    /// outside `(0, 1]`.
    pub fn set_speed(&mut self, speed: f64) -> Result<(), HydraulicsError> {
        if !(speed > 0.0 && speed <= 1.0) {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "speed",
                value: speed,
            });
        }
        self.speed = speed;
        Ok(())
    }

    /// The speed fraction.
    #[must_use]
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Head delivered at a flow (affinity-scaled), clamped at zero past
    /// free delivery.
    #[must_use]
    pub fn head_at(&self, flow: LitersPerHour) -> Pascals {
        let s2 = self.speed * self.speed;
        let q_ratio = flow.value() / (self.max_flow.value() * self.speed);
        Pascals::new((self.shutoff_head.value() * s2 * (1.0 - q_ratio * q_ratio)).max(0.0))
    }
}

/// The solved operating point of a circulation.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingFlow {
    /// Pump head at the operating point.
    pub head: Pascals,
    /// Total loop flow.
    pub total_flow: LitersPerHour,
    /// Per-branch flows, in branch order.
    pub branch_flows: Vec<LitersPerHour>,
    /// Electrical power drawn by the pump.
    pub pump_power: Watts,
}

#[cfg(feature = "sanitize")]
impl OperatingFlow {
    /// Physics sanitizer (the `sanitize` feature): a solved operating
    /// point must be physical — finite, non-negative head, flows and
    /// pump power. A violation means the bisection diverged or the
    /// network was built from corrupted inputs, and panics in debug
    /// builds rather than feeding garbage into the thermal layer.
    fn sanitize(&self) {
        let head = self.head.value();
        debug_assert!(
            head.is_finite() && head >= 0.0,
            "sanitize: solve produced head {head} Pa (finite, >= 0 expected)"
        );
        let total = self.total_flow.value();
        debug_assert!(
            total.is_finite() && total >= 0.0,
            "sanitize: solve produced total flow {total} L/h (finite, >= 0 expected)"
        );
        for (i, f) in self.branch_flows.iter().enumerate() {
            let f = f.value();
            debug_assert!(
                f.is_finite() && f >= 0.0,
                "sanitize: solve produced branch {i} flow {f} L/h (finite, >= 0 expected)"
            );
        }
        let pump = self.pump_power.value();
        debug_assert!(
            pump.is_finite() && pump >= 0.0,
            "sanitize: solve produced pump power {pump} W (finite, >= 0 expected)"
        );
    }
}

/// A water circulation: parallel branches fed by one pump.
#[derive(Debug, Clone, PartialEq)]
pub struct Circulation {
    branches: Vec<BranchCircuit>,
    pump: PumpCurve,
}

impl Circulation {
    /// Creates a circulation.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NoStreams`] if `branches` is empty.
    pub fn new(branches: Vec<BranchCircuit>, pump: PumpCurve) -> Result<Self, HydraulicsError> {
        if branches.is_empty() {
            return Err(HydraulicsError::NoStreams);
        }
        Ok(Circulation { branches, pump })
    }

    /// A paper-scale circulation: `n` identical server branches on a
    /// CDU circulator.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NoStreams`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self, HydraulicsError> {
        Circulation::new(
            vec![BranchCircuit::typical_server(); n],
            PumpCurve::cdu_circulator(),
        )
    }

    /// Number of branches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Whether the circulation has no branches (never true once built).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// Mutable access to a branch (to trim its valve).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn branch_mut(&mut self, i: usize) -> &mut BranchCircuit {
        &mut self.branches[i]
    }

    /// Mutable access to the pump (to change its speed).
    pub fn pump_mut(&mut self) -> &mut PumpCurve {
        &mut self.pump
    }

    /// Total demand flow at a given head.
    fn demand_at(&self, head: Pascals) -> f64 {
        self.branches.iter().map(|b| b.flow_at(head).value()).sum()
    }

    /// Solves the operating point: the head where pump supply equals
    /// branch demand, by bisection (supply − demand is decreasing in
    /// head).
    #[must_use]
    pub fn solve(&self) -> OperatingFlow {
        let s2 = self.pump.speed * self.pump.speed;
        let mut lo = 0.0_f64;
        let mut hi = self.pump.shutoff_head.value() * s2;
        // supply(head): invert the pump curve for Q at this head.
        let supply = |head: f64| {
            let ratio = 1.0 - head / (self.pump.shutoff_head.value() * s2);
            self.pump.max_flow.value() * self.pump.speed * ratio.max(0.0).sqrt()
        };
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if supply(mid) >= self.demand_at(Pascals::new(mid)) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let head = Pascals::new(0.5 * (lo + hi));
        let branch_flows: Vec<LitersPerHour> =
            self.branches.iter().map(|b| b.flow_at(head)).collect();
        let total = LitersPerHour::new(branch_flows.iter().map(|f| f.value()).sum());
        let hydraulic = head.hydraulic_power(total);
        let op = OperatingFlow {
            head,
            total_flow: total,
            branch_flows,
            pump_power: hydraulic / self.pump.efficiency,
        };
        #[cfg(feature = "sanitize")]
        op.sanitize();
        op
    }

    /// Sets the pump speed so the *mean* branch flow hits `target`,
    /// by bisection on speed. Returns the achieved operating point.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositiveParameter`] if the target
    /// is not strictly positive or unreachable at full speed.
    pub fn regulate_to(&mut self, target: LitersPerHour) -> Result<OperatingFlow, HydraulicsError> {
        if !(target.value() > 0.0) {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "target flow",
                value: target.value(),
            });
        }
        self.pump.set_speed(1.0)?;
        let full = self.solve();
        // h2p-lint: allow(L3): branch count -> f64, exact below 2^53
        if full.total_flow.value() / self.len() as f64 + 1e-9 < target.value() {
            return Err(HydraulicsError::NonPositiveParameter {
                name: "target flow beyond pump capability",
                value: target.value(),
            });
        }
        let mut lo = 1e-3;
        let mut hi = 1.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            self.pump.set_speed(mid)?;
            // h2p-lint: allow(L3): branch count -> f64, exact below 2^53
            let mean = self.solve().total_flow.value() / self.len() as f64;
            if mean >= target.value() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        self.pump.set_speed(hi)?;
        Ok(self.solve())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_branches_share_flow_equally() {
        let circ = Circulation::uniform(40).unwrap();
        let op = circ.solve();
        let first = op.branch_flows[0];
        for f in &op.branch_flows {
            assert!((f.value() - first.value()).abs() < 1e-6);
        }
        assert!(
            (op.total_flow.value() - 40.0 * first.value()).abs() < 1e-3,
            "flows must sum"
        );
    }

    #[test]
    fn operating_point_on_both_curves() {
        let circ = Circulation::uniform(10).unwrap();
        let op = circ.solve();
        // On the pump curve...
        let pump_head = PumpCurve::cdu_circulator().head_at(op.total_flow);
        assert!((pump_head.value() - op.head.value()).abs() < 50.0);
        // ...and on each branch curve.
        let k = BranchCircuit::typical_server().k_effective();
        for f in &op.branch_flows {
            let dp = k * f.value() * f.value();
            assert!((dp - op.head.value()).abs() < 50.0);
        }
    }

    #[test]
    fn closing_a_valve_starves_that_branch_and_feeds_the_rest() {
        let mut circ = Circulation::uniform(4).unwrap();
        let before = circ.solve();
        circ.branch_mut(0).set_valve(0.3).unwrap();
        let after = circ.solve();
        assert!(after.branch_flows[0] < before.branch_flows[0]);
        // Head rises, so the untouched branches gain flow.
        assert!(after.head > before.head);
        assert!(after.branch_flows[1] > before.branch_flows[1]);
    }

    #[test]
    fn slower_pump_moves_less_water_for_less_power() {
        let mut circ = Circulation::uniform(10).unwrap();
        let fast = circ.solve();
        circ.pump_mut().set_speed(0.5).unwrap();
        let slow = circ.solve();
        assert!(slow.total_flow < fast.total_flow);
        assert!(slow.pump_power < fast.pump_power);
        // Affinity shape: half speed ≈ half flow, ~1/8 power.
        let flow_ratio = slow.total_flow / fast.total_flow;
        let power_ratio = slow.pump_power / fast.pump_power;
        assert!((flow_ratio - 0.5).abs() < 0.05, "flow ratio {flow_ratio}");
        assert!(power_ratio < 0.2, "power ratio {power_ratio}");
    }

    #[test]
    fn regulate_hits_target_mean_flow() {
        let mut circ = Circulation::uniform(40).unwrap();
        let op = circ.regulate_to(LitersPerHour::new(60.0)).unwrap();
        let mean = op.total_flow.value() / 40.0;
        assert!((mean - 60.0).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn unreachable_target_rejected() {
        let mut circ = Circulation::uniform(40).unwrap();
        assert!(circ.regulate_to(LitersPerHour::new(10_000.0)).is_err());
        assert!(circ.regulate_to(LitersPerHour::new(0.0)).is_err());
    }

    #[test]
    fn more_branches_more_total_flow_lower_head() {
        let small = Circulation::uniform(5).unwrap().solve();
        let large = Circulation::uniform(50).unwrap().solve();
        assert!(large.total_flow > small.total_flow);
        assert!(large.head < small.head);
    }

    #[test]
    fn validation() {
        assert!(Circulation::new(vec![], PumpCurve::cdu_circulator()).is_err());
        assert!(BranchCircuit::new(0.0).is_err());
        let mut b = BranchCircuit::typical_server();
        assert!(b.set_valve(0.0).is_err());
        assert!(b.set_valve(1.1).is_err());
        assert!(PumpCurve::new(Pascals::new(0.0), LitersPerHour::new(1.0), 0.5).is_err());
        assert!(PumpCurve::new(Pascals::new(1.0), LitersPerHour::new(1.0), 1.5).is_err());
        let mut p = PumpCurve::cdu_circulator();
        assert!(p.set_speed(0.0).is_err());
    }

    #[test]
    fn typical_branch_matches_spec_point() {
        // 20 kPa at 250 L/H by construction.
        let b = BranchCircuit::typical_server();
        let f = b.flow_at(Pascals::from_kilopascals(20.0));
        assert!((f.value() - 250.0).abs() < 1e-6);
    }
}
