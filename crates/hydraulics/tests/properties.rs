//! Property-based tests of the hydraulic substrate.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_hydraulics::{mix, Branch, Circulation, ColdSource, Pump};
use h2p_units::{Celsius, LitersPerHour, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn branch_outlet_linear_in_power(
        flow in 5.0..400.0f64,
        inlet in 10.0..60.0f64,
        p in 0.0..200.0f64,
    ) {
        let b = Branch::new(LitersPerHour::new(flow)).unwrap();
        let t0 = b.outlet(Celsius::new(inlet), Watts::zero());
        let t1 = b.outlet(Celsius::new(inlet), Watts::new(p));
        let t2 = b.outlet(Celsius::new(inlet), Watts::new(2.0 * p));
        prop_assert!((t0.value() - inlet).abs() < 1e-12);
        let d1 = (t1 - t0).value();
        let d2 = (t2 - t0).value();
        prop_assert!((d2 - 2.0 * d1).abs() < 1e-9 * d2.abs().max(1.0));
        // Round trip through absorbed().
        prop_assert!((b.absorbed(Celsius::new(inlet), t1).value() - p).abs() < 1e-6 * p.max(1.0));
    }

    #[test]
    fn mixing_bracketed_and_conservative(
        temps in proptest::collection::vec(10.0..70.0f64, 1..20),
        flows in proptest::collection::vec(1.0..200.0f64, 1..20),
    ) {
        let n = temps.len().min(flows.len());
        let streams: Vec<_> = (0..n)
            .map(|i| (LitersPerHour::new(flows[i]).mass_flow(), Celsius::new(temps[i])))
            .collect();
        let (m, t) = mix(&streams).unwrap();
        let lo = temps[..n].iter().copied().fold(f64::INFINITY, f64::min);
        let hi = temps[..n].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(t.value() >= lo - 1e-9 && t.value() <= hi + 1e-9);
        // Enthalpy conservation.
        let enthalpy_in: f64 = streams.iter().map(|(m, t)| m.value() * t.value()).sum();
        prop_assert!((m.value() * t.value() - enthalpy_in).abs() < 1e-9 * enthalpy_in.abs().max(1.0));
    }

    #[test]
    fn pump_power_superlinear(flow in 1.0..250.0f64, k in 1.1..3.0f64) {
        let pump = Pump::new(LitersPerHour::new(250.0), Watts::new(15.0)).unwrap();
        let p1 = pump.power(LitersPerHour::new(flow)).unwrap();
        let p2 = pump.power(LitersPerHour::new(flow * k)).unwrap();
        // Cubic law: scaling flow by k scales power by k^3 > k.
        prop_assert!(p2.value() > k * p1.value() - 1e-12);
    }

    #[test]
    fn circulation_flows_positive_and_consistent(n in 1usize..80) {
        let op = Circulation::uniform(n).unwrap().solve();
        prop_assert_eq!(op.branch_flows.len(), n);
        let sum: f64 = op.branch_flows.iter().map(|f| f.value()).sum();
        prop_assert!((sum - op.total_flow.value()).abs() < 1e-6 * sum.max(1.0));
        for f in &op.branch_flows {
            prop_assert!(f.value() > 0.0);
        }
        prop_assert!(op.head.value() >= 0.0);
        prop_assert!(op.pump_power.value() >= 0.0);
    }

    #[test]
    fn valve_trim_is_monotone(position in 0.05..1.0f64) {
        let mut circ = Circulation::uniform(5).unwrap();
        let open = circ.solve().branch_flows[0];
        circ.branch_mut(0).set_valve(position).unwrap();
        let trimmed = circ.solve().branch_flows[0];
        prop_assert!(trimmed <= open + LitersPerHour::new(1e-9));
    }

    #[test]
    fn regulation_hits_feasible_targets(target in 20.0..120.0f64) {
        let mut circ = Circulation::uniform(40).unwrap();
        let op = circ.regulate_to(LitersPerHour::new(target)).unwrap();
        let mean = op.total_flow.value() / 40.0;
        prop_assert!((mean - target).abs() < 0.01 * target, "mean {mean} target {target}");
    }

    #[test]
    fn seasonal_source_bounded_by_amplitude(day in 0.0..3650.0f64) {
        let s = ColdSource::qiandao_lake();
        let t = s.temperature(Seconds::days(day)).value();
        prop_assert!((15.0..=20.0).contains(&t));
    }
}
