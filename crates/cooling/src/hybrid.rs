//! TEC hot-spot controller — the hybrid cooling substrate (paper
//! Sec. II-B and VI-C1, building on Jiang et al. \[24\]).
//!
//! Warm-water cooling is only viable because sudden hot spots can be
//! absorbed by a per-CPU thermoelectric cooler while the (slow) chilled
//! loop catches up. The controller here answers the question the hybrid
//! architecture poses every interval: *given the die temperature a
//! cooling setting produces, how much TEC drive (if any) keeps the die
//! at the safety target, and what does that electricity cost?*

use h2p_teg::tec::Tec;
use h2p_units::{Amperes, Celsius, DegC, Utilization, Watts};

/// Outcome of a TEC intervention decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TecAction {
    /// Drive current commanded (zero when no intervention is needed).
    pub current: Amperes,
    /// Electrical power drawn by the TEC.
    pub input_power: Watts,
    /// Heat pumped off the die.
    pub pumped: Watts,
    /// Whether the target is met (false = TEC saturated, hot spot
    /// persists and the chilled loop must step in).
    pub target_met: bool,
}

impl TecAction {
    /// The no-op action.
    #[must_use]
    pub fn idle() -> Self {
        TecAction {
            current: Amperes::zero(),
            input_power: Watts::zero(),
            pumped: Watts::zero(),
            target_met: true,
        }
    }
}

/// Per-CPU TEC hot-spot controller.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HotSpotController {
    tec: Tec,
}

impl HotSpotController {
    /// Creates a controller around a TEC device.
    #[must_use]
    pub fn new(tec: Tec) -> Self {
        HotSpotController { tec }
    }

    /// The TEC device.
    #[must_use]
    pub fn tec(&self) -> &Tec {
        &self.tec
    }

    /// Decides the TEC drive for a die currently at `die` that must be
    /// brought to `target`, given the die-to-coolant coupling
    /// `coupling_k_per_w` (K/W) of the present cooling setting and the
    /// coolant temperature `coolant` at the TEC's hot side.
    ///
    /// The required extra heat extraction is
    /// `ΔQ = (T_die − T_target)/coupling`; the controller commands the
    /// minimum current that pumps it, or saturates at the optimal
    /// current if the demand is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `coupling_k_per_w` is not strictly positive.
    #[must_use]
    pub fn act(
        &self,
        die: Celsius,
        target: Celsius,
        coolant: Celsius,
        coupling_k_per_w: f64,
    ) -> TecAction {
        assert!(coupling_k_per_w > 0.0, "coupling must be positive");
        if die <= target {
            return TecAction::idle();
        }
        let demand = Watts::new((die - target).value() / coupling_k_per_w);
        // Cold side of the TEC sits on the die (at target once settled),
        // hot side on the coolant plate.
        let hot_side = coolant.max(target);
        match self.tec.current_for_demand(demand, target, hot_side) {
            Some(current) => {
                let dt = hot_side - target;
                TecAction {
                    current,
                    input_power: self.tec.input_power(current, dt.max(DegC::zero())),
                    pumped: demand,
                    target_met: true,
                }
            }
            None => {
                let current = self.tec.optimal_current(target);
                let pumped = self.tec.cooling_power(current, target, hot_side);
                let dt = hot_side - target;
                TecAction {
                    current,
                    input_power: self.tec.input_power(current, dt.max(DegC::zero())),
                    pumped: pumped.max(Watts::zero()),
                    target_met: false,
                }
            }
        }
    }

    /// Convenience: whether a sudden utilization spike from a warm-water
    /// operating point can be fully absorbed by the TEC (the cooling-lag
    /// scenario of Sec. II-B).
    #[must_use]
    pub fn absorbs_spike(
        &self,
        die_after_spike: Celsius,
        target: Celsius,
        coolant: Celsius,
        coupling_k_per_w: f64,
        _spike: Utilization,
    ) -> bool {
        self.act(die_after_spike, target, coolant, coupling_k_per_w)
            .target_met
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> HotSpotController {
        HotSpotController::default()
    }

    #[test]
    fn no_action_below_target() {
        let a = controller().act(
            Celsius::new(55.0),
            Celsius::new(62.0),
            Celsius::new(48.0),
            0.3,
        );
        assert_eq!(a, TecAction::idle());
    }

    #[test]
    fn moderate_overshoot_handled() {
        // Die 4 degC over target with 0.3 K/W coupling: needs ~13 W of
        // pumping, well inside a TEC1-12706's envelope.
        let a = controller().act(
            Celsius::new(66.0),
            Celsius::new(62.0),
            Celsius::new(50.0),
            0.3,
        );
        assert!(a.target_met);
        assert!(a.current.value() > 0.0);
        assert!((a.pumped.value() - 4.0 / 0.3).abs() < 1e-9);
        assert!(a.input_power.value() > 0.0);
    }

    #[test]
    fn extreme_overshoot_saturates() {
        // 30 degC over target at tight coupling: demand ~100 W exceeds
        // the TEC's capability; it saturates and reports failure.
        let a = controller().act(
            Celsius::new(92.0),
            Celsius::new(62.0),
            Celsius::new(50.0),
            0.3,
        );
        assert!(!a.target_met);
        assert!(a.pumped.value() > 0.0, "still pumps what it can");
    }

    #[test]
    fn bigger_overshoot_costs_more_power() {
        let c = controller();
        let small = c.act(
            Celsius::new(63.0),
            Celsius::new(62.0),
            Celsius::new(50.0),
            0.3,
        );
        let large = c.act(
            Celsius::new(66.0),
            Celsius::new(62.0),
            Celsius::new(50.0),
            0.3,
        );
        assert!(large.input_power > small.input_power);
    }

    #[test]
    fn spike_absorption_narrative() {
        // Sec. II-B scenario: warm water, sudden spike. Die would reach
        // ~67 degC; TEC absorbs it without waiting minutes for cold water.
        let ok = controller().absorbs_spike(
            Celsius::new(67.0),
            Celsius::new(62.0),
            Celsius::new(50.0),
            0.3,
            Utilization::FULL,
        );
        assert!(ok);
    }
}
