//! Evaporative cooling tower (approach-temperature model).
//!
//! "In FWS, heat is removed mainly by the cooling tower via evaporation.
//! If the ambient air temperature is high, chillers need to further cool
//! the facility water" (paper Sec. II-A). A tower can cool water down to
//! the ambient wet-bulb temperature plus an *approach*; anything colder
//! requires the chiller. Warm-water operation keeps the supply
//! set-point far above that limit, which is exactly why H2P's setting
//! optimizer can usually run chiller-free.

use crate::CoolingError;
use h2p_units::{Celsius, DegC, Watts};

/// An evaporative cooling tower.
///
/// ```
/// use h2p_cooling::CoolingTower;
/// use h2p_units::{Celsius, DegC};
///
/// let tower = CoolingTower::paper_default();
/// let floor = tower.coldest_supply(Celsius::new(24.0));
/// assert_eq!(floor, Celsius::new(29.0)); // wet bulb + 5 degC approach
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingTower {
    approach: DegC,
    /// Fan + spray-pump electrical power per watt of heat rejected.
    overhead_per_watt: f64,
}

impl CoolingTower {
    /// Creates a tower with the given approach temperature and
    /// electrical overhead per watt of heat rejected.
    ///
    /// # Errors
    ///
    /// Returns [`CoolingError::NonPositiveParameter`] if the approach is
    /// not strictly positive or the overhead is negative.
    pub fn new(approach: DegC, overhead_per_watt: f64) -> Result<Self, CoolingError> {
        if !(approach.value() > 0.0) {
            return Err(CoolingError::NonPositiveParameter {
                name: "approach",
                value: approach.value(),
            });
        }
        if overhead_per_watt < 0.0 {
            return Err(CoolingError::NonPositiveParameter {
                name: "overhead_per_watt",
                value: overhead_per_watt,
            });
        }
        Ok(CoolingTower {
            approach,
            overhead_per_watt,
        })
    }

    /// A representative mid-size tower: 5 °C approach, 1 % electrical
    /// overhead (fans and spray pumps) per watt rejected.
    #[must_use]
    pub fn paper_default() -> Self {
        CoolingTower {
            approach: DegC::new(5.0),
            overhead_per_watt: 0.01,
        }
    }

    /// The coldest supply temperature achievable at an ambient wet-bulb
    /// temperature.
    #[must_use]
    pub fn coldest_supply(&self, wet_bulb: Celsius) -> Celsius {
        wet_bulb + self.approach
    }

    /// Whether the tower alone can hold the supply set-point (no chiller
    /// needed).
    #[must_use]
    pub fn covers(&self, set_point: Celsius, wet_bulb: Celsius) -> bool {
        set_point >= self.coldest_supply(wet_bulb)
    }

    /// Electrical power to reject `heat` through the tower.
    #[must_use]
    pub fn overhead_power(&self, heat: Watts) -> Watts {
        Watts::new(heat.value().max(0.0) * self.overhead_per_watt)
    }

    /// How much the chiller must depress the tower's supply to reach a
    /// set-point below the tower floor (zero when the tower covers it).
    #[must_use]
    pub fn chiller_depression(&self, set_point: Celsius, wet_bulb: Celsius) -> DegC {
        let floor = self.coldest_supply(wet_bulb);
        if set_point >= floor {
            DegC::zero()
        } else {
            floor - set_point
        }
    }
}

impl Default for CoolingTower {
    fn default() -> Self {
        CoolingTower::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_water_needs_no_chiller() {
        // The H2P regime: a 45-55 degC supply is far above the tower
        // floor at any plausible wet bulb.
        let tower = CoolingTower::paper_default();
        for wb in [10.0, 18.0, 24.0, 28.0] {
            assert!(tower.covers(Celsius::new(45.0), Celsius::new(wb)));
            assert_eq!(
                tower.chiller_depression(Celsius::new(45.0), Celsius::new(wb)),
                DegC::zero()
            );
        }
    }

    #[test]
    fn cold_water_needs_chiller() {
        // Traditional 7-10 degC supply is below the tower floor.
        let tower = CoolingTower::paper_default();
        let depression = tower.chiller_depression(Celsius::new(8.0), Celsius::new(24.0));
        assert_eq!(depression, DegC::new(21.0));
        assert!(!tower.covers(Celsius::new(8.0), Celsius::new(24.0)));
    }

    #[test]
    fn overhead_scales_with_heat() {
        let tower = CoolingTower::paper_default();
        assert_eq!(tower.overhead_power(Watts::new(1000.0)), Watts::new(10.0));
        assert_eq!(tower.overhead_power(Watts::new(-5.0)), Watts::zero());
    }

    #[test]
    fn validation() {
        assert!(CoolingTower::new(DegC::new(0.0), 0.01).is_err());
        assert!(CoolingTower::new(DegC::new(5.0), -0.1).is_err());
    }
}
