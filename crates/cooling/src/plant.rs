//! Whole-plant cooling-energy accounting.
//!
//! Combines the tower, chiller and facility-loop pumping into one
//! energy statement per control interval, so the simulator can report
//! cooling power, partial PUE and ERE alongside TEG harvest. This is
//! the machinery behind the paper's motivating claims — "raising the
//! temperature of facility water from 7-10 °C to 18-20 °C \[saves\] as
//! much as 40 %" of cooling energy (Sec. I) — and behind the ERE metric
//! of Sec. II-C.

use crate::chiller::Chiller;
use crate::tower::CoolingTower;
use crate::CoolingError;
use h2p_units::{Celsius, LitersPerHour, Watts, WATER_SPECIFIC_HEAT};

/// The instantaneous load the plant must serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantLoad {
    /// Heat arriving from the IT equipment (all server branches).
    pub heat: Watts,
    /// The supply (inlet) temperature the controller demands.
    pub supply_setpoint: Celsius,
    /// Total TCS loop flow (for the chiller's flow-through term).
    pub total_flow: LitersPerHour,
}

/// Electrical power drawn by each plant component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlantPower {
    /// Tower fans and spray pumps.
    pub tower: Watts,
    /// Chiller compressor (zero whenever the tower floor is above the
    /// set-point — the warm-water regime).
    pub chiller: Watts,
    /// Facility-loop circulation pumps.
    pub fws_pumps: Watts,
}

impl PlantPower {
    /// Total plant electrical power.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.tower + self.chiller + self.fws_pumps
    }
}

/// A cooling plant: tower + chiller + facility pumping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingPlant {
    tower: CoolingTower,
    chiller: Chiller,
    /// FWS pumping power per watt of heat moved.
    fws_overhead_per_watt: f64,
    /// Ambient wet-bulb temperature (drives the tower floor).
    wet_bulb: Celsius,
}

impl CoolingPlant {
    /// Creates a plant.
    ///
    /// # Errors
    ///
    /// Returns [`CoolingError::NonPositiveParameter`] if the FWS
    /// overhead is negative.
    pub fn new(
        tower: CoolingTower,
        chiller: Chiller,
        fws_overhead_per_watt: f64,
        wet_bulb: Celsius,
    ) -> Result<Self, CoolingError> {
        if fws_overhead_per_watt < 0.0 {
            return Err(CoolingError::NonPositiveParameter {
                name: "fws_overhead_per_watt",
                value: fws_overhead_per_watt,
            });
        }
        Ok(CoolingPlant {
            tower,
            chiller,
            fws_overhead_per_watt,
            wet_bulb,
        })
    }

    /// A representative plant: paper tower and chiller, 2 % FWS pumping
    /// overhead, 24 °C ambient wet bulb (a warm climate, where the
    /// chiller question actually bites).
    #[must_use]
    pub fn paper_default() -> Self {
        CoolingPlant {
            tower: CoolingTower::paper_default(),
            chiller: Chiller::paper_default(),
            fws_overhead_per_watt: 0.02,
            wet_bulb: Celsius::new(24.0),
        }
    }

    /// Overrides the ambient wet bulb (climate sweeps).
    #[must_use]
    pub fn with_wet_bulb(mut self, wet_bulb: Celsius) -> Self {
        self.wet_bulb = wet_bulb;
        self
    }

    /// The ambient wet-bulb temperature.
    #[must_use]
    pub fn wet_bulb(&self) -> Celsius {
        self.wet_bulb
    }

    /// Whether the chiller must run for a given supply set-point.
    #[must_use]
    pub fn chiller_required(&self, supply_setpoint: Celsius) -> bool {
        !self.tower.covers(supply_setpoint, self.wet_bulb)
    }

    /// Electrical power to serve a load.
    ///
    /// The tower always rejects the full heat (plus the chiller's own
    /// compressor heat when it runs); the chiller runs only when the
    /// set-point is below the tower floor, and then must continuously
    /// depress the full loop flow by the shortfall.
    #[must_use]
    pub fn power(&self, load: PlantLoad) -> PlantPower {
        let depression = self
            .tower
            .chiller_depression(load.supply_setpoint, self.wet_bulb);
        let chiller = if depression.value() > 0.0 && load.total_flow.value() > 0.0 {
            let heat_rate =
                load.total_flow.mass_flow().value() * WATER_SPECIFIC_HEAT * depression.value();
            self.chiller.power_to_remove(Watts::new(heat_rate))
        } else {
            Watts::zero()
        };
        let rejected = load.heat + chiller; // compressor heat is rejected too
        PlantPower {
            tower: self.tower.overhead_power(rejected),
            chiller,
            fws_pumps: Watts::new(load.heat.value().max(0.0) * self.fws_overhead_per_watt),
        }
    }

    /// The fractional cooling-energy saving of running at `warm`
    /// supply instead of `cold`, for the same heat and flow — the
    /// paper's Sec. I motivation quantified.
    ///
    /// # Panics
    ///
    /// Panics if the cold-supply plant draws no power (cannot happen
    /// for positive heat).
    #[must_use]
    pub fn warm_water_saving(
        &self,
        heat: Watts,
        total_flow: LitersPerHour,
        cold: Celsius,
        warm: Celsius,
    ) -> f64 {
        let at = |supply: Celsius| {
            self.power(PlantLoad {
                heat,
                supply_setpoint: supply,
                total_flow,
            })
            .total()
        };
        let cold_power = at(cold);
        assert!(
            cold_power.value() > 0.0,
            "cold-supply plant must draw power"
        );
        1.0 - at(warm) / cold_power
    }
}

impl Default for CoolingPlant {
    fn default() -> Self {
        CoolingPlant::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(heat_w: f64, supply: f64, flow: f64) -> PlantLoad {
        PlantLoad {
            heat: Watts::new(heat_w),
            supply_setpoint: Celsius::new(supply),
            total_flow: LitersPerHour::new(flow),
        }
    }

    #[test]
    fn warm_water_runs_chiller_free() {
        let plant = CoolingPlant::paper_default();
        assert!(!plant.chiller_required(Celsius::new(45.0)));
        let p = plant.power(load(40_000.0, 50.0, 2_000.0));
        assert_eq!(p.chiller, Watts::zero());
        assert!(p.tower.value() > 0.0);
        assert!(p.fws_pumps.value() > 0.0);
        // Chiller-free cooling overhead stays a few percent of IT.
        assert!(p.total().value() < 0.05 * 40_000.0);
    }

    #[test]
    fn cold_water_pays_the_chiller() {
        let plant = CoolingPlant::paper_default();
        assert!(plant.chiller_required(Celsius::new(8.0)));
        let p = plant.power(load(40_000.0, 8.0, 2_000.0));
        assert!(p.chiller.value() > 0.0);
        assert!(p.total() > plant.power(load(40_000.0, 50.0, 2_000.0)).total());
    }

    #[test]
    fn paper_motivation_saving_band() {
        // Sec. I: raising supply from 7-10 degC to 18-20 degC saves
        // ~40 % of cooling energy. Our plant model must land in that
        // decade for a realistic load.
        let plant = CoolingPlant::paper_default();
        let saving = plant.warm_water_saving(
            Watts::new(40_000.0),
            LitersPerHour::new(2_000.0),
            Celsius::new(8.0),
            Celsius::new(19.0),
        );
        assert!((0.25..=0.75).contains(&saving), "saving = {saving}");
        // Going all the way to the H2P regime (50 degC) eliminates the
        // chiller entirely: bigger saving still.
        let warm = plant.warm_water_saving(
            Watts::new(40_000.0),
            LitersPerHour::new(2_000.0),
            Celsius::new(8.0),
            Celsius::new(50.0),
        );
        assert!(warm > saving);
    }

    #[test]
    fn compressor_heat_reaches_the_tower() {
        let plant = CoolingPlant::paper_default();
        let cold = plant.power(load(40_000.0, 8.0, 2_000.0));
        let warm = plant.power(load(40_000.0, 50.0, 2_000.0));
        // The tower rejects more when the chiller also dumps its
        // compressor heat.
        assert!(cold.tower > warm.tower);
    }

    #[test]
    fn cooler_climate_needs_less_chiller() {
        let mild = CoolingPlant::paper_default().with_wet_bulb(Celsius::new(10.0));
        let hot = CoolingPlant::paper_default().with_wet_bulb(Celsius::new(28.0));
        let l = load(40_000.0, 18.0, 2_000.0);
        assert!(mild.power(l).chiller < hot.power(l).chiller);
        // At 10 degC wet bulb an 18 degC set-point is tower-coverable...
        assert!(!mild.chiller_required(Celsius::new(18.0)));
        // ...but not in the hot climate.
        assert!(hot.chiller_required(Celsius::new(18.0)));
    }

    #[test]
    fn zero_heat_zero_power_except_chiller_depression() {
        let plant = CoolingPlant::paper_default();
        let p = plant.power(load(0.0, 50.0, 0.0));
        assert_eq!(p.total(), Watts::zero());
    }

    #[test]
    fn validation() {
        assert!(CoolingPlant::new(
            CoolingTower::paper_default(),
            Chiller::paper_default(),
            -0.01,
            Celsius::new(24.0)
        )
        .is_err());
    }
}
