//! The cooling-setting optimizer (paper Sec. V-B1, Steps 1-3).
//!
//! Every control interval the paper's procedure:
//!
//! 1. takes the control utilization — `U_max` of the circulation under
//!    the baseline policy, `U_avg` under load balancing — and slices the
//!    lookup space at that plane;
//! 2. keeps the settings whose die temperature lies within
//!    `[T_safe − 1, T_safe + 1] °C` (the region `X`);
//! 3. evaluates the TEG output of every setting in the intersection and
//!    picks the maximum.
//!
//! Two reproduction-specific refinements, both documented in DESIGN.md:
//! the objective is TEG power *net of pump power* (the paper notes the
//! pump cost of high flow in Sec. IV-B1 and its chosen settings reflect
//! it), and when no setting reaches the safety band (very high load) the
//! optimizer falls back to the safest feasible setting rather than
//! failing.

use crate::CoolingError;
use h2p_hydraulics::Pump;
use h2p_server::{CoolingSetting, LookupSpace};
use h2p_teg::TegModule;
use h2p_telemetry::{Counter, Registry};
use h2p_units::{Celsius, DegC, Utilization, Watts};

/// Counter name: decisions taken (one per [`CoolingOptimizer::optimize`] call).
pub const DECISIONS_COUNTER: &str = "optimizer.decisions";

/// Counter name: candidate settings scored across all decisions — the
/// search-iteration count of the Sec. V-B procedure.
pub const SCORE_EVALS_COUNTER: &str = "optimizer.score_evals";

/// Counter name: decisions that missed the safety band entirely and
/// fell back to a full-grid scan.
pub const FALLBACK_SCANS_COUNTER: &str = "optimizer.fallback_scans";

/// The optimizer's observation bundle: counters resolved once at
/// attach time so the per-decision hot path touches no name tables.
///
/// Defaults to disabled — a single `None` behind one check, so an
/// unattached optimizer pays one branch per observation and allocates
/// nothing. Attach with [`CoolingOptimizer::with_telemetry`].
#[derive(Debug, Clone, Default)]
pub struct OptimizerTelemetry {
    inner: Option<TelemetryInner>,
}

#[derive(Debug, Clone)]
struct TelemetryInner {
    decisions: Counter,
    score_evals: Counter,
    fallback_scans: Counter,
}

impl OptimizerTelemetry {
    /// Resolves the optimizer counters in `registry`. A disabled
    /// registry yields a disabled (observation-free) bundle.
    #[must_use]
    pub fn from_registry(registry: &Registry) -> Self {
        if !registry.is_enabled() {
            return Self::disabled();
        }
        OptimizerTelemetry {
            inner: Some(TelemetryInner {
                decisions: registry.counter(DECISIONS_COUNTER),
                score_evals: registry.counter(SCORE_EVALS_COUNTER),
                fallback_scans: registry.counter(FALLBACK_SCANS_COUNTER),
            }),
        }
    }

    /// The observation-free bundle.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether observations go anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn note_decision(&self) {
        if let Some(inner) = &self.inner {
            inner.decisions.incr();
        }
    }

    fn note_score_evals(&self, n: usize) {
        if let Some(inner) = &self.inner {
            inner.score_evals.add(u64::try_from(n).unwrap_or(u64::MAX));
        }
    }

    fn note_fallback_scan(&self) {
        if let Some(inner) = &self.inner {
            inner.fallback_scans.incr();
        }
    }
}

/// The setting chosen by the optimizer, with its predicted budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizedSetting {
    /// The chosen `{f, T_warm_in}`.
    pub setting: CoolingSetting,
    /// Predicted per-server TEG output at the control utilization.
    pub teg_power: Watts,
    /// Per-server pump power at the chosen flow.
    pub pump_power: Watts,
    /// `teg_power − pump_power` (the optimizer's objective).
    pub net_power: Watts,
    /// Predicted coolant outlet temperature at the control utilization.
    pub outlet: Celsius,
    /// Predicted die temperature at the control utilization.
    pub cpu_temperature: Celsius,
    /// True when the setting lies inside the safety band; false when the
    /// optimizer had to fall back below it (very high load).
    pub in_band: bool,
}

/// The Sec. V-B cooling-setting optimizer.
///
/// The optimizer is a *pure function* of its construction parameters:
/// [`optimize`](CoolingOptimizer::optimize) reads the lookup space and
/// never mutates anything, so one optimizer can be built per distinct
/// cold-source temperature and reused across every control interval and
/// every worker thread of a simulation run (it is `Sync`; the
/// compile-time assertion below keeps that guarantee from regressing).
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct CoolingOptimizer<'a> {
    space: &'a LookupSpace,
    teg: TegModule,
    pump: Pump,
    t_safe: Celsius,
    tolerance: DegC,
    cold_water: Celsius,
    telemetry: OptimizerTelemetry,
}

impl<'a> CoolingOptimizer<'a> {
    /// Creates an optimizer over a lookup space.
    ///
    /// # Errors
    ///
    /// Returns [`CoolingError::NonPositiveParameter`] if the tolerance
    /// is not strictly positive.
    pub fn new(
        space: &'a LookupSpace,
        teg: TegModule,
        pump: Pump,
        t_safe: Celsius,
        tolerance: DegC,
        cold_water: Celsius,
    ) -> Result<Self, CoolingError> {
        if !(tolerance.value() > 0.0) {
            return Err(CoolingError::NonPositiveParameter {
                name: "tolerance",
                value: tolerance.value(),
            });
        }
        Ok(CoolingOptimizer {
            space,
            teg,
            pump,
            t_safe,
            tolerance,
            cold_water,
            telemetry: OptimizerTelemetry::disabled(),
        })
    }

    /// The paper's configuration: 12-TEG module, prototype pump,
    /// `T_safe = 62 °C` (≈ 80 % of the E5-2650 V3's 78.9 °C limit,
    /// the value used in Fig. 13), ±1 °C band, 20 °C cold water.
    #[must_use]
    pub fn paper_default(space: &'a LookupSpace) -> Self {
        CoolingOptimizer {
            space,
            teg: TegModule::paper_module(),
            pump: Pump::paper_tcs_pump(),
            t_safe: Celsius::new(62.0),
            tolerance: DegC::new(1.0),
            cold_water: Celsius::new(20.0),
            telemetry: OptimizerTelemetry::disabled(),
        }
    }

    /// Attaches the optimizer's decision/search counters to `registry`
    /// (see [`OptimizerTelemetry`]). A disabled registry leaves the
    /// optimizer observation-free. Purely additive: the chosen
    /// settings are bit-identical with or without telemetry.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.telemetry = OptimizerTelemetry::from_registry(registry);
        self
    }

    /// Overrides the cold-water temperature (the cold-source ablation).
    #[must_use]
    pub fn with_cold_water(mut self, cold: Celsius) -> Self {
        self.cold_water = cold;
        self
    }

    /// Overrides the TEG module (the TEG-count ablation).
    #[must_use]
    pub fn with_module(mut self, teg: TegModule) -> Self {
        self.teg = teg;
        self
    }

    /// Overrides the safety target.
    #[must_use]
    pub fn with_t_safe(mut self, t_safe: Celsius) -> Self {
        self.t_safe = t_safe;
        self
    }

    /// The safety target.
    #[must_use]
    pub fn t_safe(&self) -> Celsius {
        self.t_safe
    }

    /// The cold-water temperature assumed for the TEG cold side.
    #[must_use]
    pub fn cold_water(&self) -> Celsius {
        self.cold_water
    }

    /// The TEG module used for power prediction.
    #[must_use]
    pub fn module(&self) -> &TegModule {
        &self.teg
    }

    /// Scores one candidate setting at the control utilization.
    fn score(
        &self,
        u: Utilization,
        setting: CoolingSetting,
        in_band: bool,
    ) -> Option<OptimizedSetting> {
        let outlet = self
            .space
            .outlet_temperature(u, setting.flow, setting.inlet)
            .ok()?;
        let die = self
            .space
            .cpu_temperature(u, setting.flow, setting.inlet)
            .ok()?;
        let dt = outlet - self.cold_water;
        let teg_power = self.teg.max_power(dt);
        let pump_power = self.pump.power(setting.flow).ok()?;
        Some(OptimizedSetting {
            setting,
            teg_power,
            pump_power,
            net_power: teg_power - pump_power,
            outlet,
            cpu_temperature: die,
            in_band,
        })
    }

    /// Runs Steps 1-3 for a control utilization and returns the best
    /// setting, or `None` if the lookup space has no feasible setting at
    /// all (cannot happen on the paper grid).
    #[must_use]
    pub fn optimize(&self, u_control: Utilization) -> Option<OptimizedSetting> {
        self.telemetry.note_decision();
        // Step 2+3: settings in the safety band.
        let banded = self
            .space
            .safe_settings(u_control, self.t_safe, self.tolerance);
        self.telemetry.note_score_evals(banded.len());
        let best_banded = banded
            .into_iter()
            .filter_map(|s| self.score(u_control, s, true))
            .filter(|s| s.cpu_temperature <= self.t_safe + self.tolerance)
            .max_by(|a, b| a.net_power.cmp(&b.net_power));
        if let Some(best) = best_banded {
            return Some(best);
        }
        // Fallback: nothing lands in the band. Scan the whole grid for
        // safe settings (die <= t_safe) and take the best net power; if
        // even that fails, take the globally coolest setting.
        self.telemetry.note_fallback_scan();
        self.telemetry
            .note_score_evals(self.space.flow_axis().len() * self.space.inlet_axis().len());
        let mut best_safe: Option<OptimizedSetting> = None;
        let mut coolest: Option<OptimizedSetting> = None;
        for &f in self.space.flow_axis() {
            for &t in self.space.inlet_axis() {
                let setting = CoolingSetting {
                    flow: h2p_units::LitersPerHour::new(f),
                    inlet: Celsius::new(t),
                };
                let Some(scored) = self.score(u_control, setting, false) else {
                    continue;
                };
                if scored.cpu_temperature <= self.t_safe
                    && best_safe
                        .as_ref()
                        .is_none_or(|b| scored.net_power > b.net_power)
                {
                    best_safe = Some(scored);
                }
                if coolest
                    .as_ref()
                    .is_none_or(|c| scored.cpu_temperature < c.cpu_temperature)
                {
                    coolest = Some(scored);
                }
            }
        }
        best_safe.or(coolest)
    }
}

// Shared-reuse guarantee: the parallel simulation engine hands one
// `&CoolingOptimizer` to every worker thread of a control interval.
#[allow(dead_code)]
fn _assert_optimizer_is_sync() {
    fn is_sync<T: Sync>() {}
    is_sync::<CoolingOptimizer<'static>>();
    is_sync::<OptimizedSetting>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_server::ServerModel;

    fn space() -> LookupSpace {
        LookupSpace::paper_grid(&ServerModel::paper_default()).unwrap()
    }

    #[test]
    fn telemetry_counts_the_search_without_changing_the_choice() {
        let space = space();
        let registry = h2p_telemetry::Registry::new();
        let plain = CoolingOptimizer::paper_default(&space);
        let observed = CoolingOptimizer::paper_default(&space).with_telemetry(&registry);
        assert!(observed.telemetry.is_enabled());

        for x in [0.1, 0.5, 0.9] {
            assert_eq!(plain.optimize(u(x)), observed.optimize(u(x)));
        }
        let counters: std::collections::BTreeMap<String, u64> =
            registry.counters().into_iter().collect();
        assert_eq!(counters[DECISIONS_COUNTER], 3);
        assert!(
            counters[SCORE_EVALS_COUNTER] >= counters[DECISIONS_COUNTER],
            "each decision scores at least one candidate"
        );

        // A disabled registry attaches a disabled bundle.
        let unattached =
            CoolingOptimizer::paper_default(&space).with_telemetry(&Registry::disabled());
        assert!(!unattached.telemetry.is_enabled());
        assert!(unattached.optimize(u(0.5)).is_some());
    }

    fn u(x: f64) -> Utilization {
        Utilization::new(x).unwrap()
    }

    #[test]
    fn low_load_reaches_h2p_operating_point() {
        // At ~15 % load the chosen setting should admit a warm inlet in
        // the low 50s and generate >= 4 W from 12 TEGs (the Fig. 14
        // regime).
        let space = space();
        let opt = CoolingOptimizer::paper_default(&space);
        let best = opt.optimize(u(0.15)).expect("feasible");
        assert!(best.in_band);
        assert!(
            best.setting.inlet.value() > 46.0 && best.setting.inlet.value() < 60.0,
            "inlet {}",
            best.setting.inlet
        );
        assert!(best.teg_power.value() > 4.0, "teg {}", best.teg_power);
        assert!(best.net_power.value() > 3.5);
    }

    #[test]
    fn safety_never_violated_in_band() {
        let space = space();
        let opt = CoolingOptimizer::paper_default(&space);
        for x in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let best = opt.optimize(u(x)).expect("feasible");
            assert!(
                best.cpu_temperature <= opt.t_safe() + DegC::new(1.0 + 1e-9),
                "u = {x}: die {}",
                best.cpu_temperature
            );
        }
    }

    #[test]
    fn generation_decreases_with_load() {
        // Fig. 14's anti-correlation: higher control utilization forces
        // colder inlets and lower TEG output.
        let space = space();
        let opt = CoolingOptimizer::paper_default(&space);
        let lo = opt.optimize(u(0.1)).unwrap().teg_power;
        let mid = opt.optimize(u(0.5)).unwrap().teg_power;
        let hi = opt.optimize(u(0.9)).unwrap().teg_power;
        assert!(lo > mid && mid > hi, "lo {lo} mid {mid} hi {hi}");
    }

    #[test]
    fn colder_source_generates_more() {
        let space = space();
        let base = CoolingOptimizer::paper_default(&space)
            .optimize(u(0.2))
            .unwrap()
            .teg_power;
        let colder = CoolingOptimizer::paper_default(&space)
            .with_cold_water(Celsius::new(15.0))
            .optimize(u(0.2))
            .unwrap()
            .teg_power;
        assert!(colder > base);
    }

    #[test]
    fn more_tegs_generate_more() {
        let space = space();
        let base = CoolingOptimizer::paper_default(&space)
            .optimize(u(0.2))
            .unwrap()
            .teg_power;
        let doubled = CoolingOptimizer::paper_default(&space)
            .with_module(h2p_teg::TegModule::new(h2p_teg::TegDevice::sp1848_27145(), 24).unwrap())
            .optimize(u(0.2))
            .unwrap()
            .teg_power;
        assert!(doubled > base * 1.5);
    }

    #[test]
    fn lower_t_safe_is_more_conservative() {
        let space = space();
        let strict = CoolingOptimizer::paper_default(&space)
            .with_t_safe(Celsius::new(55.0))
            .optimize(u(0.2))
            .unwrap();
        let relaxed = CoolingOptimizer::paper_default(&space)
            .optimize(u(0.2))
            .unwrap();
        assert!(strict.setting.inlet < relaxed.setting.inlet);
        assert!(strict.teg_power < relaxed.teg_power);
    }

    #[test]
    fn full_load_falls_back_safely() {
        // At u = 1.0 with T_safe = 55 the band may be unreachable on the
        // grid; the fallback must still return a safe setting.
        let space = space();
        let opt = CoolingOptimizer::paper_default(&space).with_t_safe(Celsius::new(55.0));
        let best = opt.optimize(Utilization::FULL).expect("feasible");
        assert!(best.cpu_temperature <= Celsius::new(55.0) + DegC::new(1.0 + 1e-9));
    }

    #[test]
    fn validation() {
        let space = space();
        assert!(CoolingOptimizer::new(
            &space,
            TegModule::paper_module(),
            Pump::paper_tcs_pump(),
            Celsius::new(62.0),
            DegC::new(0.0),
            Celsius::new(20.0),
        )
        .is_err());
    }
}
