//! Vapor-compression chiller (paper Eq. 10).

use crate::CoolingError;
use h2p_units::{
    DegC, Joules, LitersPerHour, Seconds, Watts, WATER_DENSITY_KG_PER_L, WATER_SPECIFIC_HEAT,
};

/// A chiller characterized by its coefficient of performance.
///
/// The paper models chiller energy as
/// `E = C_water · ΔT · n · f · t · ρ / COP` (Eq. 10): the heat that must
/// be removed to depress the supply temperature of the circulation's
/// total flow `n·f` by `ΔT` over time `t`, divided by the COP.
///
/// ```
/// use h2p_cooling::Chiller;
/// use h2p_units::{DegC, LitersPerHour, Seconds};
///
/// let chiller = Chiller::paper_default(); // COP = 3.6
/// let e = chiller.energy_for_supply_depression(
///     DegC::new(5.0),
///     LitersPerHour::new(50.0 * 40.0), // 40 servers at 50 L/H
///     Seconds::hours(1.0),
/// );
/// assert!(e.value() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chiller {
    cop: f64,
}

impl Chiller {
    /// Creates a chiller with the given COP.
    ///
    /// # Errors
    ///
    /// Returns [`CoolingError::NonPositiveParameter`] if `cop` is not
    /// strictly positive.
    pub fn new(cop: f64) -> Result<Self, CoolingError> {
        if !(cop > 0.0) {
            return Err(CoolingError::NonPositiveParameter {
                name: "cop",
                value: cop,
            });
        }
        Ok(Chiller { cop })
    }

    /// The paper's assumed chiller: COP = 3.6 (following \[24\]).
    #[must_use]
    pub fn paper_default() -> Self {
        Chiller { cop: 3.6 }
    }

    /// The coefficient of performance.
    #[must_use]
    pub fn cop(&self) -> f64 {
        self.cop
    }

    /// Electrical power drawn to remove `heat` continuously.
    #[must_use]
    pub fn power_to_remove(&self, heat: Watts) -> Watts {
        Watts::new(heat.value().max(0.0) / self.cop)
    }

    /// Eq. 10: electrical energy to depress the supply temperature of
    /// `total_flow` by `depression` over `duration`.
    ///
    /// A non-positive depression costs nothing (the cooling tower covers
    /// the load without the chiller).
    #[must_use]
    pub fn energy_for_supply_depression(
        &self,
        depression: DegC,
        total_flow: LitersPerHour,
        duration: Seconds,
    ) -> Joules {
        if depression.value() <= 0.0 || total_flow.value() <= 0.0 || duration.value() <= 0.0 {
            return Joules::zero();
        }
        let mass_kg = total_flow.value() * WATER_DENSITY_KG_PER_L * duration.value() / 3600.0;
        let heat = WATER_SPECIFIC_HEAT * depression.value() * mass_kg;
        Joules::new(heat / self.cop)
    }
}

impl Default for Chiller {
    fn default() -> Self {
        Chiller::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq10_hand_computation() {
        // 1000 L over an hour depressed by 1 degC:
        // heat = 4200 J/(kg degC) * 1 degC * 1000 kg = 4.2e6 J;
        // at COP 3.6 the chiller draws 4.2e6/3.6 J.
        let chiller = Chiller::paper_default();
        let e = chiller.energy_for_supply_depression(
            DegC::new(1.0),
            LitersPerHour::new(1000.0),
            Seconds::hours(1.0),
        );
        assert!((e.value() - 4.2e6 / 3.6).abs() < 1e-6);
    }

    #[test]
    fn scales_linearly_in_all_factors() {
        let c = Chiller::paper_default();
        let base = c.energy_for_supply_depression(
            DegC::new(2.0),
            LitersPerHour::new(100.0),
            Seconds::hours(1.0),
        );
        let double_dt = c.energy_for_supply_depression(
            DegC::new(4.0),
            LitersPerHour::new(100.0),
            Seconds::hours(1.0),
        );
        let double_flow = c.energy_for_supply_depression(
            DegC::new(2.0),
            LitersPerHour::new(200.0),
            Seconds::hours(1.0),
        );
        let double_time = c.energy_for_supply_depression(
            DegC::new(2.0),
            LitersPerHour::new(100.0),
            Seconds::hours(2.0),
        );
        for e in [double_dt, double_flow, double_time] {
            assert!((e.value() - 2.0 * base.value()).abs() < 1e-9);
        }
    }

    #[test]
    fn no_depression_no_energy() {
        let c = Chiller::paper_default();
        assert_eq!(
            c.energy_for_supply_depression(
                DegC::new(0.0),
                LitersPerHour::new(100.0),
                Seconds::hours(1.0)
            ),
            Joules::zero()
        );
        assert_eq!(
            c.energy_for_supply_depression(
                DegC::new(-3.0),
                LitersPerHour::new(100.0),
                Seconds::hours(1.0)
            ),
            Joules::zero()
        );
    }

    #[test]
    fn higher_cop_cheaper() {
        let heat = Watts::new(1000.0);
        let weak = Chiller::new(2.0).unwrap();
        let strong = Chiller::new(6.0).unwrap();
        assert!(weak.power_to_remove(heat) > strong.power_to_remove(heat));
        assert!((strong.power_to_remove(heat).value() - 1000.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(Chiller::new(0.0).is_err());
        assert!(Chiller::new(-1.0).is_err());
    }
}
