//! Cooling plant models and the H2P cooling-setting optimizer.
//!
//! * [`Chiller`] — vapor-compression chiller with a coefficient of
//!   performance, implementing the paper's Eq. 10 energy model;
//! * [`CoolingTower`] — evaporative tower (approach-temperature model),
//!   the component that lets warm-water datacenters avoid the chiller;
//! * [`hybrid`] — the TEC hot-spot controller of the hybrid architecture
//!   H2P builds on (reference \[24\]);
//! * [`plant`] — whole-plant energy accounting (tower + chiller + FWS
//!   pumping) behind the PUE/ERE reporting;
//! * [`CoolingOptimizer`] — the paper's Sec. V-B procedure: every
//!   interval, slice the measurement lookup space at the control
//!   utilization, keep the settings whose die temperature sits within
//!   the safety band, and pick the one that maximizes TEG output net of
//!   pump power.
//!
//! # Examples
//!
//! ```
//! use h2p_cooling::CoolingOptimizer;
//! use h2p_server::{LookupSpace, ServerModel};
//! use h2p_units::{Celsius, Utilization};
//!
//! let space = LookupSpace::paper_grid(&ServerModel::paper_default())?;
//! let optimizer = CoolingOptimizer::paper_default(&space);
//! let choice = optimizer.optimize(Utilization::new(0.2)?).expect("feasible");
//! assert!(choice.teg_power.value() > 3.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used as a deliberate NaN-rejecting validation idiom
// throughout (NaN fails the guard, unlike `x <= 0.0`).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

mod chiller;
pub mod hybrid;
mod optimizer;
pub mod plant;
mod tower;

pub use chiller::Chiller;
pub use optimizer::{
    CoolingOptimizer, OptimizedSetting, OptimizerTelemetry, DECISIONS_COUNTER,
    FALLBACK_SCANS_COUNTER, SCORE_EVALS_COUNTER,
};
pub use plant::{CoolingPlant, PlantLoad, PlantPower};
pub use tower::CoolingTower;

use core::fmt;

/// Errors from the cooling models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoolingError {
    /// A parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for CoolingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoolingError::NonPositiveParameter { name, value } => {
                write!(f, "parameter {name} must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for CoolingError {}
