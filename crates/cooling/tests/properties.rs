//! Property-based tests of the cooling models.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_cooling::hybrid::HotSpotController;
use h2p_cooling::{Chiller, CoolingPlant, CoolingTower, PlantLoad};
use h2p_units::{Celsius, DegC, LitersPerHour, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn plant_power_non_negative_and_monotone_in_heat(
        h1 in 0.0..200_000.0f64,
        h2 in 0.0..200_000.0f64,
        supply in 5.0..60.0f64,
        flow in 100.0..50_000.0f64,
    ) {
        let plant = CoolingPlant::paper_default();
        let (lo, hi) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
        let at = |heat: f64| {
            plant.power(PlantLoad {
                heat: Watts::new(heat),
                supply_setpoint: Celsius::new(supply),
                total_flow: LitersPerHour::new(flow),
            })
        };
        let p_lo = at(lo);
        let p_hi = at(hi);
        prop_assert!(p_lo.total().value() >= 0.0);
        prop_assert!(p_hi.total() >= p_lo.total());
        prop_assert!(p_hi.tower >= p_lo.tower);
    }

    #[test]
    fn chiller_runs_iff_below_tower_floor(
        supply in 0.0..60.0f64,
        wet_bulb in 5.0..30.0f64,
        heat in 1.0..100_000.0f64,
    ) {
        let plant = CoolingPlant::paper_default().with_wet_bulb(Celsius::new(wet_bulb));
        let p = plant.power(PlantLoad {
            heat: Watts::new(heat),
            supply_setpoint: Celsius::new(supply),
            total_flow: LitersPerHour::new(5_000.0),
        });
        let needs_chiller = plant.chiller_required(Celsius::new(supply));
        prop_assert_eq!(p.chiller.value() > 0.0, needs_chiller);
    }

    #[test]
    fn tower_floor_and_depression_consistent(
        setpoint in 0.0..60.0f64,
        wet_bulb in 0.0..35.0f64,
    ) {
        let tower = CoolingTower::paper_default();
        let sp = Celsius::new(setpoint);
        let wb = Celsius::new(wet_bulb);
        let depression = tower.chiller_depression(sp, wb);
        prop_assert!(depression.value() >= 0.0);
        // Depressing the tower floor by the reported amount reaches the
        // set-point exactly (when the tower cannot cover it).
        if !tower.covers(sp, wb) {
            let reached = tower.coldest_supply(wb) - depression;
            prop_assert!((reached - sp).value().abs() < 1e-9);
        } else {
            prop_assert_eq!(depression, DegC::zero());
        }
    }

    #[test]
    fn chiller_energy_inverse_in_cop(
        cop1 in 1.0..8.0f64,
        cop2 in 1.0..8.0f64,
        heat in 1.0..100_000.0f64,
    ) {
        let a = Chiller::new(cop1).unwrap().power_to_remove(Watts::new(heat));
        let b = Chiller::new(cop2).unwrap().power_to_remove(Watts::new(heat));
        // power * cop == heat for both.
        prop_assert!((a.value() * cop1 - heat).abs() < 1e-6 * heat);
        prop_assert!((b.value() * cop2 - heat).abs() < 1e-6 * heat);
    }

    #[test]
    fn tec_controller_sound(
        die in 40.0..90.0f64,
        target in 40.0..80.0f64,
        coolant in 30.0..60.0f64,
        coupling in 0.05..1.0f64,
    ) {
        let c = HotSpotController::default();
        let action = c.act(
            Celsius::new(die),
            Celsius::new(target),
            Celsius::new(coolant),
            coupling,
        );
        prop_assert!(action.input_power.value() >= 0.0);
        prop_assert!(action.pumped.value() >= 0.0);
        prop_assert!(action.current.value() >= 0.0);
        if die <= target {
            prop_assert!(action.target_met);
            prop_assert_eq!(action.input_power, Watts::zero());
        }
        if action.target_met && die > target {
            // Met targets pump exactly the demanded overshoot.
            let demand = (die - target) / coupling;
            prop_assert!((action.pumped.value() - demand).abs() < 1e-6 * demand.max(1.0));
        }
    }
}
