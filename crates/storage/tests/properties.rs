//! Property-based tests of the energy-buffer models.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_storage::{EnergyBuffer, HybridBuffer};
use h2p_units::{Joules, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn single_buffer_respects_capacity_and_conservation(
        offers in proptest::collection::vec(0.0..100.0f64, 1..30),
        demands in proptest::collection::vec(0.0..100.0f64, 1..30),
    ) {
        let mut b = EnergyBuffer::super_capacitor();
        let dt = Seconds::minutes(5.0);
        let mut absorbed = Joules::zero();
        for &o in &offers {
            absorbed += b.offer(Watts::new(o), dt);
            prop_assert!(b.stored() <= b.capacity() + Joules::new(1e-9));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&b.state_of_charge()));
        }
        let mut delivered = Joules::zero();
        for &d in &demands {
            delivered += b.demand(Watts::new(d), dt);
            prop_assert!(b.stored().value() >= -1e-9);
        }
        // Cannot deliver more than round-trip efficiency allows.
        prop_assert!(delivered.value() <= absorbed.value() * b.round_trip_efficiency() + 1e-6);
    }

    #[test]
    fn hybrid_buffer_never_creates_energy(
        events in proptest::collection::vec((-50.0..50.0f64,), 1..60),
    ) {
        let mut h = HybridBuffer::paper_default();
        let dt = Seconds::minutes(5.0);
        let mut absorbed = Joules::zero();
        let mut delivered = Joules::zero();
        for &(e,) in &events {
            if e >= 0.0 {
                absorbed += h.offer(Watts::new(e), dt);
            } else {
                delivered += h.demand(Watts::new(-e), dt);
            }
            // Delivered so far can never exceed absorbed so far.
            prop_assert!(delivered.value() <= absorbed.value() + 1e-6);
            prop_assert!(h.stored().value() >= -1e-9);
        }
    }

    #[test]
    fn zero_power_events_are_noops(offer_first in proptest::bool::ANY) {
        let mut h = HybridBuffer::paper_default();
        let dt = Seconds::minutes(5.0);
        if offer_first {
            h.offer(Watts::new(10.0), dt);
        }
        let before = h.stored();
        prop_assert_eq!(h.offer(Watts::zero(), dt), Joules::zero());
        prop_assert_eq!(h.demand(Watts::zero(), dt), Joules::zero());
        prop_assert_eq!(h.stored(), before);
    }

    #[test]
    fn drain_refill_cycles_stay_bounded(cycles in 1usize..20) {
        let mut h = HybridBuffer::paper_default();
        let dt = Seconds::hours(1.0);
        for _ in 0..cycles {
            h.offer(Watts::new(60.0), dt);
            h.demand(Watts::new(60.0), dt);
        }
        let cap = h.super_capacitor().capacity() + h.battery().capacity();
        prop_assert!(h.stored() <= cap);
    }
}
