//! Buffer dispatch over generation/demand series.
//!
//! The Sec. VI-B problem in schedulable form: given a TEG generation
//! series (high at night, low at peak — anti-correlated with demand)
//! and a demand series, run the hybrid buffer greedily (charge on
//! surplus, discharge on deficit) and account for what was served,
//! buffered, wasted and unmet.

use crate::{HybridBuffer, StorageError};
use h2p_units::{Joules, Seconds, Watts};

/// Outcome of dispatching a buffer across a series.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchPlan {
    /// Power actually delivered to the load, per step.
    pub served: Vec<Watts>,
    /// Portion of `served` that came out of the buffer, per step.
    pub from_buffer: Vec<Watts>,
    /// Generation absorbed into the buffer, measured at the source
    /// side (before charge losses). Together with the direct deliveries
    /// and `spilled` this closes the source-side energy balance
    /// exactly: `generation = direct + buffered + spilled`.
    pub buffered: Joules,
    /// Generation that could be neither used nor stored.
    pub spilled: Joules,
    /// Demand that could not be met.
    pub unmet: Joules,
    /// Total demand over the horizon.
    pub total_demand: Joules,
    /// Total generation over the horizon.
    pub total_generation: Joules,
}

impl DispatchPlan {
    /// Fraction of demand served, in `\[0, 1\]`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_demand.value() <= 0.0 {
            1.0
        } else {
            1.0 - (self.unmet / self.total_demand).clamp(0.0, 1.0)
        }
    }

    /// Fraction of generation that reached the load (directly or via
    /// the buffer), in `\[0, 1\]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.total_generation.value() <= 0.0 {
            return 0.0;
        }
        ((self.total_generation - self.spilled) / self.total_generation).clamp(0.0, 1.0)
    }
}

/// Greedy dispatch: serve demand from generation first, buffer any
/// surplus, discharge the buffer on deficit.
///
/// # Errors
///
/// Returns [`StorageError::BadParameter`] if the series lengths differ,
/// are empty, or the interval is not strictly positive.
pub fn greedy_dispatch(
    buffer: &mut HybridBuffer,
    generation: &[Watts],
    demand: &[Watts],
    interval: Seconds,
) -> Result<DispatchPlan, StorageError> {
    if generation.len() != demand.len() || generation.is_empty() {
        return Err(StorageError::BadParameter {
            name: "series length",
            value: generation.len() as f64,
        });
    }
    if !(interval.value() > 0.0) {
        return Err(StorageError::BadParameter {
            name: "interval",
            value: interval.value(),
        });
    }
    let mut served = Vec::with_capacity(demand.len());
    let mut from_buffer = Vec::with_capacity(demand.len());
    let mut buffered = Joules::zero();
    let mut spilled = Joules::zero();
    let mut unmet = Joules::zero();
    let mut total_demand = Joules::zero();
    let mut total_generation = Joules::zero();
    for (&gen, &need) in generation.iter().zip(demand) {
        total_demand += need.energy_over(interval);
        total_generation += gen.energy_over(interval);
        let direct = gen.min(need);
        let surplus = gen - direct;
        let deficit = need - direct;
        let mut step_served = direct;
        let mut step_buffer = Watts::zero();
        if surplus.value() > 0.0 {
            let stored = buffer.offer(surplus, interval);
            buffered += stored;
            spilled += surplus.energy_over(interval) - stored;
        } else if deficit.value() > 0.0 {
            let drawn = buffer.demand(deficit, interval);
            step_buffer = drawn.average_power(interval);
            step_served += step_buffer;
            unmet += deficit.energy_over(interval) - drawn;
        }
        served.push(step_served);
        from_buffer.push(step_buffer);
    }
    Ok(DispatchPlan {
        served,
        from_buffer,
        buffered,
        spilled,
        unmet,
        total_demand,
        total_generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watts(values: &[f64]) -> Vec<Watts> {
        values.iter().map(|&v| Watts::new(v)).collect()
    }

    #[test]
    fn constant_match_needs_no_buffer() {
        let mut buffer = HybridBuffer::paper_default();
        let gen = watts(&[4.0; 10]);
        let demand = watts(&[4.0; 10]);
        let plan = greedy_dispatch(&mut buffer, &gen, &demand, Seconds::minutes(5.0)).unwrap();
        assert_eq!(plan.coverage(), 1.0);
        assert_eq!(plan.unmet, Joules::zero());
        assert_eq!(plan.spilled, Joules::zero());
        assert!(plan.from_buffer.iter().all(|w| w.value() == 0.0));
    }

    #[test]
    fn anti_correlated_series_time_shift() {
        // Generate at night (first half), demand at day (second half):
        // without a buffer coverage would be 0 in the second half; with
        // it, most energy time-shifts (modulo round-trip losses).
        let mut buffer = HybridBuffer::paper_default();
        let gen = watts(&[[6.0; 6].as_slice(), [0.0; 6].as_slice()].concat());
        let demand = watts(&[[0.0; 6].as_slice(), [5.0; 6].as_slice()].concat());
        let plan = greedy_dispatch(&mut buffer, &gen, &demand, Seconds::hours(1.0)).unwrap();
        assert!(plan.coverage() > 0.9, "coverage {}", plan.coverage());
        assert!(plan.from_buffer[6].value() > 0.0);
        // Round-trip losses: the 6 Wh of nominal surplus leaves less
        // than 6 Wh sitting in the buffer afterwards.
        assert!(buffer.stored() < Joules::new(6.0 * 3600.0));
    }

    #[test]
    fn oversupply_spills_once_full() {
        let mut buffer = HybridBuffer::paper_default();
        // Far more generation than the buffer + demand can absorb.
        let gen = watts(&[200.0; 24]);
        let demand = watts(&[1.0; 24]);
        let plan = greedy_dispatch(&mut buffer, &gen, &demand, Seconds::hours(1.0)).unwrap();
        assert_eq!(plan.coverage(), 1.0);
        assert!(plan.spilled.value() > 0.5 * plan.total_generation.value());
        assert!(plan.utilization() < 0.5);
    }

    #[test]
    fn starvation_reports_unmet() {
        let mut buffer = HybridBuffer::paper_default();
        let gen = watts(&[0.0; 8]);
        let demand = watts(&[10.0; 8]);
        let plan = greedy_dispatch(&mut buffer, &gen, &demand, Seconds::hours(1.0)).unwrap();
        assert_eq!(plan.coverage(), 0.0);
        assert!((plan.unmet.value() - plan.total_demand.value()).abs() < 1e-9);
    }

    #[test]
    fn energy_accounting_closes() {
        let mut buffer = HybridBuffer::paper_default();
        let gen = watts(&[5.0, 8.0, 2.0, 0.0, 6.0, 1.0]);
        let demand = watts(&[3.0, 3.0, 3.0, 3.0, 3.0, 3.0]);
        let dt = Seconds::hours(1.0);
        let plan = greedy_dispatch(&mut buffer, &gen, &demand, dt).unwrap();
        // generation = served_from_generation + stored(+losses) + spilled.
        // Check the weaker, exact closure: served <= demand and
        // generation - spilled >= served - from_buffer (direct part).
        let served_total: f64 = plan.served.iter().map(|w| w.value() * dt.value()).sum();
        assert!(served_total <= plan.total_demand.value() + 1e-9);
        let direct_total: f64 = plan
            .served
            .iter()
            .zip(&plan.from_buffer)
            .map(|(s, b)| (s.value() - b.value()) * dt.value())
            .sum();
        assert!(direct_total <= plan.total_generation.value() - plan.spilled.value() + 1e-6);
    }

    /// Source-side: generation = direct deliveries + buffered + spilled.
    /// Load-side: demand = served + unmet. Both must close exactly.
    fn assert_conservation(plan: &DispatchPlan, dt: Seconds) {
        let direct: f64 = plan
            .served
            .iter()
            .zip(&plan.from_buffer)
            .map(|(s, b)| (s.value() - b.value()) * dt.value())
            .sum();
        let source_side = direct + plan.buffered.value() + plan.spilled.value();
        assert!(
            (source_side - plan.total_generation.value()).abs() < 1e-9,
            "generation {} != direct {direct} + buffered {} + spilled {}",
            plan.total_generation.value(),
            plan.buffered.value(),
            plan.spilled.value(),
        );
        let served: f64 = plan.served.iter().map(|w| w.value() * dt.value()).sum();
        assert!(
            (served + plan.unmet.value() - plan.total_demand.value()).abs() < 1e-9,
            "demand {} != served {served} + unmet {}",
            plan.total_demand.value(),
            plan.unmet.value(),
        );
    }

    #[test]
    fn zero_length_series_is_rejected_not_divided_by() {
        let mut buffer = HybridBuffer::paper_default();
        let err = greedy_dispatch(&mut buffer, &[], &[], Seconds::hours(1.0)).unwrap_err();
        assert!(matches!(
            err,
            StorageError::BadParameter {
                name: "series length",
                ..
            }
        ));
        // The buffer is untouched by a rejected dispatch.
        assert_eq!(buffer.stored(), Joules::zero());
    }

    #[test]
    fn all_surplus_buffers_then_spills_and_conserves() {
        let mut buffer = HybridBuffer::paper_default();
        let gen = watts(&[50.0; 12]);
        let demand = watts(&[0.0; 12]);
        let dt = Seconds::hours(1.0);
        let plan = greedy_dispatch(&mut buffer, &gen, &demand, dt).unwrap();
        assert_eq!(plan.unmet, Joules::zero());
        assert!(plan.served.iter().all(|w| w.value() == 0.0));
        assert!(plan.buffered.value() > 0.0, "early steps charge");
        assert!(plan.spilled.value() > 0.0, "late steps overflow");
        assert_eq!(plan.coverage(), 1.0, "zero demand is fully covered");
        assert_conservation(&plan, dt);
    }

    #[test]
    fn all_deficit_drains_the_buffer_then_starves_and_conserves() {
        let mut buffer = HybridBuffer::paper_default();
        // Pre-charge so the first deficit steps are partially served.
        buffer.offer(Watts::new(30.0), Seconds::hours(1.0));
        let gen = watts(&[0.0; 12]);
        let demand = watts(&[10.0; 12]);
        let dt = Seconds::hours(1.0);
        let plan = greedy_dispatch(&mut buffer, &gen, &demand, dt).unwrap();
        assert_eq!(plan.spilled, Joules::zero());
        assert_eq!(plan.buffered, Joules::zero());
        assert!(plan.from_buffer[0].value() > 0.0, "buffer serves first");
        assert!(plan.unmet.value() > 0.0, "then starves");
        assert!(plan.coverage() > 0.0 && plan.coverage() < 1.0);
        assert_conservation(&plan, dt);
    }

    #[test]
    fn mixed_series_conserve_on_both_sides() {
        let mut buffer = HybridBuffer::paper_default();
        let gen = watts(&[5.0, 8.0, 2.0, 0.0, 6.0, 1.0, 120.0, 0.0]);
        let demand = watts(&[3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 0.5, 40.0]);
        let dt = Seconds::minutes(5.0);
        let plan = greedy_dispatch(&mut buffer, &gen, &demand, dt).unwrap();
        assert_conservation(&plan, dt);
    }

    #[test]
    fn validation() {
        let mut buffer = HybridBuffer::paper_default();
        assert!(greedy_dispatch(&mut buffer, &[], &[], Seconds::hours(1.0)).is_err());
        assert!(greedy_dispatch(
            &mut buffer,
            &watts(&[1.0]),
            &watts(&[1.0, 2.0]),
            Seconds::hours(1.0)
        )
        .is_err());
        assert!(greedy_dispatch(
            &mut buffer,
            &watts(&[1.0]),
            &watts(&[1.0]),
            Seconds::new(0.0)
        )
        .is_err());
    }
}
