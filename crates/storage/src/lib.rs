//! Electricity storage and reuse applications for TEG output (paper
//! Sec. VI-B/VI-C).
//!
//! TEG generation is anti-correlated with demand (high load → cold
//! inlet → little harvest), so H2P buffers the output. The paper points
//! at hybrid energy buffers \[31\]: super-capacitors (90-95 % efficient,
//! expensive per joule) paired with batteries (cheaper, less efficient).
//! This crate provides:
//!
//! * [`EnergyBuffer`] — a single storage element with round-trip
//!   efficiency and power limits;
//! * [`HybridBuffer`] — the SC-first charge/discharge policy over a
//!   super-capacitor and a battery;
//! * [`leds_powered`] — the Sec. VI-C2 lighting application (how many
//!   LEDs a CPU's TEG module can light);
//! * [`dispatch`] — greedy buffer dispatch over generation/demand
//!   series with coverage and spill accounting.
//!
//! # Examples
//!
//! ```
//! use h2p_storage::HybridBuffer;
//! use h2p_units::{Seconds, Watts};
//!
//! let mut buffer = HybridBuffer::paper_default();
//! // A low-load night interval: 4 W surplus for an hour.
//! let stored = buffer.offer(Watts::new(4.0), Seconds::hours(1.0));
//! assert!(stored.value() > 0.0);
//! // Peak hours: draw the energy back.
//! let delivered = buffer.demand(Watts::new(2.0), Seconds::hours(1.0));
//! assert!(delivered.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used as a deliberate NaN-rejecting validation idiom
// throughout (NaN fails the guard, unlike `x <= 0.0`).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

pub mod dispatch;

use core::fmt;
use h2p_units::{Joules, Seconds, Watts};

/// Errors from the storage models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StorageError {
    /// A parameter that must be strictly positive was not, or an
    /// efficiency left `(0, 1]`.
    BadParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BadParameter { name, value } => {
                write!(f, "parameter {name} invalid: {value}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// One storage element (battery or super-capacitor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBuffer {
    capacity: Joules,
    stored: Joules,
    /// One-way charge efficiency in `(0, 1]`.
    charge_efficiency: f64,
    /// One-way discharge efficiency in `(0, 1]`.
    discharge_efficiency: f64,
    /// Maximum charge/discharge power.
    max_power: Watts,
}

impl EnergyBuffer {
    /// Creates an empty buffer.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadParameter`] for a non-positive
    /// capacity or power, or an efficiency outside `(0, 1]`.
    pub fn new(
        capacity: Joules,
        charge_efficiency: f64,
        discharge_efficiency: f64,
        max_power: Watts,
    ) -> Result<Self, StorageError> {
        if !(capacity.value() > 0.0) {
            return Err(StorageError::BadParameter {
                name: "capacity",
                value: capacity.value(),
            });
        }
        if !(max_power.value() > 0.0) {
            return Err(StorageError::BadParameter {
                name: "max_power",
                value: max_power.value(),
            });
        }
        for (name, value) in [
            ("charge_efficiency", charge_efficiency),
            ("discharge_efficiency", discharge_efficiency),
        ] {
            if !(value > 0.0 && value <= 1.0) {
                return Err(StorageError::BadParameter { name, value });
            }
        }
        Ok(EnergyBuffer {
            capacity,
            stored: Joules::zero(),
            charge_efficiency,
            discharge_efficiency,
            max_power,
        })
    }

    /// A per-CPU super-capacitor bank: 5 Wh, ~97 % each way (≈ 95 %
    /// round trip), 50 W.
    #[must_use]
    pub fn super_capacitor() -> Self {
        EnergyBuffer::new(Joules::new(5.0 * 3600.0), 0.97, 0.97, Watts::new(50.0))
            // h2p-lint: allow(L2): hard-coded valid constants
            .expect("constants are valid")
    }

    /// A small per-rack battery share: 100 Wh, ~92 % each way (≈ 85 %
    /// round trip), 20 W.
    #[must_use]
    pub fn battery() -> Self {
        EnergyBuffer::new(Joules::new(100.0 * 3600.0), 0.92, 0.92, Watts::new(20.0))
            // h2p-lint: allow(L2): hard-coded valid constants
            .expect("constants are valid")
    }

    /// Usable capacity.
    #[must_use]
    pub fn capacity(&self) -> Joules {
        self.capacity
    }

    /// Currently stored energy.
    #[must_use]
    pub fn stored(&self) -> Joules {
        self.stored
    }

    /// State of charge in `\[0, 1\]`.
    #[must_use]
    pub fn state_of_charge(&self) -> f64 {
        self.stored.value() / self.capacity.value()
    }

    /// Round-trip efficiency.
    #[must_use]
    pub fn round_trip_efficiency(&self) -> f64 {
        self.charge_efficiency * self.discharge_efficiency
    }

    /// Offers surplus power for `dt`; returns the energy actually
    /// *absorbed from the source* (before charge losses).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn offer(&mut self, surplus: Watts, dt: Seconds) -> Joules {
        assert!(dt.value() >= 0.0, "dt must be non-negative");
        if surplus.value() <= 0.0 || dt.value() == 0.0 {
            return Joules::zero();
        }
        let power = surplus.min(self.max_power);
        let incoming = power.energy_over(dt);
        let headroom = self.capacity - self.stored;
        let storable_incoming = Joules::new(headroom.value() / self.charge_efficiency);
        let accepted = incoming.min(storable_incoming);
        self.stored += Joules::new(accepted.value() * self.charge_efficiency);
        accepted
    }

    /// Demands power for `dt`; returns the energy actually delivered
    /// (after discharge losses).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn demand(&mut self, need: Watts, dt: Seconds) -> Joules {
        assert!(dt.value() >= 0.0, "dt must be non-negative");
        if need.value() <= 0.0 || dt.value() == 0.0 {
            return Joules::zero();
        }
        let power = need.min(self.max_power);
        let wanted = power.energy_over(dt);
        let deliverable = Joules::new(self.stored.value() * self.discharge_efficiency);
        let delivered = wanted.min(deliverable);
        self.stored -= Joules::new(delivered.value() / self.discharge_efficiency);
        self.stored = self.stored.max(Joules::zero());
        delivered
    }
}

/// A hybrid buffer: super-capacitor absorbs/serves first (fast, nearly
/// lossless), battery takes the remainder (deep storage) — the policy
/// of HEB \[31\] scaled down to TEG outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridBuffer {
    super_capacitor: EnergyBuffer,
    battery: EnergyBuffer,
}

impl HybridBuffer {
    /// Creates a hybrid buffer from its two elements.
    #[must_use]
    pub fn new(super_capacitor: EnergyBuffer, battery: EnergyBuffer) -> Self {
        HybridBuffer {
            super_capacitor,
            battery,
        }
    }

    /// The default per-CPU configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        HybridBuffer {
            super_capacitor: EnergyBuffer::super_capacitor(),
            battery: EnergyBuffer::battery(),
        }
    }

    /// The super-capacitor element.
    #[must_use]
    pub fn super_capacitor(&self) -> &EnergyBuffer {
        &self.super_capacitor
    }

    /// The battery element.
    #[must_use]
    pub fn battery(&self) -> &EnergyBuffer {
        &self.battery
    }

    /// Total stored energy.
    #[must_use]
    pub fn stored(&self) -> Joules {
        self.super_capacitor.stored() + self.battery.stored()
    }

    /// Offers surplus power: SC first, battery for the remainder.
    /// Returns the energy absorbed from the source.
    pub fn offer(&mut self, surplus: Watts, dt: Seconds) -> Joules {
        let taken_sc = self.super_capacitor.offer(surplus, dt);
        let leftover_power =
            Watts::new((surplus.energy_over(dt) - taken_sc).value() / dt.value().max(1e-12));
        let taken_batt = self.battery.offer(leftover_power, dt);
        taken_sc + taken_batt
    }

    /// Demands power: SC first, battery for the remainder. Returns the
    /// energy delivered.
    pub fn demand(&mut self, need: Watts, dt: Seconds) -> Joules {
        let from_sc = self.super_capacitor.demand(need, dt);
        let remaining =
            Watts::new((need.energy_over(dt) - from_sc).value() / dt.value().max(1e-12));
        let from_batt = self.battery.demand(remaining, dt);
        from_sc + from_batt
    }
}

impl Default for HybridBuffer {
    fn default() -> Self {
        HybridBuffer::paper_default()
    }
}

/// How many LEDs of a given unit power a TEG output can light
/// (Sec. VI-C2: an ordinary LED draws 0.05 W; high-power parts 1-2 W).
///
/// # Panics
///
/// Panics if `led` is not strictly positive.
#[must_use]
pub fn leds_powered(teg_output: Watts, led: Watts) -> usize {
    assert!(led.value() > 0.0, "LED power must be positive");
    // Non-negative and floored, so the usize conversion is exact.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let n = (teg_output.value().max(0.0) / led.value()).floor() as usize;
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_discharge_roundtrip_loses_expected_energy() {
        let mut b = EnergyBuffer::battery();
        let offered = b.offer(Watts::new(10.0), Seconds::hours(1.0));
        assert!((offered.value() - 36_000.0).abs() < 1e-9);
        // Drain completely.
        let delivered = b.demand(Watts::new(20.0), Seconds::hours(10.0));
        let rt = delivered.value() / offered.value();
        assert!((rt - b.round_trip_efficiency()).abs() < 1e-9);
    }

    #[test]
    fn capacity_limits_absorption() {
        let mut sc = EnergyBuffer::super_capacitor();
        // Offer far more than 5 Wh.
        let taken = sc.offer(Watts::new(50.0), Seconds::hours(10.0));
        assert!(sc.state_of_charge() > 0.999);
        // Accepted energy ≈ capacity / charge_eff.
        assert!((taken.value() - 5.0 * 3600.0 / 0.97).abs() < 1.0);
        // Nothing more fits.
        assert_eq!(
            sc.offer(Watts::new(1.0), Seconds::hours(1.0)),
            Joules::zero()
        );
    }

    #[test]
    fn power_limit_caps_rate() {
        let mut b = EnergyBuffer::battery(); // 20 W cap
        let taken = b.offer(Watts::new(100.0), Seconds::hours(1.0));
        assert!((taken.value() - 20.0 * 3600.0).abs() < 1e-9);
    }

    #[test]
    fn empty_buffer_delivers_nothing() {
        let mut b = EnergyBuffer::battery();
        assert_eq!(
            b.demand(Watts::new(5.0), Seconds::hours(1.0)),
            Joules::zero()
        );
    }

    #[test]
    fn hybrid_prefers_super_capacitor() {
        let mut h = HybridBuffer::paper_default();
        h.offer(Watts::new(4.0), Seconds::hours(1.0));
        // 4 W for an hour fits entirely in the SC (5 Wh).
        assert!(h.super_capacitor().stored().value() > 0.0);
        assert_eq!(h.battery().stored(), Joules::zero());
        // Overflow spills into the battery.
        h.offer(Watts::new(10.0), Seconds::hours(1.0));
        assert!(h.battery().stored().value() > 0.0);
    }

    #[test]
    fn hybrid_drains_super_capacitor_first() {
        let mut h = HybridBuffer::paper_default();
        h.offer(Watts::new(10.0), Seconds::hours(2.0));
        let sc_before = h.super_capacitor().stored();
        let batt_before = h.battery().stored();
        h.demand(Watts::new(1.0), Seconds::hours(1.0));
        assert!(h.super_capacitor().stored() < sc_before);
        assert_eq!(h.battery().stored(), batt_before);
    }

    #[test]
    fn hybrid_conserves_energy() {
        let mut h = HybridBuffer::paper_default();
        let offered = h.offer(Watts::new(30.0), Seconds::hours(1.0));
        let stored = h.stored();
        // Stored <= offered (charge losses), within efficiency bounds.
        assert!(stored <= offered);
        assert!(stored.value() >= offered.value() * 0.9);
    }

    #[test]
    fn led_budget() {
        // Sec. VI-C2: ~3 W powers 60 ordinary 0.05 W LEDs or 3 one-watt
        // parts.
        assert_eq!(leds_powered(Watts::new(3.0), Watts::new(0.05)), 60);
        assert_eq!(leds_powered(Watts::new(3.0), Watts::new(1.0)), 3);
        assert_eq!(leds_powered(Watts::zero(), Watts::new(0.05)), 0);
    }

    #[test]
    fn validation() {
        assert!(EnergyBuffer::new(Joules::zero(), 0.9, 0.9, Watts::new(1.0)).is_err());
        assert!(EnergyBuffer::new(Joules::new(1.0), 1.1, 0.9, Watts::new(1.0)).is_err());
        assert!(EnergyBuffer::new(Joules::new(1.0), 0.9, 0.0, Watts::new(1.0)).is_err());
        assert!(EnergyBuffer::new(Joules::new(1.0), 0.9, 0.9, Watts::zero()).is_err());
    }
}
