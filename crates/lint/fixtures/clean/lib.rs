//! Clean fixture: idiomatic H2P library code that every rule accepts.

#![forbid(unsafe_code)]

/// Quantities cross the boundary as newtypes (L1-clean).
pub fn inlet_temperature(&self) -> Celsius {
    self.inlet
}

/// Fallible paths return typed errors (L2-clean).
pub fn coolant(&self, id: NodeId) -> Result<Celsius, ThermalError> {
    self.nodes.get(id.0).map(|n| n.temperature).ok_or(ThermalError::UnknownNode(id))
}

/// A justified cast is waived in place (L3-clean via allow comment).
pub fn mean(samples: &[f64]) -> f64 {
    let n = samples.len() as f64; // h2p-lint: allow(L3): exact for n < 2^53
    samples.iter().sum::<f64>() / n.max(1.0)
}

/// NaN-rejecting validation uses the `!(x > 0.0)` idiom (L5-clean).
pub fn validate(value: f64) -> bool {
    !(value > 0.0)
}

/// A kernel event queue holds ordered data in a `BTreeMap`, so the
/// forced re-evaluation schedule visits steps in step order on every
/// run (L8-clean; mirrors `h2p_core::kernel::ChangeKernel`).
pub fn forced_steps(forced: &BTreeMap<usize, Vec<usize>>) -> Vec<usize> {
    forced.keys().copied().collect()
}
