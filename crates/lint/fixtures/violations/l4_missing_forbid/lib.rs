//! L4 fixture: a crate root without `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

/// Harmless code; the violation is the missing crate attribute.
pub fn answer() -> u8 {
    42
}
