//! L2 fixture: panic paths in non-test library code.

/// Unwraps on the hot path — L2 must fire.
pub fn lookup(table: &Table, key: usize) -> Entry {
    table.get(key).unwrap()
}

/// Expects on the hot path — L2 must fire.
pub fn first(rows: &[Entry]) -> &Entry {
    rows.first().expect("rows is never empty")
}

/// Explicit panic — L2 must fire.
pub fn reject() -> ! {
    panic!("unreachable configuration")
}
