//! Deliberate L10 violations: lock acquisitions outside (or against)
//! the file's lock-order manifest.
// h2p-lint: lock-order: ledger, journal

use std::sync::{Mutex, PoisonError};

pub struct State {
    ledger: Mutex<Vec<u64>>,
    journal: Mutex<Vec<String>>,
    rogue: Mutex<u64>,
}

impl State {
    /// Nested in manifest order: fine.
    pub fn record(&self) {
        let mut ledger = self.ledger.lock().unwrap_or_else(PoisonError::into_inner);
        let mut journal = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        ledger.push(1);
        journal.push(String::from("ok"));
    }

    /// Violation: `ledger` is acquired while `journal` is held —
    /// against manifest order, the deadlock shape.
    pub fn backwards(&self) {
        let mut journal = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        let mut ledger = self.ledger.lock().unwrap_or_else(PoisonError::into_inner);
        journal.push(String::from("no"));
        ledger.push(2);
    }

    /// Violation: `rogue` is in no manifest at all.
    pub fn unmanifested(&self) -> u64 {
        *self.rogue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sequential (not nested) out-of-order acquisition: fine — the
    /// first guard is dropped before the second lock is taken.
    pub fn sequential(&self) {
        {
            let mut journal = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
            journal.push(String::from("first"));
        }
        let mut ledger = self.ledger.lock().unwrap_or_else(PoisonError::into_inner);
        ledger.push(3);
    }
}
