//! L7 fixture: unbounded queue/channel construction in library code.

use std::collections::VecDeque;

pub struct Mailbox {
    jobs: VecDeque<u64>,
}

impl Mailbox {
    pub fn open() -> Mailbox {
        Mailbox {
            jobs: VecDeque::new(),
        }
    }

    pub fn open_sized() -> Mailbox {
        Mailbox {
            // h2p-lint: allow(L7): bounded by the admission check in push()
            jobs: VecDeque::with_capacity(8),
        }
    }

    pub fn wire() -> std::sync::mpsc::Sender<u64> {
        let (tx, _rx) = std::sync::mpsc::channel();
        tx
    }
}
