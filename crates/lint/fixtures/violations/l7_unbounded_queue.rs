//! L7 fixture: unbounded queue/channel construction in library code,
//! and its concurrency twin — a thread per accepted connection.

use std::collections::VecDeque;
use std::net::TcpListener;

pub struct Mailbox {
    jobs: VecDeque<u64>,
}

impl Mailbox {
    pub fn open() -> Mailbox {
        Mailbox {
            jobs: VecDeque::new(),
        }
    }

    pub fn open_sized() -> Mailbox {
        Mailbox {
            // h2p-lint: allow(L7): bounded by the admission check in push()
            jobs: VecDeque::with_capacity(8),
        }
    }

    pub fn wire() -> std::sync::mpsc::Sender<u64> {
        let (tx, _rx) = std::sync::mpsc::channel();
        tx
    }
}

/// A thread per accepted connection: an unbounded queue of stacks.
pub fn accept_loop(listener: &TcpListener) {
    loop {
        if let Ok((conn, _peer)) = listener.accept() {
            std::thread::spawn(move || drop(conn));
        }
    }
}

/// A fixed scoped pool over the connections is the accepted shape.
pub fn pooled(conns: &[u64]) {
    std::thread::scope(|scope| {
        for conn in conns {
            scope.spawn(move || drop(conn));
        }
    });
}
