//! L1 fixture: quantity-named values crossing `pub fn` boundaries as
//! raw floats instead of `h2p-units` newtypes.

/// Takes a temperature as a bare `f64` — L1 must fire on the parameter.
pub fn set_inlet_temp(inlet_temp_c: f64) -> Celsius {
    Celsius::new(inlet_temp_c)
}

/// Quantity-named API returning a bare `f64` — L1 must fire on the
/// return type.
pub fn water_flow(&self) -> f64 {
    self.flow
}
