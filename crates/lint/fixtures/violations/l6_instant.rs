//! L6 fixture: direct wall-clock reads in library code.

pub fn elapsed_wrong() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn stamp_wrong() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
