//! Deliberate L11 violations: policy score comparisons that unwrap
//! `partial_cmp` instead of ranking with `f64::total_cmp`. The bare
//! panics are waived for L2 so the fixture isolates L11.

use std::cmp::Ordering;

pub trait PlacementPolicy {
    fn place(&mut self, scores: &[f64]) -> Option<usize>;
}

pub trait SchedulingPolicy {
    fn schedule(&self, chunk: &[f64]) -> f64;
}

pub struct Greedy;

impl PlacementPolicy for Greedy {
    /// Violation: a NaN score panics mid-simulation.
    fn place(&mut self, scores: &[f64]) -> Option<usize> {
        scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap()) // h2p-lint: allow(L2): fixture isolates L11
            .map(|(index, _)| index)
    }
}

pub struct Peak;

impl SchedulingPolicy for Peak {
    /// Violation: `.expect(..)` is the same panic with a banner.
    fn schedule(&self, chunk: &[f64]) -> f64 {
        let mut peak = 0.0f64;
        for value in chunk {
            let ord = value.partial_cmp(&peak).expect("ordered"); // h2p-lint: allow(L2): fixture isolates L11
            if ord == Ordering::Greater {
                peak = *value;
            }
        }
        peak
    }
}

pub struct Sane;

impl PlacementPolicy for Sane {
    /// Clean: `total_cmp` is total over NaN, and `unwrap_or` gives
    /// the comparison an explicit NaN answer instead of a panic.
    fn place(&mut self, scores: &[f64]) -> Option<usize> {
        let _ = scores
            .first()
            .map(|a| a.partial_cmp(&0.5).unwrap_or(Ordering::Less));
        scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(index, _)| index)
    }
}
