//! Deliberate L8 violations: folding over hash-ordered containers.
//! Each iteration below visits entries in the hasher's per-process
//! random order, so any result built from it differs run to run.

use std::collections::{HashMap, HashSet};

pub struct Ledger {
    entries: HashMap<u64, f64>,
}

impl Ledger {
    /// Violation: the sum's rounding error depends on visit order.
    pub fn total(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Violation: `for … in` over the map.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (id, value) in &self.entries {
            out.push_str(&format!("{id}={value};"));
        }
        out
    }

    /// Not a violation: keyed lookup has no order.
    pub fn get(&self, id: u64) -> Option<f64> {
        self.entries.get(&id).copied()
    }
}

/// Violation: draining a set in hash order.
pub fn drain_ids(seen: &mut HashSet<u64>) -> Vec<u64> {
    seen.drain().collect()
}

/// Waived: the collected keys are sorted before anything folds over
/// them, which restores determinism.
pub fn sorted_ids(seen: &HashSet<u64>) -> Vec<u64> {
    let mut ids: Vec<u64> = seen.iter().copied().collect(); // h2p-lint: allow(L8): sorted on the next line
    ids.sort_unstable();
    ids
}

/// Violation: a kernel-style forced-event queue held in a `HashMap`.
/// Draining `step → circulations` in hash order would make the
/// re-evaluation schedule (and hence every downstream fold) differ
/// run to run; the engine's queue must be a `BTreeMap` (or a sorted
/// `Vec`), as in `h2p_core::kernel::ChangeKernel`.
pub struct EventQueue {
    forced: HashMap<usize, Vec<usize>>,
}

impl EventQueue {
    /// Violation: steps visit in the hasher's per-process order.
    pub fn drain_schedule(&self) -> Vec<(usize, Vec<usize>)> {
        self.forced
            .iter()
            .map(|(step, circs)| (*step, circs.clone()))
            .collect()
    }
}
