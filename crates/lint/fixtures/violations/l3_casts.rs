//! L3 fixture: numeric `as` casts in a physics crate.

/// Truncating cast — L3 must fire.
pub fn substeps(span: Seconds, h: Seconds) -> usize {
    (span.value() / h.value()).ceil() as usize
}

/// Widening cast without an allow comment — L3 must still fire (the
/// waiver is explicit, never inferred).
pub fn sample_count_weight(n: usize) -> Weight {
    Weight::new(n as f64)
}
