//! L5 fixture: NaN-unsafe float-literal equality in a physics crate.

/// `== 0.0` silently misclassifies NaN — L5 must fire.
pub fn is_idle(load: Utilization) -> bool {
    load.value() == 0.0
}

/// `!=` against a literal — L5 must fire.
pub fn off_nominal(ratio: Ratio) -> bool {
    1.0 != ratio.value()
}
