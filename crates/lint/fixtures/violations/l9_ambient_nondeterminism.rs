//! Deliberate L9 violations: ambient nondeterminism sources that make
//! a run depend on state outside the scenario key.

/// Violation: unseeded RNG draws from OS entropy.
pub fn jitter() -> f64 {
    thread_rng().gen_range(0.0..1.0)
}

/// Violation: per-process random hash state.
pub fn fresh_state() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}

/// Violation: result depends on the process environment.
pub fn configured_servers() -> usize {
    std::env::var("H2P_SERVERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Violation: directory entries arrive in filesystem order.
pub fn first_trace(dir: &std::path::Path) -> Option<std::path::PathBuf> {
    std::fs::read_dir(dir)
        .ok()?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .next()
}

/// Waived: the listing is sorted before use, which pins the order.
pub fn sorted_traces(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    // h2p-lint: allow(L9): entries are path-sorted before any caller sees them
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    paths.sort();
    paths
}
