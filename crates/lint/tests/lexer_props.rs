//! Property and round-trip tests of the lint lexer.
//!
//! The load-bearing invariant is **tiling**: every byte of the source
//! belongs to exactly one token, in order, with no gaps and no
//! overlaps — `concat(token texts) == source`. Every rule's span
//! reporting and the scanner's string/comment opacity rest on it, and
//! it must hold on garbage input too (the lexer never fails; it emits
//! single-char punct tokens instead).

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use h2p_lint::lexer::{lex, TokenKind};
use proptest::collection::vec;
use proptest::prelude::*;

/// Source fragments chosen to stress every lexer state: raw/byte
/// strings, nested comments, char-vs-lifetime, float-vs-path dots,
/// multibyte identifiers, and plain operator soup. Concatenations of
/// these in any order must still tile.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "let x = 1.5e-3;",
    "self.0",
    "0..n",
    "1.max(2)",
    "0x1f_u32",
    "7f64",
    "r\"raw\"",
    "r#\"raw \" inner\"#",
    "br#\"bytes \"# \"##",
    "b\"bytes\"",
    "b'x'",
    "'}'",
    "'\\u{1F600}'",
    "'a",
    "<'a, 'static>",
    "/* outer /* nested */ back */",
    "// line comment\n",
    "/// doc with \"quote\n",
    "\"str with \\\" escape\"",
    "\"multi\nline\"",
    "r#match",
    "température",
    "温度.計測()",
    "a<<=b>>=c..=d...e",
    "::->=>==!=<=>=&&||",
    "#![forbid(unsafe_code)]",
    "m!{ ( [ { } ] ) }",
    "\\ ` $ @ ~",
    "\t \u{a0}\n",
];

/// Asserts the tiling invariant plus line/col bookkeeping on `source`.
fn assert_tiles(source: &str) -> Result<(), TestCaseError> {
    let tokens = lex(source);
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let mut rebuilt = String::with_capacity(source.len());
    for t in &tokens {
        prop_assert_eq!(t.start, pos, "gap/overlap before {:?} in {:?}", t, source);
        prop_assert!(t.end > t.start, "empty token {:?} in {:?}", t, source);
        prop_assert!(
            source.is_char_boundary(t.start) && source.is_char_boundary(t.end),
            "span not char-aligned: {:?} in {:?}",
            t,
            source
        );
        prop_assert_eq!(t.line, line, "line drift at {:?} in {:?}", t, source);
        prop_assert_eq!(t.col, col, "col drift at {:?} in {:?}", t, source);
        for c in t.text(source).chars() {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        rebuilt.push_str(t.text(source));
        pos = t.end;
    }
    prop_assert_eq!(pos, source.len(), "trailing bytes unlexed in {:?}", source);
    prop_assert_eq!(rebuilt, source);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn token_spans_tile_fragment_concatenations(
        picks in vec((0..FRAGMENTS.len(), 0..3usize), 0..24usize),
    ) {
        let mut source = String::new();
        for (idx, sep) in picks {
            source.push_str(FRAGMENTS[idx]);
            source.push_str([" ", "\n", ""][sep]);
        }
        assert_tiles(&source)?;
    }

    #[test]
    fn token_spans_tile_arbitrary_bytes(
        chars in vec(0..128u32, 0..64usize),
    ) {
        // Printable-ish ASCII soup, including unbalanced quotes and
        // half-open comments: the lexer must still tile, never panic.
        let source: String = chars
            .into_iter()
            .filter_map(|c| char::from_u32(c % 127))
            .collect();
        assert_tiles(&source)?;
    }
}

/// Edge-case round trips: each input tiles and lexes to the expected
/// coarse shape (the kind of its first non-trivia token).
#[test]
fn raw_string_and_comment_round_trips() {
    let cases: &[(&str, TokenKind)] = &[
        ("r#\"a \" b\"# rest", TokenKind::RawStr),
        ("r##\"sharp \"# inside\"## x", TokenKind::RawStr),
        ("br#\"raw bytes\"#", TokenKind::RawStr),
        ("r\"no hash\"", TokenKind::RawStr),
        ("r#match + 1", TokenKind::Ident),
        ("/* a /* b */ c */ d", TokenKind::BlockComment),
        ("/* unterminated /* nest", TokenKind::BlockComment),
        ("\"multi\nline \\\" esc\"", TokenKind::Str),
        ("'\\u{1F600}' x", TokenKind::Char),
        ("'a>", TokenKind::Lifetime),
        ("1.5.to_string()", TokenKind::Float),
        ("1..2", TokenKind::Int),
    ];
    for (source, expected) in cases {
        assert_tiles(source).unwrap();
        let first = lex(source)
            .into_iter()
            .find(|t| t.kind != TokenKind::Whitespace)
            .unwrap_or_else(|| panic!("no tokens in {source:?}"));
        assert_eq!(
            first.kind, *expected,
            "first token of {source:?}: {first:?}"
        );
    }
}

/// The whole lint crate's own sources must tile — real-world Rust
/// with every construct the workspace actually uses.
#[test]
fn lexer_tiles_its_own_crate_sources() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    for name in ["lexer.rs", "scanner.rs", "rules.rs", "lib.rs", "main.rs"] {
        let source = std::fs::read_to_string(dir.join(name)).unwrap();
        assert_tiles(&source).unwrap();
    }
}
