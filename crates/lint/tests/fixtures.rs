//! Fixture tests: every rule fires on its deliberate violation, the
//! clean fixture is accepted, and the real workspace is lint-clean.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use h2p_lint::{find_workspace_root, lint_fixture_dir, lint_workspace, RuleId};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Rules firing on one fixture file, by file-name substring.
fn rules_for(file_hint: &str) -> Vec<RuleId> {
    let diags = lint_fixture_dir(&fixtures_dir().join("violations")).unwrap();
    diags
        .iter()
        .filter(|d| d.file.to_string_lossy().contains(file_hint))
        .map(|d| d.rule)
        .collect()
}

#[test]
fn l1_fires_on_raw_quantity_fixture() {
    let rules = rules_for("l1_raw_quantity");
    assert_eq!(rules, vec![RuleId::L1, RuleId::L1], "{rules:?}");
}

#[test]
fn l2_fires_on_panic_fixture() {
    let rules = rules_for("l2_panics");
    assert_eq!(rules, vec![RuleId::L2; 3], "{rules:?}");
}

#[test]
fn l3_fires_on_cast_fixture() {
    let rules = rules_for("l3_casts");
    assert_eq!(rules, vec![RuleId::L3, RuleId::L3], "{rules:?}");
}

#[test]
fn l4_fires_on_missing_forbid_fixture() {
    let rules = rules_for("l4_missing_forbid");
    assert_eq!(rules, vec![RuleId::L4], "{rules:?}");
}

#[test]
fn l5_fires_on_float_eq_fixture() {
    let rules = rules_for("l5_float_eq");
    assert_eq!(rules, vec![RuleId::L5, RuleId::L5], "{rules:?}");
}

#[test]
fn l6_fires_on_wall_clock_fixture() {
    let rules = rules_for("l6_instant");
    assert_eq!(rules, vec![RuleId::L6, RuleId::L6], "{rules:?}");
}

#[test]
fn l7_fires_on_unbounded_queue_fixture_and_respects_the_waiver() {
    let rules = rules_for("l7_unbounded_queue");
    assert_eq!(rules, vec![RuleId::L7, RuleId::L7], "{rules:?}");
}

#[test]
fn diagnostics_carry_file_and_line() {
    let diags = lint_fixture_dir(&fixtures_dir().join("violations")).unwrap();
    for d in &diags {
        assert!(d.line >= 1, "{d}");
        let text = d.to_string();
        assert!(text.contains(&format!("{}:", d.file.display())), "{text}");
    }
}

#[test]
fn clean_fixture_is_accepted() {
    let diags = lint_fixture_dir(&fixtures_dir().join("clean")).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn workspace_is_lint_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let diags = lint_workspace(&root).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn cli_exits_nonzero_on_violations_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_h2p-lint");
    let bad = Command::new(bin)
        .args(["--fixtures"])
        .arg(fixtures_dir().join("violations"))
        .output()
        .expect("run h2p-lint on violations");
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");

    let good = Command::new(bin)
        .args(["--fixtures"])
        .arg(fixtures_dir().join("clean"))
        .output()
        .expect("run h2p-lint on clean fixtures");
    assert_eq!(good.status.code(), Some(0), "{good:?}");
}
