//! Fixture tests: every rule fires on its deliberate violation, the
//! clean fixture is accepted, and the real workspace is lint-clean.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use h2p_lint::{find_workspace_root, lint_fixture_dir, lint_workspace, RuleId};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Rules firing on one fixture file, by file-name substring.
fn rules_for(file_hint: &str) -> Vec<RuleId> {
    let diags = lint_fixture_dir(&fixtures_dir().join("violations")).unwrap();
    diags
        .iter()
        .filter(|d| d.file.to_string_lossy().contains(file_hint))
        .map(|d| d.rule)
        .collect()
}

#[test]
fn l1_fires_on_raw_quantity_fixture() {
    let rules = rules_for("l1_raw_quantity");
    assert_eq!(rules, vec![RuleId::L1, RuleId::L1], "{rules:?}");
}

#[test]
fn l2_fires_on_panic_fixture() {
    let rules = rules_for("l2_panics");
    assert_eq!(rules, vec![RuleId::L2; 3], "{rules:?}");
}

#[test]
fn l3_fires_on_cast_fixture() {
    let rules = rules_for("l3_casts");
    assert_eq!(rules, vec![RuleId::L3, RuleId::L3], "{rules:?}");
}

#[test]
fn l4_fires_on_missing_forbid_fixture() {
    let rules = rules_for("l4_missing_forbid");
    assert_eq!(rules, vec![RuleId::L4], "{rules:?}");
}

#[test]
fn l5_fires_on_float_eq_fixture() {
    let rules = rules_for("l5_float_eq");
    assert_eq!(rules, vec![RuleId::L5, RuleId::L5], "{rules:?}");
}

#[test]
fn l6_fires_on_wall_clock_fixture() {
    let rules = rules_for("l6_instant");
    assert_eq!(rules, vec![RuleId::L6, RuleId::L6], "{rules:?}");
}

#[test]
fn l7_fires_on_unbounded_queue_fixture_and_respects_the_waiver() {
    // Two unbounded constructions plus the spawn-per-connection
    // accept loop; the waived `with_capacity` and the scoped worker
    // pool stay clean.
    let rules = rules_for("l7_unbounded_queue");
    assert_eq!(rules, vec![RuleId::L7; 3], "{rules:?}");
}

#[test]
fn l8_fires_on_hash_iteration_fixture_and_respects_the_waiver() {
    // Three classic folds plus the kernel-style forced-event queue
    // held in a HashMap (ISSUE 7).
    let rules = rules_for("l8_hash_iteration");
    assert_eq!(rules, vec![RuleId::L8; 4], "{rules:?}");
}

#[test]
fn l9_fires_on_ambient_nondeterminism_fixture_and_respects_the_waiver() {
    let rules = rules_for("l9_ambient_nondeterminism");
    assert_eq!(rules, vec![RuleId::L9; 4], "{rules:?}");
}

#[test]
fn l10_fires_on_unordered_locks_fixture() {
    let diags = lint_fixture_dir(&fixtures_dir().join("violations")).unwrap();
    let l10: Vec<_> = diags
        .iter()
        .filter(|d| d.file.to_string_lossy().contains("l10_unordered_locks"))
        .collect();
    assert_eq!(l10.len(), 2, "{l10:?}");
    assert!(l10[0].message.contains("manifest order"), "{l10:?}");
    assert!(
        l10[1]
            .message
            .contains("not in the crate's lock-order manifest"),
        "{l10:?}"
    );
}

#[test]
fn l11_fires_on_partial_cmp_scores_fixture() {
    let rules = rules_for("l11_partial_cmp_scores");
    assert_eq!(rules, vec![RuleId::L11, RuleId::L11], "{rules:?}");
}

#[test]
fn diagnostics_carry_file_line_and_column() {
    let diags = lint_fixture_dir(&fixtures_dir().join("violations")).unwrap();
    for d in &diags {
        assert!(d.line >= 1, "{d}");
        assert!(d.col >= 1, "{d}");
        let text = d.to_string();
        assert!(text.contains(&format!("{}:", d.file.display())), "{text}");
        assert!(text.contains(&format!(":{}:{}:", d.line, d.col)), "{text}");
    }
}

#[test]
fn clean_fixture_is_accepted() {
    let diags = lint_fixture_dir(&fixtures_dir().join("clean")).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn workspace_is_lint_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let diags = lint_workspace(&root).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn cli_exits_nonzero_on_violations_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_h2p-lint");
    let bad = Command::new(bin)
        .args(["--fixtures"])
        .arg(fixtures_dir().join("violations"))
        .output()
        .expect("run h2p-lint on violations");
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");

    let good = Command::new(bin)
        .args(["--fixtures"])
        .arg(fixtures_dir().join("clean"))
        .output()
        .expect("run h2p-lint on clean fixtures");
    assert_eq!(good.status.code(), Some(0), "{good:?}");
}

#[test]
fn json_mode_emits_one_parseable_object_per_finding_and_exits_nonzero() {
    let bin = env!("CARGO_BIN_EXE_h2p-lint");
    let out = Command::new(bin)
        .args(["--json", "--fixtures"])
        .arg(fixtures_dir().join("violations"))
        .output()
        .expect("run h2p-lint --json on violations");
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let expected = lint_fixture_dir(&fixtures_dir().join("violations")).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), expected.len(), "{stdout}");
    for (line, diag) in lines.iter().zip(&expected) {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(
            line.contains(&format!("\"rule\":\"{}\"", diag.rule)),
            "{line}"
        );
        assert!(line.contains("\"file\":\""), "{line}");
        assert!(
            line.contains(&format!("\"line\":{},\"col\":{},", diag.line, diag.col)),
            "{line}"
        );
        assert!(line.contains("\"message\":\""), "{line}");
        // The free text is the only field that can carry quotes or
        // backslashes; everything up to it must parse as-is.
        assert!(!line.contains("\n"), "{line}");
    }

    // JSON mode on a clean tree: silent success.
    let good = Command::new(bin)
        .args(["--json", "--fixtures"])
        .arg(fixtures_dir().join("clean"))
        .output()
        .expect("run h2p-lint --json on clean fixtures");
    assert_eq!(good.status.code(), Some(0), "{good:?}");
    assert!(good.stdout.is_empty(), "{good:?}");
}
