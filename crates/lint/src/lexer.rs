//! A hand-rolled, zero-dependency lexer for Rust source text.
//!
//! This is the token engine beneath the lint pass (DESIGN.md §12). It
//! turns a source file into a flat stream of [`Token`]s whose byte
//! spans **tile the input exactly** — concatenating every token's text
//! reproduces the file byte-for-byte, with no gaps and no overlaps
//! (pinned by the property test in `tests/lexer_props.rs`). That
//! invariant is what lets rules reason about spans instead of stripped
//! strings.
//!
//! The lexer resolves the parts of Rust's surface syntax that defeat
//! line-oriented scanning:
//!
//! * **Raw strings** — `r"…"`, `r#"…"#` with any hash depth, and the
//!   byte variants `br…`; their contents are one opaque token, so a
//!   `panic!(` inside a raw string can never reach a rule.
//! * **Nested block comments** — `/* a /* b */ c */` tracked by depth,
//!   across lines.
//! * **Char literals vs. lifetimes** — `'}'` is a literal (its brace
//!   must not unbalance region tracking); `'a` in `<'a>` is a
//!   lifetime; `b'x'` is a byte literal.
//! * **Float literals vs. paths** — `1.5` is one [`TokenKind::Float`];
//!   `self.0` is a dot and an integer; `1..n` is an integer and a
//!   range; `1.max(2)` is an integer and a method call.
//! * **Raw identifiers** — `r#match` is an identifier, not the start
//!   of a raw string.
//!
//! The lexer never fails: any byte sequence lexes (unknown characters
//! become single-char [`TokenKind::Punct`] tokens), so malformed
//! fixtures and mid-edit files still get diagnostics.

use std::fmt;

/// The classes of token the lint rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal/vertical whitespace (kept so spans tile the source).
    Whitespace,
    /// `// …` to end of line, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */`, nested, possibly spanning lines; includes `/** … */`.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime or loop label such as `'a` or `'static`.
    Lifetime,
    /// `'x'`, `'\n'`, `'\u{1F600}'`, or a byte literal `b'x'`.
    Char,
    /// `"…"` or `b"…"` with escapes, possibly spanning lines.
    Str,
    /// `r"…"` / `r#"…"#` / `br#"…"#` raw (byte) string literals.
    RawStr,
    /// Integer literal in any radix, with optional suffix (`42u64`).
    Int,
    /// Float literal (`1.5`, `1.`, `2e-3`, `1.0f32`, `7f64`).
    Float,
    /// One operator or delimiter, maximal-munch (`::`, `==`, `{`, …).
    Punct,
}

impl TokenKind {
    /// Whether rules should look at this token (comments and
    /// whitespace are trivia).
    #[must_use]
    pub fn is_code(self) -> bool {
        !matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// One lexed token with its byte span and 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based character column of the token's first character.
    pub col: usize,
}

impl Token {
    /// The token's text within its source.
    #[must_use]
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{}:{}", self.kind, self.line, self.col)
    }
}

/// Multi-character operators, longest first so maximal munch is a
/// straight prefix scan.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Whether `c` can continue an identifier.
#[must_use]
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into a token stream whose spans tile the input.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut cur = Cursor {
        src: source,
        pos: 0,
        line: 1,
        col: 1,
    };
    while cur.pos < source.len() {
        let start = cur.pos;
        let line = cur.line;
        let col = cur.col;
        let kind = cur.next_token();
        debug_assert!(cur.pos > start, "lexer must always advance");
        tokens.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    tokens
}

struct Cursor<'s> {
    src: &'s str,
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor<'_> {
    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    /// Advances by one char, maintaining line/col.
    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    /// Advances while `pred` holds.
    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }

    /// Lexes one token starting at the cursor, advancing past it.
    fn next_token(&mut self) -> TokenKind {
        let Some(c) = self.peek() else {
            return TokenKind::Whitespace; // unreachable: caller checks pos < len
        };

        if c.is_whitespace() {
            self.bump_while(char::is_whitespace);
            return TokenKind::Whitespace;
        }
        if c == '/' {
            match self.peek_at(1) {
                Some('/') => {
                    self.bump_while(|ch| ch != '\n');
                    return TokenKind::LineComment;
                }
                Some('*') => return self.block_comment(),
                _ => {}
            }
        }
        if c == 'r' || c == 'b' {
            if let Some(kind) = self.raw_or_byte_prefixed() {
                return kind;
            }
        }
        if c == '"' {
            return self.string();
        }
        if c == '\'' {
            return self.char_or_lifetime();
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        if is_ident_start(c) {
            self.bump_while(is_ident_char);
            return TokenKind::Ident;
        }
        self.operator()
    }

    fn block_comment(&mut self) -> TokenKind {
        // At `/*`: track nesting until depth returns to zero or EOF.
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (None, _) => break,
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        TokenKind::BlockComment
    }

    /// Handles every `r…`/`b…` form: raw strings (`r"`, `r#"`, `br"`,
    /// `br#"`), byte strings (`b"`), byte chars (`b'x'`), and raw
    /// identifiers (`r#ident`). Returns `None` when the `r`/`b` is
    /// just the start of a plain identifier.
    fn raw_or_byte_prefixed(&mut self) -> Option<TokenKind> {
        let text = self.rest();
        let mut after_b = text;
        let mut prefix = 0usize;
        if let Some(stripped) = text.strip_prefix('b') {
            after_b = stripped;
            prefix = 1;
        }
        if let Some(after_r) = after_b.strip_prefix('r') {
            let hashes = after_r.len() - after_r.trim_start_matches('#').len();
            let past_hashes = &after_r[hashes..];
            if past_hashes.starts_with('"') {
                // Raw (byte) string: r"…", r#"…"#, br##"…"##, …
                for _ in 0..prefix + 1 + hashes + 1 {
                    self.bump();
                }
                self.raw_string_body(hashes);
                return Some(TokenKind::RawStr);
            }
            if prefix == 0 && hashes == 1 && past_hashes.chars().next().is_some_and(is_ident_start)
            {
                // Raw identifier: r#match
                self.bump();
                self.bump();
                self.bump_while(is_ident_char);
                return Some(TokenKind::Ident);
            }
        }
        if prefix == 1 {
            if after_b.starts_with('"') {
                self.bump(); // the b
                return Some(self.string());
            }
            if after_b.starts_with('\'') {
                self.bump(); // the b
                return Some(self.char_literal_after_quote());
            }
        }
        None
    }

    /// Consumes a raw-string body up to `"` + `hashes` trailing `#`s.
    fn raw_string_body(&mut self, hashes: usize) {
        loop {
            match self.peek() {
                None => return,
                Some('"') => {
                    let tail = &self.rest()[1..];
                    let got = tail.len() - tail.trim_start_matches('#').len();
                    if got >= hashes {
                        for _ in 0..1 + hashes {
                            self.bump();
                        }
                        return;
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Consumes `"…"` with escapes (cursor on the opening quote).
    fn string(&mut self) -> TokenKind {
        self.bump();
        loop {
            match self.peek() {
                None => return TokenKind::Str,
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('"') => {
                    self.bump();
                    return TokenKind::Str;
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Disambiguates `'x'` / `'\n'` (char literals) from `'a` /
    /// `'static` (lifetimes). Cursor is on the quote.
    fn char_or_lifetime(&mut self) -> TokenKind {
        match self.peek_at(1) {
            Some('\\') => self.char_literal_after_quote(),
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char; `'a` (no closing quote) a lifetime.
                if self.peek_at(2) == Some('\'') && !is_ident_char_at(self, 3) {
                    self.char_literal_after_quote()
                } else {
                    self.bump();
                    self.bump_while(is_ident_char);
                    TokenKind::Lifetime
                }
            }
            Some(_) if self.peek_at(2) == Some('\'') => self.char_literal_after_quote(),
            _ => {
                // A stray quote: emit it alone so spans still tile.
                self.bump();
                TokenKind::Punct
            }
        }
    }

    /// Consumes a char literal starting at its opening quote.
    fn char_literal_after_quote(&mut self) -> TokenKind {
        self.bump(); // opening '
        if self.peek() == Some('\\') {
            self.bump();
            self.bump(); // the escaped char (may be u of \u{…})
                         // \u{1F600}: consume through the closing brace.
            if self.peek() == Some('{') {
                self.bump_while(|c| c != '}');
                self.bump();
            }
        } else {
            self.bump();
        }
        if self.peek() == Some('\'') {
            self.bump();
        }
        TokenKind::Char
    }

    /// Lexes a numeric literal, deciding Int vs Float (see module
    /// docs for the `.`-disambiguation rules).
    fn number(&mut self) -> TokenKind {
        let radix_prefixed = self.peek() == Some('0')
            && matches!(self.peek_at(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        if radix_prefixed {
            // Hex/octal/binary: digits, `_`, and any suffix are all
            // ident chars; no dot or exponent applies.
            self.bump();
            self.bump();
            self.bump_while(is_ident_char);
            return TokenKind::Int;
        }
        self.bump_while(|c| c.is_ascii_digit() || c == '_');
        let mut float = false;
        if self.peek() == Some('.') {
            match self.peek_at(1) {
                // `1.5`: fraction digits follow.
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    self.bump();
                    self.bump_while(|ch| ch.is_ascii_digit() || ch == '_');
                }
                // `1..n` is a range, `1.max(2)` a method call — the
                // dot belongs to the next token.
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                // `1.` trailed by `)`, `,`, whitespace, EOF…: a float.
                _ => {
                    float = true;
                    self.bump();
                }
            }
        }
        // Exponent: `1e3`, `2.5E-7` (but not `1e` followed by an
        // identifier continuation that is not a digit).
        if matches!(self.peek(), Some('e' | 'E')) {
            let (sign, first_digit) = match self.peek_at(1) {
                Some('+' | '-') => (1, self.peek_at(2)),
                other => (0, other),
            };
            if first_digit.is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                self.bump(); // e
                for _ in 0..sign {
                    self.bump();
                }
                self.bump_while(|c| c.is_ascii_digit() || c == '_');
            }
        }
        // Type suffix (`u64`, `f32`, or `1_000usize`); a float suffix
        // on a bare integer (`7f64`) makes it a float.
        let suffix_start = self.pos;
        self.bump_while(is_ident_char);
        let suffix = &self.src[suffix_start..self.pos];
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    /// Maximal-munch operator, falling back to a single char.
    fn operator(&mut self) -> TokenKind {
        for op in OPERATORS {
            if self.rest().starts_with(op) {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                return TokenKind::Punct;
            }
        }
        self.bump();
        TokenKind::Punct
    }
}

fn is_ident_char_at(cur: &Cursor<'_>, n: usize) -> bool {
    cur.peek_at(n).is_some_and(is_ident_char)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .iter()
            .filter(|t| t.kind.is_code())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn spans_tile_simple_source() {
        let src = "fn main() { let x = 1.5; }\n";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap/overlap at {t}");
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn float_vs_path_vs_range() {
        assert_eq!(
            kinds("1.5 self.0 1..n 1.max(2) 1. 2e-3 7f64 0x1e3"),
            vec![
                (TokenKind::Float, "1.5"),
                (TokenKind::Ident, "self"),
                (TokenKind::Punct, "."),
                (TokenKind::Int, "0"),
                (TokenKind::Int, "1"),
                (TokenKind::Punct, ".."),
                (TokenKind::Ident, "n"),
                (TokenKind::Int, "1"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "max"),
                (TokenKind::Punct, "("),
                (TokenKind::Int, "2"),
                (TokenKind::Punct, ")"),
                (TokenKind::Float, "1."),
                (TokenKind::Float, "2e-3"),
                (TokenKind::Float, "7f64"),
                (TokenKind::Int, "0x1e3"),
            ]
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(
            kinds("<'a> '}' '\\n' 'static b'x' '\\u{1F600}'"),
            vec![
                (TokenKind::Punct, "<"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Punct, ">"),
                (TokenKind::Char, "'}'"),
                (TokenKind::Char, "'\\n'"),
                (TokenKind::Lifetime, "'static"),
                (TokenKind::Char, "b'x'"),
                (TokenKind::Char, "'\\u{1F600}'"),
            ]
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = "r#\"panic!(\"inner\")\"# r#match br##\"x\"## b\"bytes\"";
        assert_eq!(
            kinds(src),
            vec![
                (TokenKind::RawStr, "r#\"panic!(\"inner\")\"#"),
                (TokenKind::Ident, "r#match"),
                (TokenKind::RawStr, "br##\"x\"##"),
                (TokenKind::Str, "b\"bytes\""),
            ]
        );
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* one /* two */ three */ b";
        let toks = kinds(src);
        assert_eq!(toks, vec![(TokenKind::Ident, "a"), (TokenKind::Ident, "b")]);
        let all = lex(src);
        let comment: Vec<_> = all
            .iter()
            .filter(|t| t.kind == TokenKind::BlockComment)
            .collect();
        assert_eq!(comment.len(), 1);
        assert_eq!(comment[0].text(src), "/* one /* two */ three */");
    }

    #[test]
    fn strings_span_lines_and_escape_quotes() {
        let src = "let s = \"a \\\" } {\nunwrap()\"; done";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap") && t.contains('\n')));
        assert_eq!(toks.last(), Some(&(TokenKind::Ident, "done")));
    }

    #[test]
    fn line_and_column_are_tracked_across_multibyte_text() {
        let src = "let t°mp = 1;\nlet 温度 = 2;";
        let toks = lex(src);
        let second_let = toks
            .iter()
            .find(|t| t.line == 2 && t.kind == TokenKind::Ident)
            .expect("ident on line 2");
        assert_eq!(second_let.text(src), "let");
        assert_eq!(second_let.col, 1);
        let ident = toks
            .iter()
            .find(|t| t.line == 2 && t.text(src) == "温度")
            .expect("CJK ident");
        assert_eq!(ident.col, 5);
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            kinds("a::b != c ..= d >>= e -> f"),
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "::"),
                (TokenKind::Ident, "b"),
                (TokenKind::Punct, "!="),
                (TokenKind::Ident, "c"),
                (TokenKind::Punct, "..="),
                (TokenKind::Ident, "d"),
                (TokenKind::Punct, ">>="),
                (TokenKind::Ident, "e"),
                (TokenKind::Punct, "->"),
                (TokenKind::Ident, "f"),
            ]
        );
    }

    #[test]
    fn lexer_never_fails_on_garbage() {
        for src in ["\"unterminated", "r#\"open", "'", "/* open", "\u{0}\u{7f}é"] {
            let toks = lex(src);
            let mut pos = 0;
            for t in &toks {
                assert_eq!(t.start, pos, "{src:?}");
                pos = t.end;
            }
            assert_eq!(pos, src.len(), "{src:?}");
        }
    }
}
