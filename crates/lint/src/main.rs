//! CLI for the H2P domain-invariant lint pass.
//!
//! ```text
//! cargo run -p h2p-lint                 # lint the workspace, exit 1 on findings
//! cargo run -p h2p-lint -- --root DIR   # lint a different checkout
//! cargo run -p h2p-lint -- --fixtures DIR  # arm all rules over a bare dir
//! cargo run -p h2p-lint -- --json       # one JSON object per finding, for CI
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

/// Escapes `s` for a JSON string literal (quotes, backslashes,
/// control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut fixtures: Option<PathBuf> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--fixtures" if i + 1 < args.len() => {
                fixtures = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!(
                    "h2p-lint: H2P domain-invariant checks (L1-L11)\n\
                     usage: h2p-lint [--root DIR | --fixtures DIR] [--json]\n\
                     \n\
                     --json emits one diagnostic per line as\n\
                     {{\"rule\":…,\"file\":…,\"line\":…,\"col\":…,\"message\":…}}\n\
                     exit codes: 0 clean, 1 findings, 2 error"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("h2p-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let result = if let Some(dir) = fixtures {
        h2p_lint::lint_fixture_dir(&dir)
    } else {
        let start = match root {
            Some(r) => Ok(r),
            None => {
                std::env::current_dir().map_err(|e| h2p_lint::LintError::Io(PathBuf::from("."), e))
            }
        };
        start.and_then(|s| {
            let ws = h2p_lint::find_workspace_root(&s)?;
            h2p_lint::lint_workspace(&ws)
        })
    };

    match result {
        Err(e) => {
            eprintln!("h2p-lint: error: {e}");
            ExitCode::from(2)
        }
        Ok(diagnostics) if diagnostics.is_empty() => {
            if !json {
                println!("h2p-lint: clean (rules L1-L11)");
            }
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                if json {
                    println!(
                        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                        d.rule,
                        json_escape(&d.file.display().to_string()),
                        d.line,
                        d.col,
                        json_escape(&d.message)
                    );
                } else {
                    println!("{d}");
                }
            }
            if !json {
                println!(
                    "h2p-lint: {} violation(s) — see DESIGN.md \
                     \"Static analysis & invariants\" for rule docs and allow syntax",
                    diagnostics.len()
                );
            }
            ExitCode::FAILURE
        }
    }
}
