//! `h2p-lint` — the workspace's domain-invariant lint pass.
//!
//! The H2P design contract says every physical value crossing a module
//! boundary is wrapped in an `h2p-units` newtype, library code never
//! panics on the paper-model hot paths, NaN can never leak into the
//! thermal/TEG solvers, and — since the transparency charter of PRs
//! 2–5 — every engine result is bit-identical across worker counts,
//! cache states, and process restarts. This crate machine-checks that
//! contract with ten rules (run `cargo run -p h2p-lint`, or see
//! `DESIGN.md` §"Static analysis & invariants" and §"Token-level
//! determinism analysis"):
//!
//! * **L1** — no raw `f64`/`f32` under quantity-like names
//!   (`*temp*`, `*celsius*`, `*watts*`, `*flow*`, `*pressure*`,
//!   `*kwh*`, `*usd*`) in `pub fn` signatures of library crates.
//!   `h2p-units` itself is exempt: it *is* the newtype boundary.
//! * **L2** — no `unwrap()` / `expect()` / `panic!` in non-test
//!   library code (benches, binaries and `#[cfg(test)]` regions
//!   exempt; examples carry reasoned allow comments instead).
//! * **L3** — no numeric `as` casts in the physics crates
//!   (`units`, `thermal`, `hydraulics`, `teg`, `cooling`).
//! * **L4** — every crate's `lib.rs` carries
//!   `#![forbid(unsafe_code)]`.
//! * **L5** — no `==`/`!=` comparisons against float literals in
//!   physics crates (NaN-unsafe; use tolerances or the `!(x > 0.0)`
//!   rejection idiom).
//! * **L6** — no `Instant::now()` / `SystemTime::now()` in library
//!   code: all timing goes through `h2p_telemetry::Clock` so runs stay
//!   replayable under a scripted clock. The `Clock` impls in
//!   `h2p-telemetry` are the sole waived call sites.
//! * **L7** — no unbounded queue/channel construction
//!   (`VecDeque::new`, `VecDeque::with_capacity`, `LinkedList::new`,
//!   `mpsc::channel`) in library code: queues admit work through
//!   `h2p_serve::BoundedQueue` (or another capacity-checked wrapper)
//!   so backpressure is typed instead of implied. The lane storage
//!   inside `h2p-serve`'s bounded wrapper carries the only legal
//!   waivers.
//! * **L8** — no iteration over `HashMap`/`HashSet` in
//!   result-affecting library code: hash iteration order is
//!   per-process random, so a fold over it silently breaks the
//!   bit-identity bar. Hold ordered data in `BTreeMap`/`BTreeSet` or
//!   sort before folding.
//! * **L9** — no ambient nondeterminism sources (`thread_rng`,
//!   `RandomState::new`, `std::env` reads, unsorted `read_dir`)
//!   outside the designated seed-plumbing modules
//!   ([`rules::SEED_PLUMBING_MODULES`]); randomness flows from
//!   explicit caller-provided seeds only.
//! * **L10** — every `Mutex`/`RwLock` acquisition in library code
//!   names a lock from the crate's lock-order manifest — a
//!   `// h2p-lint: lock-order: a, b, c` comment in `lib.rs` listing
//!   the crate's locks in global acquisition order — and nested
//!   acquisitions must follow that order (out-of-order nesting is the
//!   deadlock shape; in-order nesting is safe by construction).
//! * **L11** — placement/scheduling policy impls in library code must
//!   not compare scores via `partial_cmp(..).unwrap()` (or
//!   `.expect(..)`): a NaN score would panic mid-simulation. Use
//!   `f64::total_cmp`, which is total over every float.
//!
//! Any finding can be waived in place with a reasoned allow comment,
//! either trailing the line or on the line directly above:
//!
//! ```text
//! let n = samples.len() as f64; // h2p-lint: allow(L3): exact for n < 2^53
//! ```
//!
//! The pass runs offline with no dependencies: a hand-rolled Rust
//! lexer ([`lexer`]) produces a token stream with line/column spans
//! (raw strings, nested block comments, char-vs-lifetime and
//! float-vs-path disambiguation all handled), a scan layer
//! ([`scanner`]) marks `#[cfg(test)]` regions and collects waiver /
//! lock-order directives, and the rules ([`rules`]) are token
//! patterns — so they cannot fire inside string literals or comments
//! and cannot miss multi-line signatures. That trades full type-aware
//! precision for zero-dependency reproducibility; the companion
//! clippy deny-set in `[workspace.lints]` covers the type-aware
//! versions of these checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

pub mod lexer;
pub mod rules;
pub mod scanner;

use std::fmt;
use std::path::{Path, PathBuf};

/// The rule identifiers, stable for allow-lists and CI output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// Raw float under a quantity name in a `pub fn` signature.
    L1,
    /// Panic path (`unwrap`/`expect`/`panic!`) in library code.
    L2,
    /// Numeric `as` cast in a physics crate.
    L3,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    L4,
    /// Float-literal `==`/`!=` comparison in a physics crate.
    L5,
    /// Direct wall-clock read (`Instant::now`/`SystemTime::now`) in
    /// library code, bypassing `h2p_telemetry::Clock`.
    L6,
    /// Unbounded queue/channel construction in library code,
    /// bypassing the capacity-checked wrappers (backpressure charter).
    L7,
    /// Iteration over `HashMap`/`HashSet` in library code — hash
    /// order is per-process random and breaks bit-identity.
    L8,
    /// Ambient nondeterminism source (`thread_rng`, `RandomState`,
    /// `std::env` reads, unsorted `read_dir`) outside seed plumbing.
    L9,
    /// `Mutex`/`RwLock` acquisition outside the crate's lock-order
    /// manifest, or nested against manifest order.
    L10,
    /// `partial_cmp(..).unwrap()`/`.expect(..)` inside a
    /// `PlacementPolicy`/`SchedulingPolicy` impl in library code —
    /// score comparisons must use `total_cmp`.
    L11,
}

impl RuleId {
    /// Parses `"L1"` .. `"L11"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "L1" => Some(RuleId::L1),
            "L2" => Some(RuleId::L2),
            "L3" => Some(RuleId::L3),
            "L4" => Some(RuleId::L4),
            "L5" => Some(RuleId::L5),
            "L6" => Some(RuleId::L6),
            "L7" => Some(RuleId::L7),
            "L8" => Some(RuleId::L8),
            "L9" => Some(RuleId::L9),
            "L10" => Some(RuleId::L10),
            "L11" => Some(RuleId::L11),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
            RuleId::L4 => "L4",
            RuleId::L5 => "L5",
            RuleId::L6 => "L6",
            RuleId::L7 => "L7",
            RuleId::L8 => "L8",
            RuleId::L9 => "L9",
            RuleId::L10 => "L10",
            RuleId::L11 => "L11",
        })
    }
}

/// One lint finding, `rule file:line:col: message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// The offending file.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters) of the offending token.
    pub col: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}:{}: {}",
            self.rule,
            self.file.display(),
            self.line,
            self.col,
            self.message
        )
    }
}

/// How the rules apply to one source file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Library code: panic/determinism rules apply (false for bins,
    /// benches, integration tests).
    pub library: bool,
    /// Physics crate: L3/L5 apply.
    pub physics: bool,
    /// L1 applies (false inside `h2p-units`, which is the boundary,
    /// and in examples, which demonstrate rather than export APIs).
    pub l1_applies: bool,
}

/// Crates whose numeric code carries the paper's physical models.
pub const PHYSICS_CRATES: &[&str] = &["units", "thermal", "hydraulics", "teg", "cooling"];

/// Errors from the lint pass itself (I/O, layout discovery).
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read.
    Io(PathBuf, std::io::Error),
    /// The workspace root could not be located.
    NoWorkspaceRoot(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "cannot read {}: {e}", path.display()),
            LintError::NoWorkspaceRoot(start) => write!(
                f,
                "no workspace root (Cargo.toml with [workspace]) above {}",
                start.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
///
/// # Errors
///
/// [`LintError::NoWorkspaceRoot`] if none is found.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, LintError> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| LintError::Io(manifest.clone(), e))?;
            if text.contains("[workspace]") {
                return Ok(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Err(LintError::NoWorkspaceRoot(start.to_path_buf()))
}

/// Recursively collects `.rs` files under `dir`, sorted by path.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    // h2p-lint: allow(L9): entries are path-sorted below before any caller sees them
    let entries = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Classifies a path inside one crate directory.
fn classify(rel: &Path, crate_name: &str) -> FileClass {
    let mut components = rel.components().map(|c| c.as_os_str().to_string_lossy());
    let top = components.next().unwrap_or_default().to_string();
    let second = components.next().unwrap_or_default().to_string();
    let library = top == "src" && second != "bin" && second != "main.rs";
    FileClass {
        library,
        physics: library && PHYSICS_CRATES.contains(&crate_name),
        l1_applies: crate_name != "units",
    }
}

/// Lints one source file and appends findings (paths reported
/// relative to `root`).
fn lint_file(
    root: &Path,
    file: &Path,
    class: &FileClass,
    crate_locks: &[String],
    out: &mut Vec<Diagnostic>,
) -> Result<(), LintError> {
    let source = std::fs::read_to_string(file).map_err(|e| LintError::Io(file.to_path_buf(), e))?;
    let scanned = scanner::scan(&source);
    let rel_to_root = file.strip_prefix(root).unwrap_or(file);
    rules::check_file(rel_to_root, &scanned, class, crate_locks, out);
    Ok(())
}

/// Lints the whole workspace rooted at `root`. Scope: the root `src/`
/// library facade, every `crates/*` member, and every `examples/`
/// directory (root and per-crate). `vendor/` (offline stubs of
/// external crates) and `crates/lint/fixtures/` (deliberate
/// violations for the lint's own tests) are out of scope.
///
/// Each crate's lock-order manifest — `// h2p-lint: lock-order: …`
/// directives in its `lib.rs` — is parsed first and applied to every
/// file of that crate (files may extend it with local directives).
///
/// # Errors
///
/// [`LintError`] on unreadable files or a missing workspace layout.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let mut diagnostics = Vec::new();

    // Crate roots: (dir, crate_name).
    let mut crate_dirs: Vec<(PathBuf, String)> = vec![(root.to_path_buf(), "h2p".to_string())];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        // h2p-lint: allow(L9): crate dirs are path-sorted below before linting
        let entries = std::fs::read_dir(&crates_dir);
        let entries = entries.map_err(|e| LintError::Io(crates_dir.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::Io(crates_dir.clone(), e))?;
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name().to_string_lossy().to_string();
                crate_dirs.push((path, name));
            }
        }
    }
    crate_dirs.sort();

    for (crate_dir, crate_name) in &crate_dirs {
        // L4 on the crate root, plus the crate's lock-order manifest.
        let mut crate_locks: Vec<String> = Vec::new();
        let lib_rs = crate_dir.join("src").join("lib.rs");
        if lib_rs.is_file() {
            let source =
                std::fs::read_to_string(&lib_rs).map_err(|e| LintError::Io(lib_rs.clone(), e))?;
            if !rules::l4_forbids_unsafe(&source) {
                diagnostics.push(Diagnostic {
                    rule: RuleId::L4,
                    file: lib_rs.strip_prefix(root).unwrap_or(&lib_rs).to_path_buf(),
                    line: 1,
                    col: 1,
                    message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
                });
            }
            crate_locks = scanner::scan(&source).lock_order;
        }

        // Token rules over src/.
        let src_dir = crate_dir.join("src");
        if src_dir.is_dir() {
            let mut files = Vec::new();
            collect_rs_files(&src_dir, &mut files)?;
            for file in files {
                if file.components().any(|c| c.as_os_str() == "fixtures") {
                    continue;
                }
                let rel = file.strip_prefix(crate_dir).unwrap_or(&file);
                let class = classify(rel, crate_name);
                lint_file(root, &file, &class, &crate_locks, &mut diagnostics)?;
            }
        }

        // examples/ are library-grade demo code: the determinism and
        // panic rules apply (waive deliberate panics with allow
        // comments), but they demonstrate rather than export APIs, so
        // L1 signature discipline and physics-cast rules stay off.
        let examples_dir = crate_dir.join("examples");
        if examples_dir.is_dir() {
            let class = FileClass {
                library: true,
                physics: false,
                l1_applies: false,
            };
            let mut files = Vec::new();
            collect_rs_files(&examples_dir, &mut files)?;
            for file in files {
                lint_file(root, &file, &class, &crate_locks, &mut diagnostics)?;
            }
        }
    }
    Ok(diagnostics)
}

/// Lints a loose directory of `.rs` files as if each were non-test
/// library code of a physics crate — every rule armed. Lock-order
/// manifests come from each file's own `lock-order` directives. Used
/// by the fixture tests and by `--fixtures` on the CLI.
///
/// # Errors
///
/// [`LintError`] on unreadable files.
pub fn lint_fixture_dir(dir: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let mut files = Vec::new();
    collect_rs_files(dir, &mut files)?;
    let class = FileClass {
        library: true,
        physics: true,
        l1_applies: true,
    };
    let mut diagnostics = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file).map_err(|e| LintError::Io(file.clone(), e))?;
        let scanned = scanner::scan(&source);
        rules::check_file(&file, &scanned, &class, &[], &mut diagnostics);
        if file.file_name().is_some_and(|n| n == "lib.rs") && !rules::l4_forbids_unsafe(&source) {
            diagnostics.push(Diagnostic {
                rule: RuleId::L4,
                file: file.clone(),
                line: 1,
                col: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
    Ok(diagnostics)
}
