//! Lexical preprocessing of Rust sources.
//!
//! The lint pass runs in an offline sandbox with no `syn`, so rules
//! operate on a *stripped* view of each file: comment and string
//! contents are blanked (preserving line structure and delimiters) and
//! a few structural facts are recovered — `#[cfg(test)]` regions via
//! brace tracking, and `h2p-lint: allow(...)` directives from the
//! comments before they are blanked. This is deliberately simpler than
//! a full parse; the rules it feeds are line-anchored pattern checks
//! for which token-accurate text is sufficient.

use crate::RuleId;
use std::collections::HashMap;

/// One preprocessed source file.
pub struct ScannedFile {
    /// Per-line stripped text (comments/strings blanked, delimiters kept).
    pub lines: Vec<String>,
    /// 1-based lines inside `#[cfg(test)]` items.
    pub test_region: Vec<bool>,
    /// 1-based line -> rules allow-listed for that line.
    pub allows: HashMap<usize, Vec<RuleId>>,
}

/// Lexer state that survives line boundaries.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside `/* ... */`, tracking nesting depth.
    BlockComment(u32),
    /// Inside a `"..."` string.
    Str,
    /// Inside a raw string with `hashes` trailing `#` marks.
    RawStr {
        hashes: u8,
    },
}

/// Strips one line, returning the stripped text, any comment text
/// encountered, and the updated carry-over mode.
fn strip_line(line: &str, mode: Mode) -> (String, String, Mode) {
    let mut out = String::with_capacity(line.len());
    let mut comments = String::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    let mut mode = mode;

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::BlockComment(depth) => {
                comments.push(c);
                if c == '*' && next == Some('/') {
                    comments.push('/');
                    i += 2;
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    continue;
                }
                if c == '/' && next == Some('*') {
                    comments.push('*');
                    i += 2;
                    mode = Mode::BlockComment(depth + 1);
                    continue;
                }
                i += 1;
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // escape: skip escaped char (may end the line)
                    out.push(' ');
                    out.push(' ');
                    continue;
                }
                if c == '"' {
                    out.push('"');
                    mode = Mode::Code;
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            Mode::RawStr { hashes } => {
                if c == '"' {
                    let needed = hashes as usize;
                    let tail: String = bytes[i + 1..].iter().take(needed).collect();
                    if tail.chars().filter(|&h| h == '#').count() == needed {
                        out.push('"');
                        for _ in 0..needed {
                            out.push('#');
                        }
                        i += 1 + needed;
                        mode = Mode::Code;
                        continue;
                    }
                }
                out.push(' ');
                i += 1;
            }
            Mode::Code => {
                match c {
                    '/' if next == Some('/') => {
                        // Line comment: capture for directives, drop
                        // from code view.
                        comments.push_str(&bytes[i..].iter().collect::<String>());
                        i = bytes.len();
                    }
                    '/' if next == Some('*') => {
                        comments.push_str("/*");
                        i += 2;
                        mode = Mode::BlockComment(1);
                    }
                    '"' => {
                        out.push('"');
                        i += 1;
                        mode = Mode::Str;
                    }
                    'r' | 'b' if starts_raw_string(&bytes, i) => {
                        let (prefix_len, hashes) = raw_string_shape(&bytes, i);
                        for _ in 0..prefix_len {
                            out.push(' ');
                        }
                        out.push('"');
                        i += prefix_len + 1;
                        mode = Mode::RawStr { hashes };
                    }
                    'b' if next == Some('"') => {
                        out.push(' ');
                        out.push('"');
                        i += 2;
                        mode = Mode::Str;
                    }
                    '\'' => {
                        // Char literal vs lifetime. A literal closes
                        // with a quote after one (possibly escaped)
                        // character; a lifetime does not.
                        if let Some(advance) = char_literal_len(&bytes, i) {
                            out.push('\'');
                            for _ in 1..advance {
                                out.push(' ');
                            }
                            i += advance;
                        } else {
                            out.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        out.push(c);
                        i += 1;
                    }
                }
            }
        }
    }
    (out, comments, mode)
}

/// Whether position `i` starts `r"`, `r#"`, `br"`, `br#"`, ...
fn starts_raw_string(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Length of the `r##` prefix (before the quote) and its hash count.
fn raw_string_shape(bytes: &[char], i: usize) -> (usize, u8) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u8;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (j - i, hashes)
}

/// If a char literal starts at `i`, its total length; `None` for
/// lifetimes.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        '\\' => {
            // Escaped: find the closing quote within a few chars
            // (\n, \u{..} and friends).
            let mut j = i + 2;
            while j < bytes.len() && j - i < 12 {
                if bytes[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        _ => (bytes.get(i + 2) == Some(&'\'')).then_some(3),
    }
}

/// Parses `h2p-lint: allow(L1)` / `allow(L2, L5)` out of comment text.
fn parse_allow_directive(comment: &str) -> Vec<RuleId> {
    let Some(at) = comment.find("h2p-lint:") else {
        return Vec::new();
    };
    let rest = &comment[at + "h2p-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return Vec::new();
    };
    let args = &rest[open + "allow(".len()..];
    let Some(close) = args.find(')') else {
        return Vec::new();
    };
    args[..close]
        .split(',')
        .filter_map(|s| RuleId::parse(s.trim()))
        .collect()
}

/// Preprocesses a whole file.
#[must_use]
pub fn scan(source: &str) -> ScannedFile {
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut lines = Vec::with_capacity(raw_lines.len());
    let mut allows: HashMap<usize, Vec<RuleId>> = HashMap::new();
    let mut mode = Mode::Code;
    let mut pending_allow: Vec<RuleId> = Vec::new();

    for (idx, raw) in raw_lines.iter().enumerate() {
        let lineno = idx + 1;
        let (stripped, comments, next_mode) = strip_line(raw, mode);
        mode = next_mode;

        let directive = parse_allow_directive(&comments);
        let code_is_blank = stripped.trim().is_empty();
        if !directive.is_empty() {
            if code_is_blank {
                // Standalone comment: applies to the next code line.
                pending_allow = directive;
            } else {
                allows.entry(lineno).or_default().extend(directive);
            }
        } else if !code_is_blank && !pending_allow.is_empty() {
            // Attribute-only lines (e.g. a clippy `#[allow(...)]`
            // stacked under the h2p-lint comment) cannot themselves
            // violate a rule; carry the pending allow through to the
            // code line beneath them.
            let trimmed = stripped.trim();
            if !(trimmed.starts_with("#[") && trimmed.ends_with(']')) {
                allows.entry(lineno).or_default().append(&mut pending_allow);
            }
        }
        lines.push(stripped);
    }

    let test_region = mark_test_regions(&lines);
    ScannedFile {
        lines,
        test_region,
        allows,
    }
}

/// Marks lines covered by `#[cfg(test)]` items (modules or functions)
/// by tracking brace depth from the attribute's opening brace to its
/// matching close.
fn mark_test_regions(lines: &[String]) -> Vec<bool> {
    let mut region = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Depth at which each active test region opened.
    let mut open_regions: Vec<i64> = Vec::new();
    let mut armed = false;

    for (idx, line) in lines.iter().enumerate() {
        if !open_regions.is_empty() {
            region[idx] = true;
        }
        if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
            armed = true;
            region[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if armed {
                        open_regions.push(depth);
                        armed = false;
                        region[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if open_regions.last() == Some(&depth) {
                        open_regions.pop();
                        region[idx] = true;
                    }
                }
                _ => {}
            }
        }
        if armed {
            // Attribute line(s) before the item body opens.
            region[idx] = true;
        }
    }
    region
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_blanked() {
        let s = scan("let x = \"a } b { unwrap()\"; // trailing unwrap()\nlet y = 2;");
        assert!(!s.lines[0].contains("unwrap"));
        assert!(s.lines[0].contains("let x ="));
        assert_eq!(s.lines[1], "let y = 2;");
    }

    #[test]
    fn block_comments_span_lines() {
        let s = scan("a /* one\ntwo unwrap()\nthree */ b");
        assert!(s.lines[1].trim().is_empty());
        assert!(s.lines[2].contains('b'));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) { let c = '}'; let d = '\\n'; }");
        // The brace inside the char literal must not unbalance depth.
        let opens = s.lines[0].matches('{').count();
        let closes = s.lines[0].matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn raw_strings_blanked() {
        let s = scan("let x = r#\"panic!(\"boom\")\"#; let y = 1;");
        assert!(!s.lines[0].contains("panic"));
        assert!(s.lines[0].contains("let y = 1;"));
    }

    #[test]
    fn cfg_test_region_tracked() {
        let src = "fn real() {\n    body();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = scan(src);
        assert!(!s.test_region[0]);
        assert!(!s.test_region[1]);
        assert!(s.test_region[3]);
        assert!(s.test_region[4]);
        assert!(s.test_region[5]);
        assert!(s.test_region[6]);
        assert!(!s.test_region[7]);
    }

    #[test]
    fn allow_directives_same_line_and_preceding() {
        let src = "let a = x.unwrap(); // h2p-lint: allow(L2): infallible\n// h2p-lint: allow(L3, L5): calibration table\nlet b = y as u32;\nlet c = z;\n";
        let s = scan(src);
        assert_eq!(s.allows.get(&1), Some(&vec![RuleId::L2]));
        assert_eq!(s.allows.get(&3), Some(&vec![RuleId::L3, RuleId::L5]));
        assert_eq!(s.allows.get(&4), None);
    }

    #[test]
    fn allow_directive_skips_attribute_lines() {
        let src = "// h2p-lint: allow(L3): small count\n#[allow(clippy::cast_possible_truncation)]\nlet n = x as usize;\n";
        let s = scan(src);
        assert_eq!(s.allows.get(&2), None);
        assert_eq!(s.allows.get(&3), Some(&vec![RuleId::L3]));
    }
}
