//! Structural analysis of one lexed source file.
//!
//! The [`lexer`](crate::lexer) turns bytes into tokens; this module
//! recovers the file-level structure the rules need:
//!
//! * the **code token stream** (comments and whitespace filtered out),
//! * `#[cfg(test)]` **regions** via token-accurate brace tracking
//!   (braces inside strings and char literals are opaque to it),
//! * `h2p-lint: allow(…)` **waiver directives** from comment tokens,
//! * each file's `h2p-lint: lock-order: …` **manifest** entries
//!   (see rule L10 in [`crate::rules`]).
//!
//! Because rules consume tokens rather than stripped lines, a
//! `panic!(` inside a string, a `pub fn` in a doc comment, or a brace
//! in a char literal can no longer confuse them — the failure modes
//! of the earlier stripped-line scanner.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::word_match;
use crate::RuleId;
use std::collections::HashMap;

/// One scanned source file: the token stream plus recovered structure.
pub struct ScannedFile {
    /// The source text the token spans index into.
    pub source: String,
    /// Every token, in order, spans tiling `source`.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of code tokens (not comments/whitespace).
    pub code: Vec<usize>,
    /// `test_region[line - 1]` is true for lines inside
    /// `#[cfg(test)]` items.
    pub test_region: Vec<bool>,
    /// 1-based line → rules waived on that line.
    pub allows: HashMap<usize, Vec<RuleId>>,
    /// Lock names declared by this file's `lock-order` directives, in
    /// manifest order (usually only present in `lib.rs`).
    pub lock_order: Vec<String>,
}

impl ScannedFile {
    /// The text of code token `i` (an index into [`Self::code`]).
    #[must_use]
    pub fn text(&self, i: usize) -> &str {
        self.tokens[self.code[i]].text(&self.source)
    }

    /// The token behind code index `i`.
    #[must_use]
    pub fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    /// Whether code token `i` is the punctuation `op`.
    #[must_use]
    pub fn is_punct(&self, i: usize, op: &str) -> bool {
        i < self.code.len() && self.tok(i).kind == TokenKind::Punct && self.text(i) == op
    }

    /// Whether code token `i` is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, i: usize, word: &str) -> bool {
        i < self.code.len() && self.tok(i).kind == TokenKind::Ident && self.text(i) == word
    }

    /// The kind of code token `i`, if it exists.
    #[must_use]
    pub fn kind(&self, i: usize) -> Option<TokenKind> {
        (i < self.code.len()).then(|| self.tok(i).kind)
    }

    /// Whether code token `i` sits inside a `#[cfg(test)]` region.
    #[must_use]
    pub fn in_test(&self, i: usize) -> bool {
        self.test_region
            .get(self.tok(i).line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// Scans a whole file (see module docs).
#[must_use]
pub fn scan(source: &str) -> ScannedFile {
    let tokens = lex(source);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.kind.is_code().then_some(i))
        .collect();
    let nlines = source.lines().count().max(1);

    let (allows, lock_order) = collect_directives(source, &tokens, &code);
    let test_region = mark_test_regions(source, &tokens, &code, nlines);

    ScannedFile {
        source: source.to_string(),
        tokens,
        code,
        test_region,
        allows,
        lock_order,
    }
}

/// Parses `h2p-lint:` directives out of comment tokens: `allow(L…)`
/// waivers (same line, or the line above skipping attribute-only
/// lines) and `lock-order:` manifest entries.
fn collect_directives(
    source: &str,
    tokens: &[Token],
    code: &[usize],
) -> (HashMap<usize, Vec<RuleId>>, Vec<String>) {
    let mut allows: HashMap<usize, Vec<RuleId>> = HashMap::new();
    let mut lock_order: Vec<String> = Vec::new();

    // Per-line code presence, and whether the line is attribute-only
    // (`#[…]` / `#![…]`), which an allow comment above may skip.
    let mut line_first: HashMap<usize, usize> = HashMap::new();
    let mut line_last: HashMap<usize, usize> = HashMap::new();
    for &ti in code {
        let line = tokens[ti].line;
        line_first.entry(line).or_insert(ti);
        line_last.insert(line, ti);
    }
    let attribute_only = |line: usize| -> bool {
        match (line_first.get(&line), line_last.get(&line)) {
            (Some(&f), Some(&l)) => tokens[f].text(source) == "#" && tokens[l].text(source) == "]",
            _ => false,
        }
    };
    let has_code = |line: usize| line_first.contains_key(&line);

    let mut pending: Vec<(usize, Vec<RuleId>)> = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(source);
        let Some(at) = word_match(text, "h2p-lint").map(|(s, _)| s) else {
            continue;
        };
        let rest = &text[at..];
        if let Some(open) = rest.find("lock-order:") {
            let names = &rest[open + "lock-order:".len()..];
            let names = names.lines().next().unwrap_or(names);
            for name in names.split(',') {
                let name: String = name
                    .trim()
                    .chars()
                    .take_while(|&c| crate::lexer::is_ident_char(c))
                    .collect();
                if !name.is_empty() && !lock_order.contains(&name) {
                    lock_order.push(name);
                }
            }
            continue;
        }
        let rules = parse_allow(rest);
        if rules.is_empty() {
            continue;
        }
        if has_code(t.line) {
            // Trailing comment: waives its own line.
            allows.entry(t.line).or_default().extend(rules);
        } else {
            pending.push((t.line, rules));
        }
    }

    // Standalone allow comments attach to the next code line beneath
    // them, skipping attribute-only lines (a stacked clippy allow
    // cannot itself violate a rule).
    let max_line = tokens.last().map_or(1, |t| t.line);
    for (comment_line, rules) in pending {
        let mut line = comment_line + 1;
        while line <= max_line {
            if has_code(line) {
                if attribute_only(line) {
                    line += 1;
                    continue;
                }
                allows.entry(line).or_default().extend(rules);
                break;
            }
            line += 1;
        }
    }
    (allows, lock_order)
}

/// Parses `allow(L2)` / `allow(L3, L5)` after an `h2p-lint` marker.
fn parse_allow(rest: &str) -> Vec<RuleId> {
    let Some(open) = rest.find("allow(") else {
        return Vec::new();
    };
    let args = &rest[open + "allow(".len()..];
    let Some(close) = args.find(')') else {
        return Vec::new();
    };
    args[..close]
        .split(',')
        .filter_map(|s| RuleId::parse(s.trim()))
        .collect()
}

/// Marks lines covered by `#[cfg(test)]` (and `#[cfg(all(test, …))]`)
/// items by brace tracking over code tokens. String/char contents are
/// whole tokens, so their braces cannot unbalance the walk.
fn mark_test_regions(source: &str, tokens: &[Token], code: &[usize], nlines: usize) -> Vec<bool> {
    let mut region = vec![false; nlines];
    let mut depth: i64 = 0;
    // Brace depths at which an armed `#[cfg(test)]` item opened.
    let mut open_regions: Vec<i64> = Vec::new();
    let mut armed = false;
    let mut mark_from: Option<usize> = None;

    let text = |k: usize| tokens[code[k]].text(source);
    let line = |k: usize| tokens[code[k]].line;
    let mark = |from: usize, to: usize, region: &mut Vec<bool>| {
        for l in from..=to.min(nlines) {
            if l >= 1 {
                region[l - 1] = true;
            }
        }
    };

    let mut i = 0;
    while i < code.len() {
        match text(i) {
            "#" if matches!(code.get(i + 1).map(|_| text(i + 1)), Some("[")) => {
                // Scan the attribute to its matching `]`.
                let attr_start_line = line(i);
                let mut j = i + 2;
                let mut bracket = 1i64;
                let mut is_cfg_test = false;
                // Detect `cfg(test…` or `cfg(all(test…` prefixes.
                if j + 2 < code.len() && text(j) == "cfg" && text(j + 1) == "(" {
                    is_cfg_test = text(j + 2) == "test"
                        || (j + 4 < code.len()
                            && text(j + 2) == "all"
                            && text(j + 3) == "("
                            && text(j + 4) == "test");
                }
                while j < code.len() && bracket > 0 {
                    match text(j) {
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if is_cfg_test {
                    armed = true;
                    mark_from = Some(attr_start_line);
                    mark(
                        attr_start_line,
                        line(j.saturating_sub(1).min(code.len() - 1)),
                        &mut region,
                    );
                }
                i = j;
                continue;
            }
            "{" => {
                if armed {
                    open_regions.push(depth);
                    armed = false;
                }
                depth += 1;
                if !open_regions.is_empty() {
                    if let Some(from) = mark_from.take() {
                        mark(from, line(i), &mut region);
                    }
                    region[line(i) - 1] = true;
                }
            }
            "}" => {
                depth -= 1;
                if open_regions.last() == Some(&depth) {
                    open_regions.pop();
                    region[line(i) - 1] = true;
                }
            }
            ";" if armed && open_regions.is_empty() => {
                // `#[cfg(test)] use …;` — an item with no body.
                if let Some(from) = mark_from.take() {
                    mark(from, line(i), &mut region);
                }
                armed = false;
            }
            _ => {}
        }
        if !open_regions.is_empty() || armed {
            let l = line(i);
            if l >= 1 && l <= nlines {
                region[l - 1] = true;
            }
        }
        i += 1;
    }
    region
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_not_code() {
        let s = scan("let x = \"a } b { unwrap()\"; // trailing unwrap()\nlet y = 2;");
        assert!(!(0..s.code.len()).any(|i| s.is_ident(i, "unwrap")));
        assert!((0..s.code.len()).any(|i| s.is_ident(i, "y")));
    }

    #[test]
    fn raw_string_contents_are_opaque() {
        let s = scan("let x = r#\"panic!(\"boom\")\"#; let y = 1;");
        assert!(!(0..s.code.len()).any(|i| s.is_ident(i, "panic")));
        assert!((0..s.code.len()).any(|i| s.is_ident(i, "y")));
    }

    #[test]
    fn char_literal_braces_do_not_unbalance_regions() {
        let src =
            "fn f() { let c = '}'; }\n#[cfg(test)]\nmod t {\n    fn g() {}\n}\nfn after() {}\n";
        let s = scan(src);
        assert!(!s.test_region[0], "{:?}", s.test_region);
        assert!(s.test_region[1]);
        assert!(s.test_region[2]);
        assert!(s.test_region[3]);
        assert!(s.test_region[4]);
        assert!(!s.test_region[5]);
    }

    #[test]
    fn cfg_test_region_tracked() {
        let src = "fn real() {\n    body();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = scan(src);
        assert!(!s.test_region[0]);
        assert!(!s.test_region[1]);
        assert!(s.test_region[3]);
        assert!(s.test_region[4]);
        assert!(s.test_region[5]);
        assert!(s.test_region[6]);
        assert!(!s.test_region[7]);
    }

    #[test]
    fn cfg_all_test_region_tracked() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t {\n    fn g() {}\n}\nfn real() {}\n";
        let s = scan(src);
        assert!(s.test_region[0]);
        assert!(s.test_region[2]);
        assert!(!s.test_region[4]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn real() {\n    body();\n}\n";
        let s = scan(src);
        assert!(!s.test_region[1], "{:?}", s.test_region);
    }

    #[test]
    fn cfg_test_on_bodyless_item_disarms_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn real() {\n    body();\n}\n";
        let s = scan(src);
        assert!(s.test_region[1]);
        assert!(!s.test_region[2], "{:?}", s.test_region);
        assert!(!s.test_region[3]);
    }

    #[test]
    fn allow_directives_same_line_and_preceding() {
        let src = "let a = x.unwrap(); // h2p-lint: allow(L2): infallible\n// h2p-lint: allow(L3, L5): calibration table\nlet b = y as u32;\nlet c = z;\n";
        let s = scan(src);
        assert_eq!(s.allows.get(&1), Some(&vec![RuleId::L2]));
        assert_eq!(s.allows.get(&3), Some(&vec![RuleId::L3, RuleId::L5]));
        assert_eq!(s.allows.get(&4), None);
    }

    #[test]
    fn allow_directive_skips_attribute_lines() {
        let src = "// h2p-lint: allow(L3): small count\n#[allow(clippy::cast_possible_truncation)]\nlet n = x as usize;\n";
        let s = scan(src);
        assert_eq!(s.allows.get(&2), None);
        assert_eq!(s.allows.get(&3), Some(&vec![RuleId::L3]));
    }

    #[test]
    fn allow_inside_string_is_inert() {
        let src = "let s = \"h2p-lint: allow(L2)\";\nlet a = x.unwrap();\n";
        let s = scan(src);
        assert!(s.allows.is_empty(), "{:?}", s.allows);
    }

    #[test]
    fn lock_order_manifest_parsed_in_order() {
        let src = "//! Crate docs.\n// h2p-lint: lock-order: drain_gate, cache, engines\nfn f() {}\n// h2p-lint: lock-order: extra\n";
        let s = scan(src);
        assert_eq!(s.lock_order, ["drain_gate", "cache", "engines", "extra"]);
    }
}
