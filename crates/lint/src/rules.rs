//! The seven H2P domain-invariant rules.
//!
//! Each rule takes the stripped view of one file (see
//! [`crate::scanner`]) plus its [`FileClass`] and appends
//! [`Diagnostic`]s. Rules fire only where their scope applies:
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | L1 | library code (except `h2p-units` itself) | physical quantities cross `pub fn` boundaries as newtypes, not raw `f64`/`f32` |
//! | L2 | non-test library code | no `unwrap` / `expect` / `panic!` |
//! | L3 | physics crates | no numeric `as` casts (use `From`/`TryFrom` or allow-list) |
//! | L4 | every crate's `lib.rs` | `#![forbid(unsafe_code)]` present |
//! | L5 | physics crates | no `==`/`!=` against float literals |
//! | L6 | non-test library code | no `Instant::now`/`SystemTime::now`; timing goes through `h2p_telemetry::Clock` |
//! | L7 | non-test library code | no unbounded queue/channel construction; admission goes through `h2p_serve::BoundedQueue` |

use crate::scanner::ScannedFile;
use crate::{Diagnostic, FileClass, RuleId};
use std::path::Path;

/// Names that mark a parameter or function as carrying a physical
/// quantity (the glob set from the lint charter).
const QUANTITY_MARKERS: &[&str] = &["temp", "celsius", "watts", "flow", "pressure", "kwh", "usd"];

/// Numeric primitive types an `as` cast can target.
const NUMERIC_TYPES: &[&str] = &[
    "f64", "f32", "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `needle` occurs in `haystack` as a whole word.
fn word_match(haystack: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let at = from + rel;
        let before_ok =
            at == 0 || !is_ident_char(haystack[..at].chars().next_back().unwrap_or(' '));
        let after = at + needle.len();
        let after_ok = after >= haystack.len()
            || !is_ident_char(haystack[after..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

fn quantity_named(ident: &str) -> bool {
    let lower = ident.to_lowercase();
    QUANTITY_MARKERS.iter().any(|m| lower.contains(m))
}

/// Runs every line-anchored rule over one file.
pub fn check_file(
    path: &Path,
    scanned: &ScannedFile,
    class: &FileClass,
    out: &mut Vec<Diagnostic>,
) {
    let mut emit = |rule: RuleId, line: usize, message: String| {
        let allowed = scanned
            .allows
            .get(&line)
            .is_some_and(|rules| rules.contains(&rule));
        if !allowed {
            out.push(Diagnostic {
                rule,
                file: path.to_path_buf(),
                line,
                message,
            });
        }
    };

    if class.library {
        for finding in l2_no_panics(scanned) {
            emit(RuleId::L2, finding.0, finding.1);
        }
        if class.l1_applies {
            for finding in l1_raw_quantity_signatures(scanned) {
                emit(RuleId::L1, finding.0, finding.1);
            }
        }
        for finding in l6_wall_clock_reads(scanned) {
            emit(RuleId::L6, finding.0, finding.1);
        }
        for finding in l7_unbounded_queues(scanned) {
            emit(RuleId::L7, finding.0, finding.1);
        }
    }
    if class.physics {
        for finding in l3_numeric_casts(scanned) {
            emit(RuleId::L3, finding.0, finding.1);
        }
        for finding in l5_float_literal_eq(scanned) {
            emit(RuleId::L5, finding.0, finding.1);
        }
    }
}

/// L4: `lib.rs` must forbid unsafe code. Checked per crate root, not
/// per line, so it lives outside [`check_file`].
#[must_use]
pub fn l4_forbids_unsafe(lib_rs_source: &str) -> bool {
    lib_rs_source
        .lines()
        .any(|l| l.replace(' ', "").starts_with("#![forbid(unsafe_code)]"))
}

type Finding = (usize, String);

/// L2: `unwrap()` / `expect(` / `panic!` / `unimplemented!` / `todo!`
/// outside test regions.
fn l2_no_panics(scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        if scanned.test_region[idx] {
            continue;
        }
        // `debug_assert!` is fine (stripped in release); `assert!` is a
        // documented contract and clippy's missing_panics_doc covers
        // it, so L2 focuses on the paper-model hot paths' silent
        // aborts.
        for (needle, label) in [
            (".unwrap()", "`unwrap()`"),
            (".expect(", "`expect()`"),
            ("panic!(", "`panic!`"),
            ("unimplemented!(", "`unimplemented!`"),
            ("todo!(", "`todo!`"),
        ] {
            if let Some(at) = line.find(needle) {
                // `debug_assert!`'s internal panic and idents like
                // `no_panic!` must not match `panic!(`.
                if needle == "panic!(" {
                    let before = line[..at].chars().next_back();
                    if before.is_some_and(is_ident_char) {
                        continue;
                    }
                }
                findings.push((
                    idx + 1,
                    format!(
                        "{label} in library code: return the crate's typed error \
                         (or justify with `// h2p-lint: allow(L2): <reason>`)"
                    ),
                ));
            }
        }
    }
    findings
}

/// L1: raw `f64`/`f32` crossing `pub fn` boundaries under a
/// quantity-like name.
fn l1_raw_quantity_signatures(scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut idx = 0;
    while idx < scanned.lines.len() {
        if scanned.test_region[idx] {
            idx += 1;
            continue;
        }
        let line = &scanned.lines[idx];
        let Some(fn_at) = find_pub_fn(line) else {
            idx += 1;
            continue;
        };
        // Join lines until the signature terminates.
        let mut signature = line[fn_at..].to_string();
        let mut end = idx;
        while !signature.contains('{') && !signature.contains(';') && end + 1 < scanned.lines.len()
        {
            end += 1;
            signature.push(' ');
            signature.push_str(&scanned.lines[end]);
        }
        let sig_line = idx + 1;
        for finding in check_signature(&signature, sig_line) {
            findings.push(finding);
        }
        idx = end + 1;
    }
    findings
}

/// Position right after `pub ` / `pub(...) ` if the line declares a
/// public function.
fn find_pub_fn(line: &str) -> Option<usize> {
    let pub_at = word_match(line, "pub")?;
    let rest = &line[pub_at + 3..];
    let rest_trim = rest.trim_start();
    let skipped = rest.len() - rest_trim.len();
    let after_vis = if rest_trim.starts_with('(') {
        let close = rest_trim.find(')')?;
        rest_trim[close + 1..].trim_start()
    } else {
        rest_trim
    };
    if after_vis.starts_with("fn ") {
        // Offset only used to slice the signature's tail; recompute
        // conservatively from the `fn` keyword.
        let fn_rel = line[pub_at..].find("fn ")?;
        let _ = skipped;
        Some(pub_at + fn_rel)
    } else {
        None
    }
}

/// Splits `args` on commas at angle/paren/bracket depth zero.
fn split_top_level(args: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in args.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&args[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&args[start..]);
    parts
}

/// Whether a type text is a bare raw float (`f64`, `f32`, `&f64`, ...).
fn is_raw_float_type(ty: &str) -> bool {
    let t = ty
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim();
    t == "f64" || t == "f32"
}

fn check_signature(signature: &str, line: usize) -> Vec<Finding> {
    let mut findings = Vec::new();
    // `fn name(params) -> ret`
    let Some(open) = signature.find('(') else {
        return findings;
    };
    let name = signature["fn ".len()..open]
        .trim()
        .trim_end_matches(|c: char| !is_ident_char(c))
        .to_string();
    let name = name.split('<').next().unwrap_or("").trim().to_string();

    // Find the matching close paren of the parameter list.
    let mut depth = 0i32;
    let mut close = open;
    for (i, c) in signature[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let params = &signature[open + 1..close];
    for param in split_top_level(params) {
        let Some((pname, ptype)) = param.split_once(':') else {
            continue; // self, _ or malformed
        };
        let pname = pname.trim().trim_start_matches("mut ").trim();
        if quantity_named(pname) && is_raw_float_type(ptype) {
            findings.push((
                line,
                format!(
                    "pub fn `{name}` takes quantity-named parameter `{pname}` as raw \
                     `{}` — use an `h2p-units` newtype",
                    ptype.trim()
                ),
            ));
        }
    }

    // Return type: the function name carries the quantity.
    if let Some(arrow) = signature.find("->") {
        let ret_end = signature.find(['{', ';']).unwrap_or(signature.len());
        if ret_end > arrow + 2 {
            let ret = signature[arrow + 2..ret_end].trim();
            let ret = ret.split("where").next().unwrap_or(ret).trim();
            if quantity_named(&name) && is_raw_float_type(ret) {
                findings.push((
                    line,
                    format!(
                        "pub fn `{name}` returns raw `{ret}` for a quantity-named \
                         API — use an `h2p-units` newtype"
                    ),
                ));
            }
        }
    }
    findings
}

/// L3: `expr as <numeric>` casts.
fn l3_numeric_casts(scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        if scanned.test_region[idx] {
            continue;
        }
        let mut search_from = 0;
        while let Some(rel) = line[search_from..].find(" as ") {
            let at = search_from + rel;
            let after = line[at + 4..].trim_start();
            let target: String = after.chars().take_while(|&c| is_ident_char(c)).collect();
            search_from = at + 4;
            if !NUMERIC_TYPES.contains(&target.as_str()) {
                continue;
            }
            // `as` must follow an expression, not `use x as y`.
            let before = line[..at].trim_end();
            if before.ends_with("use") || before.is_empty() {
                continue;
            }
            findings.push((
                idx + 1,
                format!(
                    "numeric `as {target}` cast in physics crate — use `From`/`TryFrom` \
                     conversions (or justify with `// h2p-lint: allow(L3): <reason>`)"
                ),
            ));
        }
    }
    findings
}

/// L6: direct wall-clock reads in library code. Every timestamp must
/// come from `h2p_telemetry::Clock` so a scripted [`ManualClock`] can
/// replay any run; the two `MonotonicClock` call sites in
/// `crates/telemetry/src/clock.rs` carry the only legal waivers.
///
/// [`ManualClock`]: https://docs.rs/h2p-telemetry
fn l6_wall_clock_reads(scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        if scanned.test_region[idx] {
            continue;
        }
        for needle in ["Instant::now(", "SystemTime::now("] {
            if line.contains(needle) {
                findings.push((
                    idx + 1,
                    format!(
                        "`{}now()` in library code defeats replayable timing — take \
                         timestamps from `h2p_telemetry::Clock`/`Registry::now_nanos` \
                         (or justify with `// h2p-lint: allow(L6): <reason>`)",
                        needle.trim_end_matches("now(")
                    ),
                ));
            }
        }
    }
    findings
}

/// L7: unbounded queue/channel construction in library code. A queue
/// without an admission bound turns overload into silent memory growth
/// instead of a typed `Rejected` response; the serving charter
/// (DESIGN.md §"Scenario serving") requires every producer-facing
/// queue to go through `h2p_serve::BoundedQueue` or an equivalently
/// capacity-checked wrapper. The lane storage inside that wrapper
/// carries the only legal waivers. `VecDeque::with_capacity` is flagged
/// too: capacity is an allocation hint, not an admission limit.
fn l7_unbounded_queues(scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        if scanned.test_region[idx] {
            continue;
        }
        for (needle, label) in [
            ("VecDeque::new", "`VecDeque::new()`"),
            ("VecDeque::with_capacity", "`VecDeque::with_capacity()`"),
            ("LinkedList::new", "`LinkedList::new()`"),
            ("mpsc::channel", "`mpsc::channel()`"),
        ] {
            // Constructor paths may continue with `(` or a turbofish
            // `::<T>(`, but never with another identifier character
            // (`mpsc::channel_pair` is not `mpsc::channel`).
            let called = line.find(needle).is_some_and(|at| {
                !line[at + needle.len()..]
                    .chars()
                    .next()
                    .is_some_and(is_ident_char)
            });
            if called {
                findings.push((
                    idx + 1,
                    format!(
                        "{label} builds an unbounded queue in library code — admit work \
                         through `h2p_serve::BoundedQueue` (or another capacity-checked \
                         wrapper), or justify with `// h2p-lint: allow(L7): <reason>`"
                    ),
                ));
            }
        }
    }
    findings
}

/// L5: `==` / `!=` against a float literal.
fn l5_float_literal_eq(scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        if scanned.test_region[idx] {
            continue;
        }
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(rel) = line[from..].find(op) {
                let at = from + rel;
                from = at + op.len();
                // Skip `<=`, `>=`, `!=` handled directly; ensure not
                // part of `===`-like or `<=`/`>=` sequences.
                if op == "==" {
                    let prev = line[..at].chars().next_back();
                    if matches!(prev, Some('<' | '>' | '!' | '=')) {
                        continue;
                    }
                }
                let rhs = line[at + op.len()..].trim_start();
                let lhs = line[..at].trim_end();
                if is_float_literal_start(rhs) || is_float_literal_end(lhs) {
                    findings.push((
                        idx + 1,
                        format!(
                            "float-literal `{op}` comparison is NaN-unsafe — compare \
                             with a tolerance or use the `!(x > 0.0)` rejection idiom \
                             (or justify with `// h2p-lint: allow(L5): <reason>`)"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// Whether text begins with a float literal like `0.0`, `-1.5e3`, `1.`.
fn is_float_literal_start(text: &str) -> bool {
    let t = text.strip_prefix('-').unwrap_or(text);
    let mut chars = t.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    let mut seen_dot = false;
    for c in chars {
        match c {
            '0'..='9' | '_' => {}
            '.' => {
                seen_dot = true;
                break;
            }
            _ => return false,
        }
    }
    seen_dot
}

/// Whether text ends with a float literal.
fn is_float_literal_end(text: &str) -> bool {
    let mut rev: Vec<char> = text.chars().rev().collect();
    // Allow a f64/f32 suffix.
    for suffix in ["f64", "f32"] {
        if let Some(stripped) = text.strip_suffix(suffix) {
            rev = stripped.chars().rev().collect();
            break;
        }
    }
    let mut seen_digit = false;
    let mut seen_dot_at = None;
    for (i, &c) in rev.iter().enumerate() {
        match c {
            '0'..='9' | '_' => seen_digit = true,
            '.' => {
                seen_dot_at = Some(i);
                break;
            }
            _ => break,
        }
    }
    let Some(dot) = seen_dot_at else {
        return false;
    };
    // Distinguish the literal `1.5` from the tuple-field access
    // `self.0`: a literal has a digit (or nothing) before the dot.
    match rev.get(dot + 1) {
        None => false, // a bare `.5` never appears as a literal here
        Some(c) => seen_digit && c.is_ascii_digit(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use crate::FileClass;
    use std::path::PathBuf;

    fn run(source: &str, class: &FileClass) -> Vec<Diagnostic> {
        let scanned = scan(source);
        let mut out = Vec::new();
        check_file(&PathBuf::from("test.rs"), &scanned, class, &mut out);
        out
    }

    fn physics_lib() -> FileClass {
        FileClass {
            library: true,
            physics: true,
            l1_applies: true,
        }
    }

    #[test]
    fn l1_flags_raw_quantity_params_and_returns() {
        let src = "pub fn set_inlet_temp(inlet_temp_c: f64) {}\n\
                   pub fn water_flow(&self) -> f64 { self.flow }\n\
                   pub fn count(&self) -> usize { 0 }\n\
                   pub fn inlet(&self) -> Celsius { self.t }\n";
        let diags = run(src, &physics_lib());
        let l1: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::L1).collect();
        assert_eq!(l1.len(), 2, "{l1:?}");
        assert_eq!(l1[0].line, 1);
        assert_eq!(l1[1].line, 2);
    }

    #[test]
    fn l2_exempts_tests_and_allows() {
        let src = "fn a() { x.unwrap(); }\n\
                   fn b() { y.expect(\"ok\"); } // h2p-lint: allow(L2): infallible\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { z.unwrap(); panic!(\"no\"); }\n}\n";
        let diags = run(src, &physics_lib());
        let l2: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::L2).collect();
        assert_eq!(l2.len(), 1, "{l2:?}");
        assert_eq!(l2[0].line, 1);
    }

    #[test]
    fn l2_does_not_flag_debug_assert() {
        let diags = run("fn a() { debug_assert!(x > 0.0); }\n", &physics_lib());
        assert!(diags.iter().all(|d| d.rule != RuleId::L2), "{diags:?}");
    }

    #[test]
    fn l3_flags_numeric_casts_only_in_physics() {
        let src = "fn a(n: usize) -> f64 { n as f64 }\n";
        assert_eq!(run(src, &physics_lib()).len(), 1);
        let non_physics = FileClass {
            library: true,
            physics: false,
            l1_applies: true,
        };
        assert!(run(src, &non_physics).is_empty());
    }

    #[test]
    fn l5_flags_float_literal_comparisons() {
        let src = "fn a(x: f64) -> bool { x == 0.0 }\n\
                   fn b(x: f64) -> bool { 1.5 != x }\n\
                   fn c(x: f64) -> bool { !(x > 0.0) }\n\
                   fn d(n: usize) -> bool { n == 0 }\n";
        let diags = run(src, &physics_lib());
        let l5: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::L5).collect();
        assert_eq!(l5.len(), 2, "{l5:?}");
    }

    #[test]
    fn l6_flags_wall_clock_reads_outside_tests() {
        let src = "fn a() { let t = std::time::Instant::now(); }\n\
                   fn b() { let t = SystemTime::now(); }\n\
                   fn c() { let t = Instant::now(); } // h2p-lint: allow(L6): Clock impl\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let x = Instant::now(); }\n}\n";
        let diags = run(src, &physics_lib());
        let l6: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::L6).collect();
        assert_eq!(l6.len(), 2, "{l6:?}");
        assert_eq!(l6[0].line, 1);
        assert_eq!(l6[1].line, 2);
    }

    #[test]
    fn l7_flags_unbounded_queue_construction() {
        let src = "fn a() { let q: VecDeque<u8> = VecDeque::new(); }\n\
                   fn b() { let q: VecDeque<u8> = VecDeque::with_capacity(8); }\n\
                   fn c() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n\
                   // h2p-lint: allow(L7): bounded by the admission check\n\
                   fn d() { let q: VecDeque<u8> = VecDeque::new(); }\n\
                   fn e() { let (tx, rx) = std::sync::mpsc::sync_channel::<u8>(4); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let q: VecDeque<u8> = VecDeque::new(); }\n}\n";
        let diags = run(src, &physics_lib());
        let l7: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::L7).collect();
        assert_eq!(l7.len(), 3, "{l7:?}");
        assert_eq!(l7[0].line, 1);
        assert_eq!(l7[1].line, 2);
        assert_eq!(l7[2].line, 3);
    }

    #[test]
    fn l4_detects_forbid_attribute() {
        assert!(l4_forbids_unsafe("//! docs\n#![forbid(unsafe_code)]\n"));
        assert!(!l4_forbids_unsafe("//! docs\n#![warn(missing_docs)]\n"));
    }
}
