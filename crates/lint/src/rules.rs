//! The ten H2P domain-invariant rules, as token-pattern checks.
//!
//! Each rule consumes the token view of one file (see
//! [`crate::scanner`] and [`crate::lexer`]) plus its [`FileClass`] and
//! appends [`Diagnostic`]s. Rules fire only where their scope applies:
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | L1 | library code (except `h2p-units` itself) | physical quantities cross `pub fn` boundaries as newtypes, not raw `f64`/`f32` |
//! | L2 | non-test library code | no `unwrap` / `expect` / `panic!` |
//! | L3 | physics crates | no numeric `as` casts (use `From`/`TryFrom` or allow-list) |
//! | L4 | every crate's `lib.rs` | `#![forbid(unsafe_code)]` present |
//! | L5 | physics crates | no `==`/`!=` against float literals |
//! | L6 | non-test library code | no `Instant::now`/`SystemTime::now`; timing goes through `h2p_telemetry::Clock` |
//! | L7 | non-test library code | no unbounded queue/channel construction (admission goes through `h2p_serve::BoundedQueue`) and no `thread::spawn` inside loop bodies (connection/accept loops use a fixed `thread::scope` worker pool over a bounded handoff) |
//! | L8 | non-test library code | no iteration over `HashMap`/`HashSet` (iteration order varies run to run); hold ordered data in `BTreeMap`/`BTreeSet` or sort before folding |
//! | L9 | non-test library code outside [`SEED_PLUMBING_MODULES`] | no ambient nondeterminism: `thread_rng`, `RandomState::new`, `std::env` reads, unsorted `read_dir` |
//! | L10 | non-test library code | every `Mutex`/`RwLock` acquisition names a lock from the crate's `lock-order` manifest, and nested acquisitions follow manifest order |
//! | L11 | non-test library code | no `partial_cmp(..).unwrap()`/`.expect(..)` on scores inside `PlacementPolicy`/`SchedulingPolicy` impls — compare with `f64::total_cmp` |
//!
//! L8–L10 are the determinism charter: every engine result must be
//! bit-identical across worker counts, cache states, and process
//! restarts (the transparency-test bar from PRs 2–5), and hash-order
//! iteration, ambient entropy, and ad-hoc locking are the three ways
//! library code silently breaks that.

use crate::lexer::TokenKind;
use crate::scanner::ScannedFile;
use crate::{Diagnostic, FileClass, RuleId};
use std::collections::BTreeSet;
use std::path::Path;

/// Names that mark a parameter or function as carrying a physical
/// quantity (the glob set from the lint charter).
const QUANTITY_MARKERS: &[&str] = &["temp", "celsius", "watts", "flow", "pressure", "kwh", "usd"];

/// Numeric primitive types an `as` cast can target.
const NUMERIC_TYPES: &[&str] = &[
    "f64", "f32", "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
];

/// `HashMap`/`HashSet` methods whose visit order is the hasher's.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Modules designated as the workspace's seed plumbing: the only
/// library code allowed to construct randomness, because they do it
/// from explicit caller-provided seeds. L9 does not scan them.
pub const SEED_PLUMBING_MODULES: &[&str] = &["crates/faults/src/plan.rs", "crates/workload/src/"];

/// Whether `needle` occurs in `haystack` as a whole word, returning
/// the byte span of the first such occurrence.
///
/// "Word" means the match is not flanked by identifier characters
/// (Unicode alphanumerics or `_`), so `temp` matches in `set temp` but
/// not in `attempt` or `tempéré`. The boundary checks decode the
/// actual neighboring characters, which is safe at any UTF-8 boundary
/// because `str::find` only returns char-aligned offsets.
#[must_use]
pub fn word_match(haystack: &str, needle: &str) -> Option<(usize, usize)> {
    if needle.is_empty() {
        return None;
    }
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let start = from + rel;
        let end = start + needle.len();
        let before_ok = haystack[..start]
            .chars()
            .next_back()
            .is_none_or(|c| !crate::lexer::is_ident_char(c));
        let after_ok = haystack[end..]
            .chars()
            .next()
            .is_none_or(|c| !crate::lexer::is_ident_char(c));
        if before_ok && after_ok {
            return Some((start, end));
        }
        from = end;
    }
    None
}

fn quantity_named(ident: &str) -> bool {
    let lower = ident.to_lowercase();
    QUANTITY_MARKERS.iter().any(|m| lower.contains(m))
}

/// One rule hit: 1-based line, 1-based column, message.
type Finding = (usize, usize, String);

/// Runs every token-pattern rule over one file. `crate_locks` is the
/// lock-order manifest parsed from the crate root (the file's own
/// `lock-order` directives extend it).
pub fn check_file(
    path: &Path,
    scanned: &ScannedFile,
    class: &FileClass,
    crate_locks: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let mut emit = |rule: RuleId, finding: Finding| {
        let (line, col, message) = finding;
        let allowed = scanned
            .allows
            .get(&line)
            .is_some_and(|rules| rules.contains(&rule));
        if !allowed {
            out.push(Diagnostic {
                rule,
                file: path.to_path_buf(),
                line,
                col,
                message,
            });
        }
    };

    if class.library {
        for finding in l2_no_panics(scanned) {
            emit(RuleId::L2, finding);
        }
        if class.l1_applies {
            for finding in l1_raw_quantity_signatures(scanned) {
                emit(RuleId::L1, finding);
            }
        }
        for finding in l6_wall_clock_reads(scanned) {
            emit(RuleId::L6, finding);
        }
        for finding in l7_unbounded_queues(scanned) {
            emit(RuleId::L7, finding);
        }
        for finding in l8_hash_iteration(scanned) {
            emit(RuleId::L8, finding);
        }
        if !in_seed_plumbing(path) {
            for finding in l9_ambient_nondeterminism(scanned) {
                emit(RuleId::L9, finding);
            }
        }
        for finding in l10_lock_order(scanned, crate_locks) {
            emit(RuleId::L10, finding);
        }
        for finding in l11_partial_cmp_scores(scanned) {
            emit(RuleId::L11, finding);
        }
    }
    if class.physics {
        for finding in l3_numeric_casts(scanned) {
            emit(RuleId::L3, finding);
        }
        for finding in l5_float_literal_eq(scanned) {
            emit(RuleId::L5, finding);
        }
    }
}

fn in_seed_plumbing(path: &Path) -> bool {
    let normalized = path.to_string_lossy().replace('\\', "/");
    SEED_PLUMBING_MODULES.iter().any(|m| normalized.contains(m))
}

/// L4: `lib.rs` must forbid unsafe code — token-checked, so the
/// attribute is found regardless of spacing and never inside a string.
#[must_use]
pub fn l4_forbids_unsafe(lib_rs_source: &str) -> bool {
    let s = crate::scanner::scan(lib_rs_source);
    (0..s.code.len()).any(|i| {
        s.is_punct(i, "#")
            && s.is_punct(i + 1, "!")
            && s.is_punct(i + 2, "[")
            && s.is_ident(i + 3, "forbid")
            && s.is_punct(i + 4, "(")
            && {
                let mut j = i + 5;
                let mut hit = false;
                while j < s.code.len() && !s.is_punct(j, ")") {
                    hit |= s.is_ident(j, "unsafe_code");
                    j += 1;
                }
                hit
            }
    })
}

/// Code index just past the delimiter that matches the opener at
/// `open` (whose text must be `(`, `[`, or `{`).
fn matching_close(s: &ScannedFile, open: usize) -> usize {
    let (inc, dec) = match s.text(open) {
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => ("(", ")"),
    };
    let mut depth = 0i64;
    let mut i = open;
    while i < s.code.len() {
        if s.is_punct(i, inc) {
            depth += 1;
        } else if s.is_punct(i, dec) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    s.code.len().saturating_sub(1)
}

fn at(s: &ScannedFile, i: usize) -> (usize, usize) {
    let t = s.tok(i);
    (t.line, t.col)
}

/// L2: `unwrap()` / `expect(` / `panic!` / `unimplemented!` / `todo!`
/// outside test regions. `debug_assert!` is fine (stripped in
/// release); `assert!` is a documented contract covered by clippy's
/// `missing_panics_doc`, so L2 focuses on silent aborts on the
/// paper-model hot paths.
fn l2_no_panics(s: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for i in 0..s.code.len() {
        if s.in_test(i) {
            continue;
        }
        let label = if s.is_punct(i, ".") && s.is_punct(i + 2, "(") {
            if s.is_ident(i + 1, "unwrap") && s.is_punct(i + 3, ")") {
                Some((i + 1, "`unwrap()`"))
            } else if s.is_ident(i + 1, "expect") {
                Some((i + 1, "`expect()`"))
            } else {
                None
            }
        } else if s.is_punct(i + 1, "!") && s.is_punct(i + 2, "(") {
            if s.is_ident(i, "panic") {
                Some((i, "`panic!`"))
            } else if s.is_ident(i, "unimplemented") {
                Some((i, "`unimplemented!`"))
            } else if s.is_ident(i, "todo") {
                Some((i, "`todo!`"))
            } else {
                None
            }
        } else {
            None
        };
        if let Some((anchor, label)) = label {
            let (line, col) = at(s, anchor);
            findings.push((
                line,
                col,
                format!(
                    "{label} in library code: return the crate's typed error \
                     (or justify with `// h2p-lint: allow(L2): <reason>`)"
                ),
            ));
        }
    }
    findings
}

/// L1: raw `f64`/`f32` crossing `pub fn` boundaries under a
/// quantity-like name. Token-accurate over multi-line signatures.
fn l1_raw_quantity_signatures(s: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut i = 0;
    while i < s.code.len() {
        if !s.is_ident(i, "pub") || s.in_test(i) {
            i += 1;
            continue;
        }
        // Optional restriction: pub(crate), pub(in …).
        let mut j = i + 1;
        if s.is_punct(j, "(") {
            j = matching_close(s, j) + 1;
        }
        if !s.is_ident(j, "fn") {
            i += 1;
            continue;
        }
        let name_idx = j + 1;
        let Some(TokenKind::Ident) = s.kind(name_idx) else {
            i = j + 1;
            continue;
        };
        let fn_name = s.text(name_idx).to_string();
        let mut k = name_idx + 1;
        // Skip generics `<…>` (angle counting; `->` in Fn bounds is
        // its own token and never miscounted).
        if s.is_punct(k, "<") {
            let mut angle = 0i64;
            while k < s.code.len() {
                angle += angle_delta(s.text(k));
                k += 1;
                if angle <= 0 {
                    break;
                }
            }
        }
        if !s.is_punct(k, "(") {
            i = name_idx;
            continue;
        }
        let close = matching_close(s, k);
        for finding in check_params(s, k + 1, close, &fn_name) {
            findings.push(finding);
        }
        // Return type: the function name carries the quantity.
        if s.is_punct(close + 1, "->") {
            let mut end = close + 2;
            while end < s.code.len()
                && !s.is_punct(end, "{")
                && !s.is_punct(end, ";")
                && !s.is_ident(end, "where")
            {
                end += 1;
            }
            if quantity_named(&fn_name) && is_raw_float_type(s, close + 2, end) {
                let (line, col) = at(s, name_idx);
                findings.push((
                    line,
                    col,
                    format!(
                        "pub fn `{fn_name}` returns a raw float for a quantity-named \
                         API — use an `h2p-units` newtype"
                    ),
                ));
            }
        }
        i = close + 1;
    }
    findings
}

/// Net angle-bracket depth change contributed by one punct token.
fn angle_delta(text: &str) -> i64 {
    match text {
        "<" => 1,
        "<<" => 2,
        ">" => -1,
        ">>" => -2,
        _ => 0,
    }
}

/// Checks the parameter list between code indices `from..close`.
fn check_params(s: &ScannedFile, from: usize, close: usize, fn_name: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut start = from;
    let mut depth = 0i64;
    let mut angle = 0i64;
    let mut k = from;
    while k <= close {
        let end_of_param = k == close || (depth == 0 && angle == 0 && s.is_punct(k, ","));
        if end_of_param {
            if let Some(f) = check_one_param(s, start, k, fn_name) {
                findings.push(f);
            }
            start = k + 1;
        } else {
            match s.text(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                t => angle += angle_delta(t),
            }
        }
        k += 1;
    }
    findings
}

/// One parameter (code range `[from, to)`): flags `name: f64` under a
/// quantity name.
fn check_one_param(s: &ScannedFile, from: usize, to: usize, fn_name: &str) -> Option<Finding> {
    let colon = (from..to).find(|&k| s.is_punct(k, ":"))?;
    if colon == from || s.kind(colon - 1) != Some(TokenKind::Ident) {
        return None; // destructuring or `self: …`-less patterns
    }
    let pname = s.text(colon - 1);
    if !quantity_named(pname) || !is_raw_float_type(s, colon + 1, to) {
        return None;
    }
    let (line, col) = at(s, colon - 1);
    Some((
        line,
        col,
        format!(
            "pub fn `{fn_name}` takes quantity-named parameter `{pname}` as a raw \
             float — use an `h2p-units` newtype"
        ),
    ))
}

/// Whether code range `[from, to)` is a bare raw float type: `f64`,
/// `&f32`, `&'a mut f64`, … (references and lifetimes stripped).
fn is_raw_float_type(s: &ScannedFile, from: usize, to: usize) -> bool {
    let mut core = None;
    for k in from..to.min(s.code.len()) {
        if s.is_punct(k, "&") || s.is_ident(k, "mut") || s.kind(k) == Some(TokenKind::Lifetime) {
            continue;
        }
        if core.is_some() {
            return false; // more than one substantive token
        }
        core = Some(k);
    }
    core.is_some_and(|k| s.is_ident(k, "f64") || s.is_ident(k, "f32"))
}

/// L3: `expr as <numeric>` casts (never `use x as y` renames).
fn l3_numeric_casts(s: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut stmt_start = 0;
    for i in 0..s.code.len() {
        if s.is_punct(i, ";") || s.is_punct(i, "{") || s.is_punct(i, "}") {
            stmt_start = i + 1;
            continue;
        }
        if !s.is_ident(i, "as") || i == 0 || s.in_test(i) {
            continue;
        }
        if s.is_ident(stmt_start, "use") {
            continue;
        }
        let target = if s.kind(i + 1) == Some(TokenKind::Ident) {
            s.text(i + 1)
        } else {
            continue;
        };
        if !NUMERIC_TYPES.contains(&target) {
            continue;
        }
        let (line, col) = at(s, i);
        findings.push((
            line,
            col,
            format!(
                "numeric `as {target}` cast in physics crate — use `From`/`TryFrom` \
                 conversions (or justify with `// h2p-lint: allow(L3): <reason>`)"
            ),
        ));
    }
    findings
}

/// L5: `==` / `!=` against a float literal. The lexer distinguishes
/// `1.5` from `self.0` and `0..n`, so tuple fields and ranges can no
/// longer false-positive.
fn l5_float_literal_eq(s: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for i in 0..s.code.len() {
        if s.in_test(i) || !(s.is_punct(i, "==") || s.is_punct(i, "!=")) {
            continue;
        }
        let rhs_float = s.kind(i + 1) == Some(TokenKind::Float)
            || (s.is_punct(i + 1, "-") && s.kind(i + 2) == Some(TokenKind::Float));
        let lhs_float = i > 0 && s.kind(i - 1) == Some(TokenKind::Float);
        if rhs_float || lhs_float {
            let (line, col) = at(s, i);
            findings.push((
                line,
                col,
                format!(
                    "float-literal `{}` comparison is NaN-unsafe — compare \
                     with a tolerance or use the `!(x > 0.0)` rejection idiom \
                     (or justify with `// h2p-lint: allow(L5): <reason>`)",
                    s.text(i)
                ),
            ));
        }
    }
    findings
}

/// L6: direct wall-clock reads in library code. Every timestamp must
/// come from `h2p_telemetry::Clock` so a scripted `ManualClock` can
/// replay any run; the `MonotonicClock` call sites in
/// `crates/telemetry/src/clock.rs` carry the only legal waivers.
fn l6_wall_clock_reads(s: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for i in 0..s.code.len() {
        if s.in_test(i) {
            continue;
        }
        for source in ["Instant", "SystemTime"] {
            if s.is_ident(i, source)
                && s.is_punct(i + 1, "::")
                && s.is_ident(i + 2, "now")
                && s.is_punct(i + 3, "(")
            {
                let (line, col) = at(s, i);
                findings.push((
                    line,
                    col,
                    format!(
                        "`{source}::now()` in library code defeats replayable timing — take \
                         timestamps from `h2p_telemetry::Clock`/`Registry::now_nanos` \
                         (or justify with `// h2p-lint: allow(L6): <reason>`)"
                    ),
                ));
            }
        }
    }
    findings
}

/// L7: unbounded queue/channel construction in library code, and its
/// concurrency twin, `thread::spawn` inside a loop body. A queue
/// without an admission bound turns overload into silent memory growth
/// instead of a typed `Rejected` response; the serving charter
/// (DESIGN.md §"Scenario serving") requires every producer-facing
/// queue to go through `h2p_serve::BoundedQueue` or an equivalently
/// capacity-checked wrapper. `VecDeque::with_capacity` is flagged too:
/// capacity is an allocation hint, not an admission limit.
///
/// The spawn-in-loop check covers connection/accept structures
/// (DESIGN.md §15): a thread per accepted connection is an unbounded
/// queue of stacks, with the same overload behavior a `VecDeque::new`
/// backlog has. Serve loops use a fixed `thread::scope` worker pool
/// popping a bounded handoff queue instead; scoped `scope.spawn`
/// pools (a method call, not a `thread::spawn` path) stay clean.
fn l7_unbounded_queues(s: &ScannedFile) -> Vec<Finding> {
    const CONSTRUCTORS: &[(&str, &[&str])] = &[
        ("VecDeque", &["new", "with_capacity"]),
        ("LinkedList", &["new"]),
        ("mpsc", &["channel"]),
    ];
    let loop_bodies = loop_body_ranges(s);
    let mut findings = Vec::new();
    for i in 0..s.code.len() {
        if s.in_test(i) {
            continue;
        }
        for (base, methods) in CONSTRUCTORS {
            if !s.is_ident(i, base) || !s.is_punct(i + 1, "::") {
                continue;
            }
            let called = methods.iter().any(|m| s.is_ident(i + 2, m))
                && (s.is_punct(i + 3, "(") || s.is_punct(i + 3, "::"));
            if called {
                let (line, col) = at(s, i);
                findings.push((
                    line,
                    col,
                    format!(
                        "`{}::{}()` builds an unbounded queue in library code — admit work \
                         through `h2p_serve::BoundedQueue` (or another capacity-checked \
                         wrapper), or justify with `// h2p-lint: allow(L7): <reason>`",
                        base,
                        s.text(i + 2)
                    ),
                ));
            }
        }
        if s.is_ident(i, "thread")
            && s.is_punct(i + 1, "::")
            && s.is_ident(i + 2, "spawn")
            && s.is_punct(i + 3, "(")
            && loop_bodies
                .iter()
                .any(|&(open, close)| open < i && i < close)
        {
            let (line, col) = at(s, i);
            findings.push((
                line,
                col,
                "`thread::spawn` inside a loop grows threads without bound — serve the \
                 loop from a fixed `std::thread::scope` worker pool over a bounded \
                 handoff queue (or justify with `// h2p-lint: allow(L7): <reason>`)"
                    .to_string(),
            ));
        }
    }
    findings
}

/// Code-index spans `(open, close)` of every `loop`/`while`/`for`
/// body's braces. The body opener is the first `{` after the keyword
/// at zero paren/bracket depth; a `;` there means the keyword wasn't
/// heading a loop after all (e.g. a `for` inside a macro fragment).
fn loop_body_ranges(s: &ScannedFile) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for i in 0..s.code.len() {
        if !(s.is_ident(i, "loop") || s.is_ident(i, "while") || s.is_ident(i, "for")) {
            continue;
        }
        let mut depth = 0i64;
        let mut j = i + 1;
        while j < s.code.len() {
            match s.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    ranges.push((j, matching_close(s, j)));
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
    }
    ranges
}

/// Names in this file declared (or initialized) with any of the given
/// type names: `name: HashMap<…>` fields/params/lets, struct-literal
/// inits `name: Mutex::new(…)`, and `let name = HashMap::new()`.
fn names_typed_as(s: &ScannedFile, type_names: &[&str]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    // `name : …Type…` — scan the annotation/initializer up to a
    // top-level terminator.
    for i in 1..s.code.len() {
        if !s.is_punct(i, ":") || s.kind(i - 1) != Some(TokenKind::Ident) {
            continue;
        }
        let name = s.text(i - 1);
        let mut depth = 0i64;
        let mut angle = 0i64;
        let mut k = i + 1;
        let mut hit = false;
        while k < s.code.len() && k < i + 200 {
            let t = s.text(k);
            if depth == 0 && angle <= 0 && matches!(t, "," | ";" | ")" | "{" | "}" | "=") {
                break;
            }
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => angle += angle_delta(t),
            }
            if s.kind(k) == Some(TokenKind::Ident) && type_names.contains(&t) {
                hit = true;
            }
            k += 1;
        }
        if hit {
            names.insert(name.to_string());
        }
    }
    // `let [mut] name = …Type::…`
    for i in 0..s.code.len() {
        if !s.is_ident(i, "let") {
            continue;
        }
        let mut j = i + 1;
        if s.is_ident(j, "mut") {
            j += 1;
        }
        if s.kind(j) != Some(TokenKind::Ident) || !s.is_punct(j + 1, "=") {
            continue;
        }
        let mut k = j + 2;
        while k < s.code.len() && k < j + 200 && !s.is_punct(k, ";") {
            if s.kind(k) == Some(TokenKind::Ident)
                && type_names.contains(&s.text(k))
                && s.is_punct(k + 1, "::")
            {
                names.insert(s.text(j).to_string());
                break;
            }
            k += 1;
        }
    }
    names
}

/// L8: iteration over `HashMap`/`HashSet` in result-affecting library
/// code. Hash iteration order depends on the hasher's per-process
/// random state, so any fold over it breaks bit-identity across runs
/// and worker counts (the Eq. 3 / Fig. 9 golden-number bar). Hold
/// ordered data in `BTreeMap`/`BTreeSet`, or collect and sort before
/// folding.
fn l8_hash_iteration(s: &ScannedFile) -> Vec<Finding> {
    let hash_names = names_typed_as(s, &["HashMap", "HashSet"]);
    if hash_names.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let flag =
        |findings: &mut Vec<Finding>, s: &ScannedFile, anchor: usize, name: &str, how: &str| {
            let (line, col) = at(s, anchor);
            findings.push((
                line,
                col,
                format!(
                    "{how} over hash-ordered `{name}` is nondeterministic — use \
                 `BTreeMap`/`BTreeSet` or sort before folding \
                 (or justify with `// h2p-lint: allow(L8): <reason>`)"
                ),
            ));
        };
    for i in 0..s.code.len() {
        if s.in_test(i) {
            continue;
        }
        // `name.iter()`, `.keys()`, `.values()`, `.drain()`, …
        if s.kind(i) == Some(TokenKind::Ident)
            && hash_names.contains(s.text(i))
            && s.is_punct(i + 1, ".")
            && s.is_punct(i + 3, "(")
            && HASH_ITER_METHODS.iter().any(|m| s.is_ident(i + 2, m))
        {
            let name = s.text(i).to_string();
            let how = format!("`.{}()`", s.text(i + 2));
            flag(&mut findings, s, i + 2, &name, &how);
        }
        // `for … in [&][mut] path.to.name {` — follow the dotted path
        // and check the final segment; a `(` after it means a method
        // call, which the patterns above already cover.
        if s.is_ident(i, "in") {
            let mut j = i + 1;
            while s.is_punct(j, "&") || s.is_ident(j, "mut") {
                j += 1;
            }
            if s.kind(j) == Some(TokenKind::Ident) {
                while s.is_punct(j + 1, ".") && s.kind(j + 2) == Some(TokenKind::Ident) {
                    j += 2;
                }
                if hash_names.contains(s.text(j)) && s.is_punct(j + 1, "{") {
                    let name = s.text(j).to_string();
                    flag(&mut findings, s, j, &name, "`for … in`");
                }
            }
        }
    }
    findings
}

/// L9: ambient nondeterminism sources in library code. Unseeded RNGs,
/// hasher random state, environment reads, and filesystem-order
/// directory walks all make a run depend on state outside the
/// scenario key. Randomness must flow from explicit seeds through the
/// designated seed-plumbing modules ([`SEED_PLUMBING_MODULES`]);
/// `read_dir` results must be sorted before use (waive the call site
/// with `allow(L9)` stating that).
fn l9_ambient_nondeterminism(s: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |s: &ScannedFile, anchor: usize, what: &str, why: &str| {
        let (line, col) = at(s, anchor);
        findings.push((
            line,
            col,
            format!(
                "{what} in library code {why} — plumb explicit seeds/inputs instead \
                 (or justify with `// h2p-lint: allow(L9): <reason>`)"
            ),
        ));
    };
    for i in 0..s.code.len() {
        if s.in_test(i) {
            continue;
        }
        if s.is_ident(i, "thread_rng") && s.is_punct(i + 1, "(") {
            push(s, i, "`thread_rng()`", "draws from ambient OS entropy");
        }
        if s.is_ident(i, "RandomState")
            && s.is_punct(i + 1, "::")
            && (s.is_ident(i + 2, "new") || s.is_ident(i + 2, "default"))
        {
            push(
                s,
                i,
                "`RandomState::new()`",
                "randomizes hash order per process",
            );
        }
        if s.is_ident(i, "env")
            && s.is_punct(i + 1, "::")
            && ["var", "vars", "var_os", "vars_os"]
                .iter()
                .any(|m| s.is_ident(i + 2, m))
        {
            push(
                s,
                i,
                "`std::env` read",
                "couples results to the process environment",
            );
        }
        if s.is_ident(i, "read_dir") && s.is_punct(i + 1, "(") {
            push(
                s,
                i,
                "`read_dir()`",
                "yields entries in filesystem order, which varies across hosts",
            );
        }
    }
    findings
}

/// Chain methods that forward a lock guard rather than consuming it.
const GUARD_PRESERVING: &[&str] = &["unwrap_or_else", "unwrap", "expect"];

/// L10: lock-order discipline. Every `Mutex`/`RwLock` acquisition in
/// library code must name a lock from the crate's manifest — a
/// `// h2p-lint: lock-order: a, b, c` comment in `lib.rs` (or the
/// file itself) listing locks in their global acquisition order — and
/// an acquisition nested inside a held guard must come *later* in the
/// manifest than every lock already held. The walk is token-level:
/// `let`-bound guards live to the end of their block, temporaries to
/// the end of their statement, and `drop(guard)` releases early.
fn l10_lock_order(s: &ScannedFile, crate_locks: &[String]) -> Vec<Finding> {
    let lock_names = names_typed_as(s, &["Mutex", "RwLock"]);
    if lock_names.is_empty() {
        return Vec::new();
    }
    let mut manifest: Vec<String> = crate_locks.to_vec();
    for name in &s.lock_order {
        if !manifest.contains(name) {
            manifest.push(name.clone());
        }
    }
    let order = |name: &str| manifest.iter().position(|m| m == name);

    struct Guard {
        lock: String,
        binding: Option<String>,
        depth: i64,
        temp: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut findings = Vec::new();
    let mut depth = 0i64;
    let mut stmt_start = 0usize;
    let mut i = 0;
    while i < s.code.len() {
        let text = s.text(i);
        match text {
            "{" => {
                depth += 1;
                guards.retain(|g| !g.temp);
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            "}" => {
                depth -= 1;
                guards.retain(|g| !g.temp && g.depth <= depth);
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            ";" => {
                guards.retain(|g| !g.temp);
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            "drop"
                if s.is_punct(i + 1, "(")
                    && s.kind(i + 2) == Some(TokenKind::Ident)
                    && s.is_punct(i + 3, ")") =>
            {
                let released = s.text(i + 2).to_string();
                guards.retain(|g| g.binding.as_deref() != Some(released.as_str()));
                i += 1;
                continue;
            }
            _ => {}
        }

        // Acquisition site?
        let acquired = if s.kind(i) == Some(TokenKind::Ident)
            && lock_names.contains(s.text(i))
            && s.is_punct(i + 1, ".")
            && ["lock", "read", "write"]
                .iter()
                .any(|m| s.is_ident(i + 2, m))
            && s.is_punct(i + 3, "(")
        {
            Some((s.text(i).to_string(), i + 2, i + 3))
        } else if s.is_ident(i, "lock")
            && s.is_punct(i + 1, "(")
            && (i == 0
                || !(s.is_punct(i - 1, ".") || s.is_punct(i - 1, "::") || s.is_ident(i - 1, "fn")))
        {
            // Free-function poison-tolerant helper: `lock(&self.cache)`.
            let close = matching_close(s, i + 1);
            let mut lock = None;
            for k in i + 2..close {
                if s.kind(k) == Some(TokenKind::Ident) && lock_names.contains(s.text(k)) {
                    lock = Some(s.text(k).to_string());
                }
            }
            lock.map(|l| (l, i, i + 1))
        } else {
            None
        };

        let Some((lock, anchor, open)) = acquired else {
            i += 1;
            continue;
        };
        if s.in_test(anchor) {
            i += 1;
            continue;
        }
        let (line, col) = at(s, anchor);
        match order(&lock) {
            None => findings.push((
                line,
                col,
                format!(
                    "lock `{lock}` is not in the crate's lock-order manifest — declare \
                     `// h2p-lint: lock-order: …` in lib.rs naming every lock in \
                     acquisition order (or justify with `// h2p-lint: allow(L10): <reason>`)"
                ),
            )),
            Some(rank) => {
                for g in &guards {
                    match order(&g.lock) {
                        Some(_) if g.lock == lock => findings.push((
                            line,
                            col,
                            format!(
                                "lock `{lock}` re-acquired while already held \
                                 (self-deadlock) — drop the first guard before \
                                 re-locking",
                            ),
                        )),
                        Some(held) if held > rank => findings.push((
                            line,
                            col,
                            format!(
                                "lock `{lock}` acquired while `{}` is held, against \
                                 manifest order ({} before {}) — acquire in manifest \
                                 order or release first",
                                g.lock, lock, g.lock
                            ),
                        )),
                        _ => {}
                    }
                }
            }
        }

        // Guard lifetime: `let g = …lock()…;` chains of
        // guard-preserving adapters bind a guard for the block; any
        // other continuation is a temporary for the statement.
        let close = matching_close(s, open);
        let mut k = close + 1;
        let mut preserved = true;
        while s.is_punct(k, ".") {
            if s.kind(k + 1) == Some(TokenKind::Ident)
                && GUARD_PRESERVING.iter().any(|m| s.is_ident(k + 1, m))
                && s.is_punct(k + 2, "(")
            {
                k = matching_close(s, k + 2) + 1;
            } else {
                preserved = false;
                break;
            }
        }
        let is_let = s.is_ident(stmt_start, "let");
        let bound = is_let && preserved && s.is_punct(k, ";");
        let binding = if bound {
            let mut b = stmt_start + 1;
            if s.is_ident(b, "mut") {
                b += 1;
            }
            (s.kind(b) == Some(TokenKind::Ident)).then(|| s.text(b).to_string())
        } else {
            None
        };
        guards.push(Guard {
            lock,
            binding,
            depth,
            temp: !bound,
        });
        i = close + 1;
    }
    findings
}

/// L11: `partial_cmp(..)` chained into `.unwrap()` / `.expect(..)`
/// inside a `PlacementPolicy` or `SchedulingPolicy` impl. Policy
/// score comparisons run on every placement decision of every
/// simulated step; a single NaN score (e.g. an infeasible harvest
/// estimate) would panic mid-simulation. `f64::total_cmp` is total
/// over NaN and is the workspace idiom for ranking scores — policies
/// must use it (sanitizing NaN explicitly if it must lose ties).
fn l11_partial_cmp_scores(s: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut i = 0;
    while i < s.code.len() {
        if !s.is_ident(i, "impl") {
            i += 1;
            continue;
        }
        // The impl header runs to the body's `{` — generics and trait
        // paths contain no braces, so the first `{` opens the body.
        let mut open = i + 1;
        while open < s.code.len() && !s.is_punct(open, "{") {
            open += 1;
        }
        if open >= s.code.len() {
            break;
        }
        // A policy *trait* impl names the trait before `for`; an
        // inherent impl (no `for`) is out of scope.
        let policy_impl = (i + 1..open).any(|j| {
            (s.is_ident(j, "PlacementPolicy") || s.is_ident(j, "SchedulingPolicy"))
                && (j + 1..open).any(|k| s.is_ident(k, "for"))
        });
        if !policy_impl {
            // Keep scanning from inside the body: a nested policy
            // impl (e.g. inside a function) must still be caught.
            i = open + 1;
            continue;
        }
        let close = matching_close(s, open);
        let mut j = open + 1;
        while j < close {
            if !s.in_test(j)
                && s.is_punct(j, ".")
                && s.is_ident(j + 1, "partial_cmp")
                && s.is_punct(j + 2, "(")
            {
                let args_close = matching_close(s, j + 2);
                if s.is_punct(args_close + 1, ".")
                    && (s.is_ident(args_close + 2, "unwrap")
                        || s.is_ident(args_close + 2, "expect"))
                    && s.is_punct(args_close + 3, "(")
                {
                    let (line, col) = at(s, j + 1);
                    findings.push((
                        line,
                        col,
                        "`partial_cmp(..)` unwrapped inside a placement/scheduling policy: \
                         a NaN score panics mid-simulation — rank scores with \
                         `f64::total_cmp` \
                         (or justify with `// h2p-lint: allow(L11): <reason>`)"
                            .to_owned(),
                    ));
                }
                j = args_close + 1;
                continue;
            }
            j += 1;
        }
        i = close + 1;
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use crate::FileClass;
    use std::path::PathBuf;

    fn run_with_locks(source: &str, class: &FileClass, locks: &[&str]) -> Vec<Diagnostic> {
        let scanned = scan(source);
        let locks: Vec<String> = locks.iter().map(|s| (*s).to_string()).collect();
        let mut out = Vec::new();
        check_file(&PathBuf::from("test.rs"), &scanned, class, &locks, &mut out);
        out
    }

    fn run(source: &str, class: &FileClass) -> Vec<Diagnostic> {
        run_with_locks(source, class, &[])
    }

    fn physics_lib() -> FileClass {
        FileClass {
            library: true,
            physics: true,
            l1_applies: true,
        }
    }

    fn only(diags: &[Diagnostic], rule: RuleId) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.rule == rule).collect()
    }

    #[test]
    fn word_match_returns_spans_and_respects_boundaries() {
        assert_eq!(word_match("set temp here", "temp"), Some((4, 8)));
        assert_eq!(word_match("attempt", "temp"), None);
        assert_eq!(word_match("temp", "temp"), Some((0, 4)));
        assert_eq!(word_match("", "temp"), None);
        assert_eq!(word_match("x", ""), None);
    }

    #[test]
    fn word_match_is_safe_and_correct_at_utf8_boundaries() {
        // Multibyte neighbors are identifier characters: no match.
        assert_eq!(word_match("tempéré", "temp"), None);
        assert_eq!(word_match("étemp", "temp"), None);
        assert_eq!(word_match("温度temp", "temp"), None);
        // Multibyte non-identifier neighbors are word boundaries.
        assert_eq!(word_match("«temp»", "temp"), Some((2, 6)));
        let hay = "t°mp temp";
        assert_eq!(word_match(hay, "temp"), Some((6, 10)));
        // A rejected first hit must not prevent a later match.
        assert_eq!(word_match("tempo temp", "temp"), Some((6, 10)));
    }

    #[test]
    fn l1_flags_raw_quantity_params_and_returns() {
        let src = "pub fn set_inlet_temp(inlet_temp_c: f64) {}\n\
                   pub fn water_flow(&self) -> f64 { self.flow }\n\
                   pub fn count(&self) -> usize { 0 }\n\
                   pub fn inlet(&self) -> Celsius { self.t }\n";
        let diags = run(src, &physics_lib());
        let l1 = only(&diags, RuleId::L1);
        assert_eq!(l1.len(), 2, "{l1:?}");
        assert_eq!(l1[0].line, 1);
        assert_eq!(l1[1].line, 2);
    }

    #[test]
    fn l1_handles_multiline_signatures_and_generics() {
        let src = "pub fn blend<F: Fn(usize) -> f64>(\n\
                       weights: &[f64],\n\
                       inlet_temp_c: f64,\n\
                   ) -> Celsius { Celsius::new(0.0) }\n";
        let diags = run(src, &physics_lib());
        let l1 = only(&diags, RuleId::L1);
        assert_eq!(l1.len(), 1, "{l1:?}");
        assert_eq!(l1[0].line, 3, "{l1:?}");
    }

    #[test]
    fn l1_ignores_pub_fn_inside_strings_and_comments() {
        let src = "const DOC: &str = \"pub fn set_temp(temp_c: f64)\";\n\
                   // pub fn flow_rate(flow_lpm: f64) -> f64\n";
        let diags = run(src, &physics_lib());
        assert!(only(&diags, RuleId::L1).is_empty(), "{diags:?}");
    }

    #[test]
    fn l2_exempts_tests_and_allows() {
        let src = "fn a() { x.unwrap(); }\n\
                   fn b() { y.expect(\"ok\"); } // h2p-lint: allow(L2): infallible\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { z.unwrap(); panic!(\"no\"); }\n}\n";
        let diags = run(src, &physics_lib());
        let l2 = only(&diags, RuleId::L2);
        assert_eq!(l2.len(), 1, "{l2:?}");
        assert_eq!(l2[0].line, 1);
    }

    #[test]
    fn l2_does_not_flag_debug_assert_or_strings() {
        let src = "fn a() { debug_assert!(x > 0.0); }\n\
                   const MSG: &str = \"never panic!(here)\";\n\
                   fn b() { let s = r#\"x.unwrap()\"#; }\n";
        let diags = run(src, &physics_lib());
        assert!(only(&diags, RuleId::L2).is_empty(), "{diags:?}");
    }

    #[test]
    fn l3_flags_numeric_casts_only_in_physics() {
        let src = "fn a(n: usize) -> f64 { n as f64 }\n";
        assert_eq!(run(src, &physics_lib()).len(), 1);
        let non_physics = FileClass {
            library: true,
            physics: false,
            l1_applies: true,
        };
        assert!(run(src, &non_physics).is_empty());
    }

    #[test]
    fn l3_skips_use_renames() {
        let src = "use std::f64 as flt;\n";
        assert!(run(src, &physics_lib()).is_empty());
    }

    #[test]
    fn l5_flags_float_literal_comparisons() {
        let src = "fn a(x: f64) -> bool { x == 0.0 }\n\
                   fn b(x: f64) -> bool { 1.5 != x }\n\
                   fn c(x: f64) -> bool { !(x > 0.0) }\n\
                   fn d(n: usize) -> bool { n == 0 }\n\
                   fn e(t: &(f64, u8)) -> bool { t.1 == self.0 }\n";
        let diags = run(src, &physics_lib());
        let l5 = only(&diags, RuleId::L5);
        assert_eq!(l5.len(), 2, "{l5:?}");
    }

    #[test]
    fn l6_flags_wall_clock_reads_outside_tests() {
        let src = "fn a() { let t = std::time::Instant::now(); }\n\
                   fn b() { let t = SystemTime::now(); }\n\
                   fn c() { let t = Instant::now(); } // h2p-lint: allow(L6): Clock impl\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let x = Instant::now(); }\n}\n";
        let diags = run(src, &physics_lib());
        let l6 = only(&diags, RuleId::L6);
        assert_eq!(l6.len(), 2, "{l6:?}");
        assert_eq!(l6[0].line, 1);
        assert_eq!(l6[1].line, 2);
    }

    #[test]
    fn l7_flags_unbounded_queue_construction() {
        let src = "fn a() { let q: VecDeque<u8> = VecDeque::new(); }\n\
                   fn b() { let q: VecDeque<u8> = VecDeque::with_capacity(8); }\n\
                   fn c() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n\
                   // h2p-lint: allow(L7): bounded by the admission check\n\
                   fn d() { let q: VecDeque<u8> = VecDeque::new(); }\n\
                   fn e() { let (tx, rx) = std::sync::mpsc::sync_channel::<u8>(4); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let q: VecDeque<u8> = VecDeque::new(); }\n}\n";
        let diags = run(src, &physics_lib());
        let l7 = only(&diags, RuleId::L7);
        assert_eq!(l7.len(), 3, "{l7:?}");
        assert_eq!(l7[0].line, 1);
        assert_eq!(l7[1].line, 2);
        assert_eq!(l7[2].line, 3);
    }

    #[test]
    fn l7_flags_thread_spawn_inside_loops_only() {
        // The gateway shapes (DESIGN.md §15): a thread per accepted
        // connection fires; a fixed scoped worker pool and a one-shot
        // background spawn do not.
        let src = "fn per_conn(l: &TcpListener) {\n\
                       loop {\n\
                           let (conn, _) = l.accept().unwrap();\n\
                           std::thread::spawn(move || handle(conn));\n\
                       }\n\
                   }\n\
                   fn per_item(items: &[u8]) {\n\
                       for _ in items { thread::spawn(|| work()); }\n\
                   }\n\
                   fn waived(l: &TcpListener) {\n\
                       while running() {\n\
                           thread::spawn(step); // h2p-lint: allow(L7): joined each iteration\n\
                       }\n\
                   }\n\
                   fn pool(queue: &Handoff) {\n\
                       std::thread::scope(|scope| {\n\
                           for _ in 0..4 { scope.spawn(|| drain(queue)); }\n\
                       });\n\
                   }\n\
                   fn one_shot() { let h = thread::spawn(bg); h.join(); }\n";
        let diags = run(src, &physics_lib());
        let l7 = only(&diags, RuleId::L7);
        assert_eq!(l7.len(), 2, "{l7:?}");
        assert_eq!(l7[0].line, 4);
        assert_eq!(l7[1].line, 8);
        assert!(l7[0].message.contains("worker pool"), "{l7:?}");
    }

    #[test]
    fn l4_detects_forbid_attribute() {
        assert!(l4_forbids_unsafe("//! docs\n#![forbid(unsafe_code)]\n"));
        assert!(l4_forbids_unsafe("#! [ forbid ( unsafe_code ) ]\n"));
        assert!(!l4_forbids_unsafe("//! docs\n#![warn(missing_docs)]\n"));
        assert!(!l4_forbids_unsafe(
            "const S: &str = \"#![forbid(unsafe_code)]\";\n"
        ));
    }

    #[test]
    fn l8_flags_hash_map_iteration_not_lookup() {
        let src = "struct C { map: HashMap<K, V> }\n\
                   fn a(c: &C) -> Option<&V> { c.map.get(&k) }\n\
                   fn b(c: &C) -> usize { c.map.iter().count() }\n\
                   fn c(c: &C) { for (k, v) in &c.map { touch(k, v); } }\n\
                   fn d(set: &HashSet<u64>) -> Vec<u64> { set.iter().copied().collect() }\n\
                   fn e(m: &BTreeMap<K, V>) { for v in m.values() {} }\n";
        let diags = run(src, &physics_lib());
        let l8 = only(&diags, RuleId::L8);
        assert_eq!(l8.len(), 3, "{l8:?}");
        assert_eq!(l8[0].line, 3);
        assert_eq!(l8[1].line, 4);
        assert_eq!(l8[2].line, 5);
    }

    #[test]
    fn l8_pins_the_kernel_event_queue_to_ordered_containers() {
        // ISSUE 7: the change-detection kernel's forced-event queue
        // (`step → circulations`) feeds the re-evaluation schedule, so
        // it is result-affecting and must live in a BTreeMap/Vec, never
        // a HashMap. The violating shape fires; the kernel's actual
        // shape does not.
        let bad = "struct Q { forced: HashMap<usize, Vec<usize>> }\n\
                   fn drain(q: &Q) -> Vec<usize> { q.forced.keys().copied().collect() }\n";
        let diags = run(bad, &physics_lib());
        assert_eq!(only(&diags, RuleId::L8).len(), 1, "{diags:?}");

        let good = "struct Q { forced: BTreeMap<usize, Vec<usize>>, current: Vec<usize> }\n\
                    fn drain(q: &Q) -> Vec<usize> { q.forced.keys().copied().collect() }\n\
                    fn is_forced(q: &Q, c: usize) -> bool { q.current.binary_search(&c).is_ok() }\n";
        let diags = run(good, &physics_lib());
        assert!(only(&diags, RuleId::L8).is_empty(), "{diags:?}");
    }

    #[test]
    fn l8_respects_allow_and_tests() {
        let src = "fn a(m: &HashMap<K, V>) {\n\
                       for k in m.keys() {} // h2p-lint: allow(L8): keys re-sorted below\n\
                   }\n\
                   #[cfg(test)]\nmod t {\n    fn x(m: &HashMap<K, V>) { m.iter(); }\n}\n";
        let diags = run(src, &physics_lib());
        assert!(only(&diags, RuleId::L8).is_empty(), "{diags:?}");
    }

    #[test]
    fn l9_flags_ambient_nondeterminism_sources() {
        let src = "fn a() -> f64 { thread_rng().gen() }\n\
                   fn b() -> RandomState { RandomState::new() }\n\
                   fn c() -> String { std::env::var(\"SEED\").unwrap_or_default() }\n\
                   fn d(p: &Path) { for e in std::fs::read_dir(p) {} }\n\
                   fn e(p: &Path) { let entries = std::fs::read_dir(p); } // h2p-lint: allow(L9): sorted below\n";
        let diags = run(src, &physics_lib());
        let l9 = only(&diags, RuleId::L9);
        assert_eq!(l9.len(), 4, "{l9:?}");
    }

    #[test]
    fn l10_requires_manifest_membership() {
        let src = "struct S { state: Mutex<u64> }\n\
                   fn a(s: &S) { let g = s.state.lock().unwrap_or_else(PoisonError::into_inner); }\n";
        let diags = run(src, &physics_lib());
        let l10 = only(&diags, RuleId::L10);
        assert_eq!(l10.len(), 1, "{l10:?}");
        assert!(l10[0].message.contains("manifest"), "{l10:?}");
        // Same file, with the lock declared: clean.
        let with_manifest = run_with_locks(src, &physics_lib(), &["state"]);
        assert!(
            only(&with_manifest, RuleId::L10).is_empty(),
            "{with_manifest:?}"
        );
    }

    #[test]
    fn l10_flags_nested_acquisition_against_manifest_order() {
        let src = "// h2p-lint: lock-order: first, second\n\
                   struct S { first: Mutex<u64>, second: Mutex<u64> }\n\
                   fn good(s: &S) {\n\
                       let a = s.first.lock();\n\
                       let b = s.second.lock();\n\
                   }\n\
                   fn bad(s: &S) {\n\
                       let b = s.second.lock();\n\
                       let a = s.first.lock();\n\
                   }\n\
                   fn sequential(s: &S) {\n\
                       { let b = s.second.lock(); }\n\
                       let a = s.first.lock();\n\
                   }\n";
        let diags = run(src, &physics_lib());
        let l10 = only(&diags, RuleId::L10);
        assert_eq!(l10.len(), 1, "{l10:?}");
        assert_eq!(l10[0].line, 9, "{l10:?}");
        assert!(l10[0].message.contains("manifest order"), "{l10:?}");
    }

    #[test]
    fn l10_temporary_guards_die_at_statement_end() {
        let src = "// h2p-lint: lock-order: a_lock, b_lock\n\
                   struct S { a_lock: Mutex<u64>, b_lock: Mutex<u64> }\n\
                   fn f(s: &S) {\n\
                       let n = s.b_lock.lock().unwrap_or_else(PoisonError::into_inner).clone();\n\
                       let g = s.a_lock.lock();\n\
                   }\n";
        let diags = run(src, &physics_lib());
        assert!(only(&diags, RuleId::L10).is_empty(), "{diags:?}");
    }

    #[test]
    fn l10_detects_free_helper_acquisitions_and_reacquisition() {
        let src = "// h2p-lint: lock-order: cache\n\
                   struct S { cache: Mutex<u64> }\n\
                   fn f(s: &S) {\n\
                       let g = lock(&s.cache);\n\
                       let h = lock(&s.cache);\n\
                   }\n";
        let diags = run(src, &physics_lib());
        let l10 = only(&diags, RuleId::L10);
        assert_eq!(l10.len(), 1, "{l10:?}");
        assert!(l10[0].message.contains("re-acquired"), "{l10:?}");
    }

    #[test]
    fn l10_drop_releases_a_guard_early() {
        let src = "// h2p-lint: lock-order: first, second\n\
                   struct S { first: Mutex<u64>, second: Mutex<u64> }\n\
                   fn f(s: &S) {\n\
                       let b = s.second.lock();\n\
                       drop(b);\n\
                       let a = s.first.lock();\n\
                   }\n";
        let diags = run(src, &physics_lib());
        assert!(only(&diags, RuleId::L10).is_empty(), "{diags:?}");
    }

    #[test]
    fn l11_flags_unwrapped_partial_cmp_in_policy_impls() {
        let src = "impl PlacementPolicy for Greedy {\n\
                       fn place(&mut self, job: &Job, view: &ClusterView<'_>) -> Option<usize> {\n\
                           scores.iter().max_by(|a, b| a.partial_cmp(b).unwrap())\n\
                       }\n\
                   }\n\
                   impl SchedulingPolicy for Greedy {\n\
                       fn schedule(&self, chunk: &[Utilization]) -> Utilization {\n\
                           let _ = a.partial_cmp(&b).expect(\"ordered\");\n\
                           chunk[0]\n\
                       }\n\
                   }\n";
        let diags = run(src, &physics_lib());
        let l11 = only(&diags, RuleId::L11);
        assert_eq!(l11.len(), 2, "{l11:?}");
        assert_eq!(l11[0].line, 3);
        assert_eq!(l11[1].line, 8);
        assert!(l11[0].message.contains("total_cmp"), "{l11:?}");
    }

    #[test]
    fn l11_ignores_total_cmp_handled_options_and_other_impls() {
        let src = "impl PlacementPolicy for Safe {\n\
                       fn place(&mut self) -> Option<usize> {\n\
                           scores.iter().max_by(|a, b| a.total_cmp(b));\n\
                           let ord = a.partial_cmp(&b).unwrap_or(Ordering::Less);\n\
                           None\n\
                       }\n\
                   }\n\
                   impl Display for Other {\n\
                       fn fmt(&self) { let _ = a.partial_cmp(&b).unwrap(); }\n\
                   }\n\
                   impl PlacementPolicyKind {\n\
                       fn inherent() { let _ = a.partial_cmp(&b).unwrap(); }\n\
                   }\n";
        let diags = run(src, &physics_lib());
        assert!(only(&diags, RuleId::L11).is_empty(), "{diags:?}");
        // ...but L2 still owns the bare unwraps outside policy impls.
        assert!(!only(&diags, RuleId::L2).is_empty(), "{diags:?}");
    }

    #[test]
    fn l11_respects_waivers_and_test_regions() {
        let src = "impl PlacementPolicy for Waived {\n\
                       fn place(&mut self) -> Option<usize> {\n\
                           a.partial_cmp(&b).unwrap(); // h2p-lint: allow(L11): scores proven finite\n\
                           None\n\
                       }\n\
                   }\n\
                   #[cfg(test)]\nmod tests {\n\
                       impl PlacementPolicy for T {\n\
                           fn place(&mut self) -> Option<usize> {\n\
                               a.partial_cmp(&b).unwrap();\n\
                               None\n\
                           }\n\
                       }\n\
                   }\n";
        let diags = run(src, &physics_lib());
        assert!(only(&diags, RuleId::L11).is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_carry_columns() {
        let src = "fn a() {     x.unwrap(); }\n";
        let diags = run(src, &physics_lib());
        let l2 = only(&diags, RuleId::L2);
        assert_eq!(l2.len(), 1);
        assert_eq!(l2[0].line, 1);
        assert_eq!(l2[0].col, 16, "{l2:?}");
    }
}
