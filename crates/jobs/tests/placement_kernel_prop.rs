//! Property test (ISSUE 10 satellite): for *arbitrary* job sets and
//! any placement policy, the trace the placement engine synthesizes
//! runs bit-identically through the change-detection kernel at
//! tolerance zero and the dense oracle. Placement-driven columns are
//! exactly the adversarial input for the kernel's hold/replay logic —
//! jobs arriving and releasing produce step-to-step deltas right at
//! the "did anything change?" boundary.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_precision_loss
)]

use h2p_core::kernel::KernelTolerance;
use h2p_core::simulation::{SimulationConfig, Simulator};
use h2p_jobs::{Job, PlacementEngine, PlacementPolicyKind};
use h2p_sched::Original;
use h2p_server::ServerModel;
use h2p_units::{Seconds, Utilization};
use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

const SERVERS: usize = 12;
const STEPS: usize = 10;

fn base_sim() -> &'static Simulator {
    static SIM: OnceLock<Simulator> = OnceLock::new();
    SIM.get_or_init(|| {
        let mut config = SimulationConfig::paper_default();
        config.servers_per_circulation = 8;
        Simulator::new(&ServerModel::paper_default(), config).unwrap()
    })
}

/// A raw job draft: arrival step (deliberately allowed past the
/// horizon), duration in steps, and demand.
fn job_strategy() -> impl Strategy<Value = (usize, usize, f64)> {
    (0..STEPS + 2, 1..5usize, 0.05..0.95f64)
}

fn build_jobs(drafts: &[(usize, usize, f64)], interval: Seconds) -> Vec<Job> {
    drafts
        .iter()
        .enumerate()
        .map(|(id, &(arrival_step, duration_steps, demand))| {
            Job::new(
                id as u64,
                Seconds::new(interval.value() * arrival_step as f64),
                Seconds::new(interval.value() * duration_steps as f64),
                Utilization::saturating(demand),
            )
            .unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn kernel_at_tolerance_zero_matches_dense_on_placed_columns(
        drafts in proptest::collection::vec(job_strategy(), 1..30),
        policy_index in 0..3usize,
        workers in 1..4usize,
    ) {
        let sim = base_sim();
        let engine = PlacementEngine::new(sim, &Original, SERVERS, STEPS).unwrap();
        let jobs = build_jobs(&drafts, engine.interval());
        let kind = PlacementPolicyKind::ALL[policy_index];
        let run = engine.place(&jobs, &mut *kind.build()).unwrap();

        let workers = NonZeroUsize::new(workers).unwrap();
        let dense = sim
            .clone()
            .with_workers(workers)
            .run(&run.trace, &Original)
            .unwrap();
        let kernel = sim
            .clone()
            .with_workers(workers)
            .with_kernel_tolerance(KernelTolerance::exact())
            .run(&run.trace, &Original)
            .unwrap();

        prop_assert_eq!(dense.steps().len(), kernel.steps().len());
        for (i, (a, b)) in dense.steps().iter().zip(kernel.steps()).enumerate() {
            prop_assert_eq!(a, b, "step {} diverged under {}", i, kind);
        }
    }
}
