//! The placement transparency contract (DESIGN.md §16): a
//! placement-synthesized trace is an ordinary materialized trace, so
//! every engine driver must produce **bit-identical** results over it
//! — dense and kernel-exact, scalar and column layouts, every worker
//! count — and the load-oblivious `RoundRobin` baseline over jobs that
//! reproduce a constant-demand trace must match running that trace
//! directly, to the bit.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_precision_loss
)]

use h2p_core::fleet::EngineLayout;
use h2p_core::kernel::KernelTolerance;
use h2p_core::simulation::{SimulationConfig, SimulationResult, Simulator};
use h2p_jobs::{synthetic_jobs, PlacementEngine, PlacementPolicyKind, RoundRobin};
use h2p_sched::Original;
use h2p_server::ServerModel;
use h2p_units::{Seconds, Utilization};
use h2p_workload::{ClusterTrace, Trace, TraceKind};
use std::num::NonZeroUsize;
use std::sync::OnceLock;

const WORKERS: [usize; 3] = [1, 2, 5];
const SERVERS: usize = 20;
const STEPS: usize = 12;

/// Base simulator: 8-server circulations so 20 servers make two full
/// circulations plus a ragged 4-server tail (the shape most likely to
/// expose chunk misalignment), shared via `OnceLock` because fitting
/// the lookup space is the expensive part.
fn base_sim() -> &'static Simulator {
    static SIM: OnceLock<Simulator> = OnceLock::new();
    SIM.get_or_init(|| {
        let mut config = SimulationConfig::paper_default();
        config.servers_per_circulation = 8;
        Simulator::new(&ServerModel::paper_default(), config).unwrap()
    })
}

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

fn assert_bit_identical(a: &SimulationResult, b: &SimulationResult, what: &str) {
    assert_eq!(a.steps().len(), b.steps().len(), "{what}: step count");
    for (i, (x, y)) in a.steps().iter().zip(b.steps()).enumerate() {
        assert_eq!(x, y, "{what}: step {i} diverged");
    }
}

#[test]
fn placement_is_bit_identical_across_workers_drivers_and_layouts() {
    let sim = base_sim();
    let engine = PlacementEngine::new(sim, &Original, SERVERS, STEPS).unwrap();
    let jobs = synthetic_jobs(TraceKind::Common, 7, SERVERS, STEPS, engine.interval());

    for kind in PlacementPolicyKind::ALL {
        let run = engine.place(&jobs, &mut *kind.build()).unwrap();
        assert_eq!(run.outcome.rejected, 0, "{kind}: synthetic set must fit");
        let baseline = sim
            .clone()
            .with_workers(nz(1))
            .run(&run.trace, &Original)
            .unwrap();

        for workers in WORKERS {
            for exact_kernel in [false, true] {
                for layout in [EngineLayout::Scalar, EngineLayout::Columns] {
                    let mut variant = sim.clone().with_workers(nz(workers)).with_layout(layout);
                    if exact_kernel {
                        variant = variant.with_kernel_tolerance(KernelTolerance::exact());
                    }
                    let result = variant.run(&run.trace, &Original).unwrap();
                    assert_bit_identical(
                        &baseline,
                        &result,
                        &format!(
                            "{kind}: workers={workers} kernel={exact_kernel} layout={layout:?}"
                        ),
                    );
                }
            }
        }

        // The `UtilizationSource` seam itself must be transparent.
        let via_source = sim.run_source(&run.trace, &Original).unwrap();
        assert_bit_identical(&baseline, &via_source, &format!("{kind}: run_source"));
    }
}

#[test]
fn placement_itself_is_reproducible() {
    let sim = base_sim();
    let engine = PlacementEngine::new(sim, &Original, SERVERS, STEPS).unwrap();
    let jobs = synthetic_jobs(TraceKind::Drastic, 11, SERVERS, STEPS, engine.interval());
    for kind in PlacementPolicyKind::ALL {
        let a = engine.place(&jobs, &mut *kind.build()).unwrap();
        let b = engine.place(&jobs, &mut *kind.build()).unwrap();
        assert_eq!(a.outcome, b.outcome, "{kind}: outcome must reproduce");
        for step in 0..STEPS {
            assert_eq!(
                a.trace.utilizations_at(step),
                b.trace.utilizations_at(step),
                "{kind}: column {step} must reproduce"
            );
        }
    }
}

#[test]
fn round_robin_reproduces_the_constant_trace_run_to_the_bit() {
    let sim = base_sim();
    let engine = PlacementEngine::new(sim, &Original, SERVERS, STEPS).unwrap();
    let interval = engine.interval();
    let demand = 0.35_f64;

    // One whole-horizon job per server, all arriving at time zero:
    // RoundRobin lays them out one per server, so the synthesized
    // trace is the constant-demand cluster.
    let jobs: Vec<_> = (0..SERVERS)
        .map(|i| {
            h2p_jobs::Job::new(
                i as u64,
                Seconds::new(0.0),
                Seconds::new(interval.value() * STEPS as f64),
                Utilization::saturating(demand),
            )
            .unwrap()
        })
        .collect();
    let run = engine.place(&jobs, &mut RoundRobin::new()).unwrap();
    assert_eq!(run.outcome.placed, SERVERS);
    assert_eq!(run.outcome.rejected, 0);

    let constant = ClusterTrace::new(
        (0..SERVERS)
            .map(|_| Trace::new(interval, vec![demand; STEPS]).unwrap())
            .collect(),
    )
    .unwrap();
    for step in 0..STEPS {
        assert_eq!(
            run.trace.utilizations_at(step),
            constant.utilizations_at(step),
            "column {step}"
        );
    }

    let placed = sim.run(&run.trace, &Original).unwrap();
    let direct = sim.run(&constant, &Original).unwrap();
    assert_bit_identical(&placed, &direct, "round robin vs generated constant");
}

#[test]
fn queue_overflow_and_horizon_rejections_are_accounted() {
    let sim = base_sim();
    // Two servers, jobs of 0.9 demand: only two fit at once.
    let engine = PlacementEngine::new(sim, &Original, 2, 4)
        .unwrap()
        .with_queue_capacity(1);
    let interval = engine.interval();
    let whole_run = Seconds::new(interval.value() * 4.0);
    let jobs: Vec<_> = (0..4)
        .map(|i| {
            h2p_jobs::Job::new(
                i,
                Seconds::new(0.0),
                whole_run,
                Utilization::saturating(0.9),
            )
            .unwrap()
        })
        .collect();
    let run = engine.place(&jobs, &mut RoundRobin::new()).unwrap();
    // Jobs 0 and 1 run for the whole horizon; job 2 waits in the
    // queue until the horizon ends; job 3 overflows the queue.
    assert_eq!(run.outcome.placed, 2);
    assert_eq!(run.outcome.rejected, 2);

    // A job arriving past the horizon is rejected up front.
    let late = vec![h2p_jobs::Job::new(
        9,
        Seconds::new(interval.value() * 40.0),
        whole_run,
        Utilization::saturating(0.1),
    )
    .unwrap()];
    let run = engine.place(&late, &mut RoundRobin::new()).unwrap();
    assert_eq!(run.outcome.placed, 0);
    assert_eq!(run.outcome.rejected, 1);
}

#[test]
fn delayed_placement_records_queue_wait() {
    let sim = base_sim();
    let engine = PlacementEngine::new(sim, &Original, 1, 6).unwrap();
    let interval = engine.interval();
    // One server: the second job must wait until the first releases.
    let jobs = vec![
        h2p_jobs::Job::new(
            0,
            Seconds::new(0.0),
            Seconds::new(interval.value() * 2.0),
            Utilization::saturating(0.8),
        )
        .unwrap(),
        h2p_jobs::Job::new(
            1,
            Seconds::new(0.0),
            Seconds::new(interval.value()),
            Utilization::saturating(0.8),
        )
        .unwrap(),
    ];
    let run = engine.place(&jobs, &mut RoundRobin::new()).unwrap();
    assert_eq!(run.outcome.placed, 2);
    assert_eq!(run.outcome.rejected, 0);
    assert_eq!(run.outcome.max_queue_wait_steps, 2);
}
