//! The job (invocation) model.

use crate::JobsError;
use h2p_units::{Seconds, Utilization};
use h2p_workload::JobTrace;

/// One schedulable job: an arrival time, a runtime, and a per-server
/// utilization demand while running, optionally tagged with a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    id: u64,
    arrival: Seconds,
    duration: Seconds,
    demand: Utilization,
    tenant: Option<String>,
}

impl Job {
    /// Builds a job, validating its invariants: arrival finite and
    /// non-negative, duration finite and strictly positive.
    ///
    /// # Errors
    ///
    /// [`JobsError::InvalidJob`] naming the offending field.
    pub fn new(
        id: u64,
        arrival: Seconds,
        duration: Seconds,
        demand: Utilization,
    ) -> Result<Self, JobsError> {
        if !arrival.value().is_finite() || arrival.value() < 0.0 {
            return Err(JobsError::InvalidJob {
                id,
                field: "arrival",
                value: arrival.value(),
            });
        }
        if !duration.value().is_finite() || !(duration.value() > 0.0) {
            return Err(JobsError::InvalidJob {
                id,
                field: "duration",
                value: duration.value(),
            });
        }
        Ok(Job {
            id,
            arrival,
            duration,
            demand,
            tenant: None,
        })
    }

    /// Tags the job with an owning tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Unique id; ties in admission order break on it.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Arrival time from the start of the run.
    #[must_use]
    pub fn arrival(&self) -> Seconds {
        self.arrival
    }

    /// Requested runtime.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.duration
    }

    /// Per-server utilization demand while running.
    #[must_use]
    pub fn demand(&self) -> Utilization {
        self.demand
    }

    /// Owning tenant, when tagged.
    #[must_use]
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// The control interval the job arrives in.
    #[must_use]
    pub fn arrival_step(&self, interval: Seconds) -> usize {
        // Validation pins arrival finite and >= 0; a floored
        // non-negative finite f64 fits usize on every supported target.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let step = (self.arrival.value() / interval.value()).floor() as usize;
        step
    }

    /// How many control intervals the job occupies (at least one).
    #[must_use]
    pub fn duration_steps(&self, interval: Seconds) -> usize {
        // Validation pins duration finite and > 0 (see `arrival_step`).
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let steps = (self.duration.value() / interval.value()).ceil() as usize;
        steps.max(1)
    }
}

/// Converts an ingested [`JobTrace`] (`h2p-workload`) into placement
/// jobs; ids are the record indices, so admission order is the stable
/// file order.
///
/// # Errors
///
/// [`JobsError::InvalidJob`] if a record slips past the trace
/// validation (defensive; `JobTrace` enforces the same invariants).
pub fn jobs_from_trace(trace: &JobTrace) -> Result<Vec<Job>, JobsError> {
    trace
        .records()
        .iter()
        .enumerate()
        .map(|(index, r)| {
            let job = Job::new(
                index as u64,
                Seconds::new(r.arrival_s),
                Seconds::new(r.duration_s),
                Utilization::saturating(r.utilization),
            )?;
            Ok(match &r.tenant {
                Some(tenant) => job.with_tenant(tenant.clone()),
                None => job,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_workload::jobs::JobRecord;

    #[test]
    fn job_validation_rejects_bad_fields() {
        let demand = Utilization::saturating(0.5);
        assert!(Job::new(0, Seconds::new(-1.0), Seconds::new(60.0), demand).is_err());
        assert!(Job::new(0, Seconds::new(0.0), Seconds::new(0.0), demand).is_err());
        // NaN never reaches `Job::new`: the `Seconds` newtype already
        // rejects it at construction.
        assert!(Job::new(0, Seconds::new(0.0), Seconds::new(60.0), demand).is_ok());
    }

    #[test]
    fn step_geometry_rounds_as_documented() {
        let interval = Seconds::minutes(5.0);
        let job = Job::new(
            3,
            Seconds::new(601.0),
            Seconds::new(301.0),
            Utilization::saturating(0.2),
        )
        .unwrap();
        assert_eq!(job.arrival_step(interval), 2);
        assert_eq!(job.duration_steps(interval), 2);
        // A sub-interval job still occupies one full step.
        let short = Job::new(
            4,
            Seconds::new(0.0),
            Seconds::new(1.0),
            Utilization::saturating(0.2),
        )
        .unwrap();
        assert_eq!(short.duration_steps(interval), 1);
    }

    #[test]
    fn trace_conversion_preserves_order_and_tenants() {
        let records = vec![
            JobRecord {
                arrival_s: 0.0,
                duration_s: 600.0,
                utilization: 0.25,
                tenant: Some("acme".to_string()),
            },
            JobRecord {
                arrival_s: 30.0,
                duration_s: 300.0,
                utilization: 0.5,
                tenant: None,
            },
        ];
        let trace = JobTrace::new(records).unwrap();
        let jobs = jobs_from_trace(&trace).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id(), 0);
        assert_eq!(jobs[0].tenant(), Some("acme"));
        assert_eq!(jobs[1].id(), 1);
        assert_eq!(jobs[1].tenant(), None);
    }
}
