//! Deterministic synthetic job sets shaped like the paper's trace
//! classes.
//!
//! Generation is slot-structured: each of the cluster's `servers`
//! virtual slots carries at most one job at a time, arrivals are
//! aligned to control-interval boundaries (plus sub-interval jitter
//! that never moves the arrival step), and durations are whole
//! intervals. At most `servers` jobs are therefore ever concurrent —
//! so *every* capacity-respecting policy can place the whole set with
//! an empty queue, which is what makes cross-policy "equal served
//! work" comparisons meaningful (`h2p-bench`'s `bench_jobs` relies on
//! this).
//!
//! Randomness is a hand-rolled splitmix64 stream seeded from the
//! caller's seed: same inputs, same jobs, on every platform.

use crate::Job;
use h2p_units::{Seconds, Utilization};
use h2p_workload::TraceKind;

/// splitmix64: tiny, high-quality, and dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the top 53 bits.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform integer draw in `[lo, hi]` (inclusive).
fn range(state: &mut u64, lo: usize, hi: usize) -> usize {
    // `unit` is in [0, 1), so the product is a non-negative finite
    // value below `hi - lo + 1`: the truncating cast is the draw.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let offset = (unit(state) * (hi - lo + 1) as f64) as usize;
    lo + offset
}

/// Per-class shape parameters: demand band, duration band (steps),
/// idle-gap band (steps), and the odds of an Irregular-style peak.
struct Shape {
    demand_lo: f64,
    demand_hi: f64,
    steps_lo: usize,
    steps_hi: usize,
    gap_lo: usize,
    gap_hi: usize,
    peak_odds: f64,
}

fn shape(kind: TraceKind) -> Shape {
    match kind {
        // Alibaba-like: short bursts, wildly heterogeneous demand.
        TraceKind::Drastic => Shape {
            demand_lo: 0.05,
            demand_hi: 0.85,
            steps_lo: 1,
            steps_hi: 4,
            gap_lo: 0,
            gap_hi: 2,
            peak_odds: 0.0,
        },
        // Google-like with occasional high peaks.
        TraceKind::Irregular => Shape {
            demand_lo: 0.15,
            demand_hi: 0.45,
            steps_lo: 2,
            steps_hi: 8,
            gap_lo: 0,
            gap_hi: 2,
            peak_odds: 0.1,
        },
        // Google-like, very little fluctuation: long, steady jobs.
        TraceKind::Common => Shape {
            demand_lo: 0.2,
            demand_hi: 0.4,
            steps_lo: 4,
            steps_hi: 10,
            gap_lo: 1,
            gap_hi: 2,
            peak_odds: 0.0,
        },
    }
}

const TENANTS: [&str; 3] = ["acme", "globex", "initech"];

/// Generates a deterministic job set shaped like `kind` over a
/// `servers × steps` horizon at the given control interval. At most
/// `servers` jobs are ever concurrent (see the [module docs](self)),
/// jobs are returned sorted by `(arrival, id)` with ids `0..n`, and
/// roughly a quarter of the jobs are untagged (no tenant).
#[must_use]
pub fn synthetic_jobs(
    kind: TraceKind,
    seed: u64,
    servers: usize,
    steps: usize,
    interval: Seconds,
) -> Vec<Job> {
    let shape = shape(kind);
    // Decorrelate the stream from both the seed and the class.
    let mut state = seed ^ (0x5851_f42d_4c95_7f2d ^ kind.paper_servers() as u64);
    let mut drafts: Vec<(f64, Seconds, f64, usize)> = Vec::new();

    for _slot in 0..servers {
        // Stagger slot start-ups over the first few intervals.
        let mut cursor = range(&mut state, 0, 3.min(steps.saturating_sub(1)));
        loop {
            let duration_steps = range(&mut state, shape.steps_lo, shape.steps_hi);
            if cursor + duration_steps > steps {
                break;
            }
            let demand = if unit(&mut state) < shape.peak_odds {
                0.8 + 0.15 * unit(&mut state)
            } else {
                shape.demand_lo + (shape.demand_hi - shape.demand_lo) * unit(&mut state)
            };
            // Sub-interval jitter keeps the arrival step at `cursor`.
            let jitter = 0.5 * interval.value() * unit(&mut state);
            let arrival = interval.value() * cursor as f64 + jitter;
            let duration = Seconds::new(interval.value() * duration_steps as f64);
            let tenant = range(&mut state, 0, TENANTS.len());
            drafts.push((arrival, duration, demand, tenant));
            cursor += duration_steps + range(&mut state, shape.gap_lo, shape.gap_hi);
            if cursor >= steps {
                break;
            }
        }
    }

    // Stable arrival order; ids are assigned in that order so the
    // engine's (arrival step, id) admission matches file order.
    drafts.sort_by(|a, b| a.0.total_cmp(&b.0));
    drafts
        .into_iter()
        .enumerate()
        .filter_map(|(id, (arrival, duration, demand, tenant))| {
            let job = Job::new(
                id as u64,
                Seconds::new(arrival),
                duration,
                Utilization::saturating(demand),
            )
            .ok()?;
            Some(match TENANTS.get(tenant) {
                Some(name) => job.with_tenant(*name),
                None => job,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let interval = Seconds::minutes(5.0);
        let a = synthetic_jobs(TraceKind::Common, 7, 8, 24, interval);
        let b = synthetic_jobs(TraceKind::Common, 7, 8, 24, interval);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        for pair in a.windows(2) {
            assert!(pair[0].arrival() <= pair[1].arrival());
        }
        let c = synthetic_jobs(TraceKind::Common, 8, 8, 24, interval);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn concurrency_never_exceeds_the_server_count() {
        let interval = Seconds::minutes(5.0);
        for kind in [TraceKind::Drastic, TraceKind::Irregular, TraceKind::Common] {
            let servers = 10;
            let steps = 36;
            let jobs = synthetic_jobs(kind, 42, servers, steps, interval);
            let mut occupancy = vec![0usize; steps];
            for job in &jobs {
                let start = job.arrival_step(interval);
                let end = (start + job.duration_steps(interval)).min(steps);
                for slot in &mut occupancy[start..end] {
                    *slot += 1;
                }
            }
            assert!(
                occupancy.iter().all(|&n| n <= servers),
                "{kind:?}: {occupancy:?}"
            );
        }
    }

    #[test]
    fn jobs_fit_the_horizon_and_carry_valid_demands() {
        let interval = Seconds::minutes(5.0);
        let steps = 24;
        let jobs = synthetic_jobs(TraceKind::Irregular, 3, 6, steps, interval);
        for job in &jobs {
            assert!(job.arrival_step(interval) < steps);
            assert!(job.arrival_step(interval) + job.duration_steps(interval) <= steps);
            assert!(job.demand().value() > 0.0 && job.demand().value() <= 1.0);
        }
        // All three tenants plus untagged jobs appear over a big set.
        let big = synthetic_jobs(TraceKind::Drastic, 11, 40, 48, interval);
        let tagged: std::collections::BTreeSet<_> = big.iter().filter_map(|j| j.tenant()).collect();
        assert_eq!(tagged.len(), 3);
        assert!(big.iter().any(|j| j.tenant().is_none()));
    }
}
