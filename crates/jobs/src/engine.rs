//! The deterministic placement engine.
//!
//! [`PlacementEngine::place`] walks the control intervals of a run:
//! each step it recomputes committed demand from the jobs still
//! running, admits queued jobs first (FIFO) and then this step's
//! arrivals in `(arrival step, job id)` order, asks the
//! [`PlacementPolicy`](crate::PlacementPolicy) for a server per job,
//! snapshots the committed column into the synthesized trace, and
//! finally mirrors the simulation engine's thermal step (Sec. V-B
//! optimizer, outlet/die lookups, Eq. 3 TEG output) to refresh the
//! [`ServerState`]s the *next* step's decisions will see. Policies
//! therefore act on prior-step thermals plus current-step committed
//! demand — never on anything downstream of their own decision — which
//! is what makes the loop a pure sequential function of its inputs.

use crate::{Job, JobsError};
use h2p_cooling::{CoolingOptimizer, OptimizedSetting};
use h2p_core::simulation::Simulator;
use h2p_sched::SchedulingPolicy;
use h2p_server::ThrottleController;
use h2p_telemetry::{BucketSpec, Counter, Histogram, Registry};
use h2p_units::{Celsius, Seconds, Utilization, Watts};
use h2p_workload::{ClusterTrace, Trace};
use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Slack applied to the per-server capacity check so that demands
/// which sum to exactly 1.0 in real numbers are not bounced by float
/// resummation (the committed column is clamped to `[0, 1]` before it
/// enters the trace, so the slack never leaks into the physics).
const CAPACITY_SLACK: f64 = 1e-9;

/// What a placement policy may observe about one server: the
/// *previous* step's thermal outcome under the engine's scheduling
/// policy, plus the safety headroom implied by that step's cooling
/// setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerState {
    /// Coolant inlet temperature chosen for the server's circulation.
    pub inlet: Celsius,
    /// The server's coolant outlet temperature.
    pub outlet: Celsius,
    /// The load the scheduling policy assigned the server.
    pub utilization: Utilization,
    /// Highest utilization whose predicted die temperature stays under
    /// the hard envelope at the circulation's cooling setting.
    pub safe_cap: Utilization,
    /// Per-server TEG output at the circulation's setting (Eq. 3).
    pub teg_power: Watts,
}

impl ServerState {
    /// A cold-start placeholder used before the first thermal pass.
    fn initial(t_safe: Celsius) -> Self {
        ServerState {
            inlet: t_safe,
            outlet: t_safe,
            utilization: Utilization::IDLE,
            safe_cap: Utilization::FULL,
            teg_power: Watts::new(0.0),
        }
    }
}

/// Scores the marginal TEG-harvest effect of adding demand to a
/// server. Implemented per step by the engine (with the step's
/// optimizer and cold temperature); test doubles stub it out.
pub(crate) trait HarvestScorer {
    /// Predicted change in the server's circulation TEG output
    /// (watts per server) if `demand` were committed to `server`,
    /// holding everything else at the committed column.
    fn harvest_delta(
        &self,
        committed: &[f64],
        circ_size: usize,
        server: usize,
        demand: Utilization,
    ) -> f64;
}

/// The read-only snapshot a [`PlacementPolicy`](crate::PlacementPolicy)
/// sees while placing one job: previous-step thermal state per server,
/// the demand already committed *this* step, and a scorer for marginal
/// harvest. Everything is deterministic given the admission order.
pub struct ClusterView<'a> {
    states: &'a [ServerState],
    committed: &'a [f64],
    circ_size: usize,
    scorer: &'a dyn HarvestScorer,
}

impl ClusterView<'_> {
    /// Number of servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.states.len()
    }

    /// Servers per water circulation (CDU granularity).
    #[must_use]
    pub fn circulation_size(&self) -> usize {
        self.circ_size
    }

    /// Previous-step state of one server.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range (indexing).
    #[must_use]
    pub fn state(&self, server: usize) -> ServerState {
        self.states[server]
    }

    /// Demand already committed to a server this step.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range (indexing).
    #[must_use]
    pub fn committed(&self, server: usize) -> f64 {
        self.committed[server]
    }

    /// Whether `demand` still fits on `server` this step.
    #[must_use]
    pub fn fits(&self, server: usize, demand: Utilization) -> bool {
        server < self.committed.len()
            && self.committed[server] + demand.value() <= 1.0 + CAPACITY_SLACK
    }

    /// Predicted change in the server's circulation TEG output (watts
    /// per server) if `demand` were committed to `server`. Returns
    /// `f64::NEG_INFINITY` when the optimizer cannot serve the
    /// resulting control utilization (cannot happen on the paper grid).
    #[must_use]
    pub fn harvest_delta(&self, server: usize, demand: Utilization) -> f64 {
        self.scorer
            .harvest_delta(self.committed, self.circ_size, server, demand)
    }
}

/// Builds a view; kept crate-private so callers cannot forge state.
pub(crate) fn view<'a>(
    states: &'a [ServerState],
    committed: &'a [f64],
    circ_size: usize,
    scorer: &'a dyn HarvestScorer,
) -> ClusterView<'a> {
    ClusterView {
        states,
        committed,
        circ_size,
        scorer,
    }
}

/// The engine's per-step scorer: marginal Eq. 3 TEG output through the
/// step's cooling optimizer, memoized on the control-utilization bits
/// (per cold-source temperature, like the engine's setting cache).
struct StepScorer<'a, 'b> {
    optimizer: &'a CoolingOptimizer<'b>,
    sched: &'a dyn SchedulingPolicy,
    cold_bits: u64,
    teg_memo: &'a RefCell<HashMap<(u64, u64), Option<f64>>>,
}

impl StepScorer<'_, '_> {
    fn teg_at(&self, u_ctrl: Utilization) -> Option<f64> {
        let key = (self.cold_bits, u_ctrl.value().to_bits());
        if let Some(&teg) = self.teg_memo.borrow().get(&key) {
            return teg;
        }
        let teg = self
            .optimizer
            .optimize(u_ctrl)
            .map(|setting| setting.teg_power.value());
        self.teg_memo.borrow_mut().insert(key, teg);
        teg
    }
}

impl HarvestScorer for StepScorer<'_, '_> {
    fn harvest_delta(
        &self,
        committed: &[f64],
        circ_size: usize,
        server: usize,
        demand: Utilization,
    ) -> f64 {
        if server >= committed.len() {
            return f64::NEG_INFINITY;
        }
        let start = (server / circ_size) * circ_size;
        let end = (start + circ_size).min(committed.len());
        let mut chunk: Vec<Utilization> = committed[start..end]
            .iter()
            .map(|&d| Utilization::saturating(d))
            .collect();
        let now = self.teg_at(self.sched.control_utilization(&chunk));
        chunk[server - start] = Utilization::saturating(committed[server] + demand.value());
        let after = self.teg_at(self.sched.control_utilization(&chunk));
        match (now, after) {
            (Some(now), Some(after)) => after - now,
            _ => f64::NEG_INFINITY,
        }
    }
}

/// Placement counters and the queue-latency histogram, published into
/// a shared [`Registry`] when enabled.
#[derive(Debug, Clone)]
pub struct JobsTelemetry {
    placed: Counter,
    rejected: Counter,
    migrated: Counter,
    queue_wait: Histogram,
}

impl JobsTelemetry {
    /// A no-op sink (the default).
    #[must_use]
    pub fn disabled() -> Self {
        JobsTelemetry {
            placed: Counter::new(),
            rejected: Counter::new(),
            migrated: Counter::new(),
            queue_wait: Histogram::disabled(),
        }
    }

    /// Wires the placement counters (`jobs.placed`, `jobs.rejected`,
    /// `jobs.migrated`) and the `jobs.queue_wait_steps` histogram into
    /// a registry. A disabled registry yields a no-op sink.
    #[must_use]
    pub fn from_registry(registry: &Registry) -> Self {
        if !registry.is_enabled() {
            return JobsTelemetry::disabled();
        }
        let wait_spec = BucketSpec::exponential(1, 12);
        let queue_wait = match wait_spec {
            Ok(spec) => registry
                .histogram("jobs.queue_wait_steps", &spec)
                .unwrap_or_else(|_| Histogram::disabled()),
            Err(_) => Histogram::disabled(),
        };
        JobsTelemetry {
            placed: registry.counter("jobs.placed"),
            rejected: registry.counter("jobs.rejected"),
            migrated: registry.counter("jobs.migrated"),
            queue_wait,
        }
    }
}

/// Aggregate outcome of one placement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementOutcome {
    /// Jobs committed to a server.
    pub placed: usize,
    /// Jobs dropped: queue overflow, arrival past the horizon, or
    /// still queued when the horizon ended.
    pub rejected: usize,
    /// Queued jobs that eventually landed on a different server than
    /// the policy's recorded first choice.
    pub migrated: usize,
    /// Server-steps whose scheduled load exceeded the safety cap of
    /// the circulation's cooling setting (hard envelope, 78.9 °C die).
    pub throttle_violations: usize,
    /// Total committed demand summed over servers and steps — the
    /// served work, comparable across policies when nothing queues.
    pub served_demand_steps: f64,
    /// Longest time any placed job spent queued, in control intervals.
    pub max_queue_wait_steps: usize,
}

/// A synthesized trace plus the bookkeeping of how it came to be.
#[derive(Debug, Clone)]
pub struct PlacementRun {
    /// The materialized per-server utilization trace. Feeding it to
    /// any driver (dense, kernel, fleet) at any worker count yields
    /// bit-identical results — see the crate-level determinism
    /// contract.
    pub trace: ClusterTrace,
    /// Placement statistics for the run.
    pub outcome: PlacementOutcome,
}

/// One job waiting for capacity, with its admission bookkeeping.
struct Queued {
    job: usize,
    arrival_step: usize,
    first_choice: Option<usize>,
}

/// The closed-loop placement engine. See the [module docs](self) for
/// the step anatomy and the crate docs for the determinism contract.
pub struct PlacementEngine<'a> {
    sim: &'a Simulator,
    sched: &'a dyn SchedulingPolicy,
    servers: usize,
    steps: usize,
    interval: Seconds,
    queue_capacity: usize,
    telemetry: JobsTelemetry,
}

impl<'a> PlacementEngine<'a> {
    /// Creates an engine over `servers × steps` control intervals,
    /// predicting thermals with the simulator's lookup space and the
    /// given scheduling policy (pass the same policy to the simulation
    /// run for a consistent closed loop).
    ///
    /// The control interval defaults to the paper's five minutes and
    /// the admission queue to 1024 jobs.
    ///
    /// # Errors
    ///
    /// [`JobsError::EmptyCluster`] when `servers` or `steps` is zero.
    pub fn new(
        sim: &'a Simulator,
        sched: &'a dyn SchedulingPolicy,
        servers: usize,
        steps: usize,
    ) -> Result<Self, JobsError> {
        if servers == 0 || steps == 0 {
            return Err(JobsError::EmptyCluster);
        }
        Ok(PlacementEngine {
            sim,
            sched,
            servers,
            steps,
            interval: Seconds::minutes(5.0),
            queue_capacity: 1024,
            telemetry: JobsTelemetry::disabled(),
        })
    }

    /// Sets the control interval.
    #[must_use]
    pub fn with_interval(mut self, interval: Seconds) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the admission-queue capacity (jobs beyond it are rejected).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Publishes placement telemetry into a registry.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.telemetry = JobsTelemetry::from_registry(registry);
        self
    }

    /// The control interval.
    #[must_use]
    pub fn interval(&self) -> Seconds {
        self.interval
    }

    /// Number of servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of control intervals.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Runs the placement loop over a job set and materializes the
    /// per-server utilization trace. Jobs may arrive in any order; the
    /// engine admits them by `(arrival step, id)`.
    ///
    /// # Errors
    ///
    /// [`JobsError::NoFeasibleSetting`] if the cooling optimizer
    /// cannot serve some control utilization (cannot happen on the
    /// paper grid), [`JobsError::Thermal`] on lookup failures, and
    /// [`JobsError::Trace`] if trace assembly rejects the synthesized
    /// columns.
    pub fn place(
        &self,
        jobs: &[Job],
        policy: &mut dyn crate::PlacementPolicy,
    ) -> Result<PlacementRun, JobsError> {
        let circ_size = self
            .sim
            .config()
            .servers_per_circulation
            .min(self.servers)
            .max(1);
        let throttle = ThrottleController::at_max_operating();

        // Admission order: (arrival step, id), ids breaking ties within
        // a step. Jobs arriving at or after the horizon are rejected.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| (jobs[i].arrival_step(self.interval), jobs[i].id()));
        let horizon_rejects = order
            .iter()
            .filter(|&&i| jobs[i].arrival_step(self.interval) >= self.steps)
            .count();
        order.retain(|&i| jobs[i].arrival_step(self.interval) < self.steps);

        let mut outcome = PlacementOutcome {
            placed: 0,
            rejected: horizon_rejects,
            migrated: 0,
            throttle_violations: 0,
            served_demand_steps: 0.0,
            max_queue_wait_steps: 0,
        };
        self.telemetry.rejected.add(horizon_rejects as u64);

        // (job index, last step occupied + 1, server).
        let mut active: Vec<(usize, usize, usize)> = Vec::new();
        let mut queue: Vec<Queued> = Vec::new();
        let mut demand = vec![0.0_f64; self.servers];
        let mut states = vec![ServerState::initial(self.sim.config().t_safe); self.servers];
        let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(self.steps); self.servers];

        // One optimizer per distinct cold-source reading over the run,
        // one setting per distinct (cold, control utilization) — the
        // same memoization shape as the simulation engine's cache.
        let mut optimizers: HashMap<u64, CoolingOptimizer<'_>> = HashMap::new();
        let mut settings: HashMap<(u64, u64), OptimizedSetting> = HashMap::new();
        let mut safe_caps: HashMap<(u64, u64), Utilization> = HashMap::new();
        let teg_memo: RefCell<HashMap<(u64, u64), Option<f64>>> = RefCell::new(HashMap::new());

        // Policies observing "previous-step" state at step 0 see the
        // cluster idling at the cold-source temperature of time zero.
        {
            let cold = self.sim.config().cold_source.temperature(Seconds::new(0.0));
            let optimizer = match optimizers.entry(cold.value().to_bits()) {
                Entry::Occupied(entry) => entry.into_mut(),
                Entry::Vacant(entry) => entry.insert(self.new_optimizer(cold)?),
            };
            let idle = vec![Utilization::IDLE; self.servers];
            self.thermal_pass(
                &idle,
                circ_size,
                optimizer,
                cold,
                &throttle,
                &mut settings,
                &mut safe_caps,
                &mut states,
            )?;
        }

        let mut next_arrival = 0usize;
        for step in 0..self.steps {
            let time = Seconds::new(self.interval.value() * step as f64);
            let cold = self.sim.config().cold_source.temperature(time);
            let cold_bits = cold.value().to_bits();
            let optimizer = match optimizers.entry(cold_bits) {
                Entry::Occupied(entry) => entry.into_mut(),
                Entry::Vacant(entry) => entry.insert(self.new_optimizer(cold)?),
            };

            // Release finished jobs and rebuild the committed column
            // from scratch in stable admission order, so the committed
            // sums never depend on release history.
            active.retain(|&(_, end, _)| end > step);
            demand.iter_mut().for_each(|d| *d = 0.0);
            for &(job, _, server) in &active {
                demand[server] += jobs[job].demand().value();
            }

            let scorer = StepScorer {
                optimizer,
                sched: self.sched,
                cold_bits,
                teg_memo: &teg_memo,
            };

            // Queued jobs first (FIFO), then this step's arrivals.
            let waiting = std::mem::take(&mut queue);
            for q in waiting {
                let job = &jobs[q.job];
                let choice = {
                    let view = view(&states, &demand, circ_size, &scorer);
                    policy.place(job, &view)
                };
                match choice {
                    Some(s)
                        if s < self.servers
                            && demand[s] + job.demand().value() <= 1.0 + CAPACITY_SLACK =>
                    {
                        self.commit(job, q.job, s, step, &mut demand, &mut active, &mut outcome);
                        let wait = step - q.arrival_step;
                        outcome.max_queue_wait_steps = outcome.max_queue_wait_steps.max(wait);
                        self.telemetry.queue_wait.record(wait as u64);
                        if q.first_choice.is_some_and(|first| first != s) {
                            outcome.migrated += 1;
                            self.telemetry.migrated.add(1);
                        }
                    }
                    _ => queue.push(q),
                }
            }
            while next_arrival < order.len()
                && jobs[order[next_arrival]].arrival_step(self.interval) == step
            {
                let index = order[next_arrival];
                next_arrival += 1;
                let job = &jobs[index];
                let choice = {
                    let view = view(&states, &demand, circ_size, &scorer);
                    policy.place(job, &view)
                };
                match choice {
                    Some(s)
                        if s < self.servers
                            && demand[s] + job.demand().value() <= 1.0 + CAPACITY_SLACK =>
                    {
                        self.commit(job, index, s, step, &mut demand, &mut active, &mut outcome);
                        self.telemetry.queue_wait.record(0);
                    }
                    choice if queue.len() < self.queue_capacity => queue.push(Queued {
                        job: index,
                        arrival_step: step,
                        first_choice: choice,
                    }),
                    _ => {
                        outcome.rejected += 1;
                        self.telemetry.rejected.add(1);
                    }
                }
            }

            // Snapshot the committed column (clamped against float
            // resummation at the capacity boundary) and refresh the
            // thermal state the next step's decisions will see.
            let column: Vec<Utilization> =
                demand.iter().map(|&d| Utilization::saturating(d)).collect();
            for (s, u) in column.iter().enumerate() {
                outcome.served_demand_steps += u.value();
                series[s].push(u.value());
            }
            outcome.throttle_violations += self.thermal_pass(
                &column,
                circ_size,
                optimizer,
                cold,
                &throttle,
                &mut settings,
                &mut safe_caps,
                &mut states,
            )?;
        }

        // Whatever is still queued when the horizon ends never ran.
        outcome.rejected += queue.len();
        self.telemetry.rejected.add(queue.len() as u64);

        let traces = series
            .into_iter()
            .map(|values| Trace::new(self.interval, values))
            .collect::<Result<Vec<_>, _>>()?;
        let trace = ClusterTrace::new(traces)?;
        Ok(PlacementRun { trace, outcome })
    }

    /// Commits a job to a server.
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &self,
        job: &Job,
        index: usize,
        server: usize,
        step: usize,
        demand: &mut [f64],
        active: &mut Vec<(usize, usize, usize)>,
        outcome: &mut PlacementOutcome,
    ) {
        demand[server] += job.demand().value();
        active.push((index, step + job.duration_steps(self.interval), server));
        outcome.placed += 1;
        self.telemetry.placed.add(1);
    }

    /// Builds a cooling optimizer against the simulator's lookup space
    /// for one cold-side temperature (mirrors the engine's own
    /// construction).
    fn new_optimizer(&self, cold: Celsius) -> Result<CoolingOptimizer<'a>, JobsError> {
        let config = self.sim.config();
        Ok(CoolingOptimizer::new(
            self.sim.lookup_space(),
            config.module,
            config.pump,
            config.t_safe,
            config.tolerance,
            cold,
        )?)
    }

    /// Mirrors one thermal step of the simulation engine over the
    /// committed column: per circulation, schedule, optimize the
    /// cooling setting, and refresh every server's observable state.
    /// Returns the number of scheduled loads exceeding the safety cap.
    #[allow(clippy::too_many_arguments)]
    fn thermal_pass(
        &self,
        column: &[Utilization],
        circ_size: usize,
        optimizer: &CoolingOptimizer<'_>,
        cold: Celsius,
        throttle: &ThrottleController,
        settings: &mut HashMap<(u64, u64), OptimizedSetting>,
        safe_caps: &mut HashMap<(u64, u64), Utilization>,
        states: &mut [ServerState],
    ) -> Result<usize, JobsError> {
        let cold_bits = cold.value().to_bits();
        let space = self.sim.lookup_space();
        let module = self.sim.config().module;
        let mut violations = 0usize;
        for (circ, chunk) in column.chunks(circ_size).enumerate() {
            let u_ctrl = self.sched.control_utilization(chunk);
            let setting = match settings.entry((cold_bits, u_ctrl.value().to_bits())) {
                Entry::Occupied(entry) => *entry.get(),
                Entry::Vacant(entry) => *entry.insert(optimizer.optimize(u_ctrl).ok_or(
                    JobsError::NoFeasibleSetting {
                        control_utilization: u_ctrl.value(),
                    },
                )?),
            };
            let flow = setting.setting.flow;
            let inlet = setting.setting.inlet;
            let cap_key = (flow.value().to_bits(), inlet.value().to_bits());
            let safe_cap = match safe_caps.entry(cap_key) {
                Entry::Occupied(entry) => *entry.get(),
                Entry::Vacant(entry) => {
                    *entry.insert(throttle.max_safe_utilization_in_space(space, flow, inlet)?)
                }
            };
            let scheduled = self.sched.schedule(chunk);
            for (offset, &u) in scheduled.iter().enumerate() {
                let server = circ * circ_size + offset;
                let outlet = space.outlet_temperature(u, flow, inlet)?;
                if u.value() > safe_cap.value() {
                    violations += 1;
                }
                states[server] = ServerState {
                    inlet,
                    outlet,
                    utilization: u,
                    safe_cap,
                    teg_power: module.max_power(outlet - cold),
                };
            }
        }
        Ok(violations)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) struct FixedScorer(pub Vec<f64>);

    impl HarvestScorer for FixedScorer {
        fn harvest_delta(
            &self,
            _committed: &[f64],
            _circ_size: usize,
            server: usize,
            _demand: Utilization,
        ) -> f64 {
            self.0.get(server).copied().unwrap_or(f64::NEG_INFINITY)
        }
    }

    pub(crate) fn states_with_outlets(outlets: &[f64]) -> Vec<ServerState> {
        outlets
            .iter()
            .map(|&o| ServerState {
                inlet: Celsius::new(40.0),
                outlet: Celsius::new(o),
                utilization: Utilization::IDLE,
                safe_cap: Utilization::FULL,
                teg_power: Watts::new(0.0),
            })
            .collect()
    }

    #[test]
    fn view_capacity_check_allows_exact_full_and_rejects_overflow() {
        let states = states_with_outlets(&[50.0, 50.0]);
        let committed = [0.4, 0.95];
        let scorer = FixedScorer(vec![0.0, 0.0]);
        let view = view(&states, &committed, 2, &scorer);
        assert!(view.fits(0, Utilization::saturating(0.6)));
        assert!(!view.fits(1, Utilization::saturating(0.1)));
        assert!(!view.fits(7, Utilization::IDLE));
    }

    #[test]
    fn view_exposes_state_and_scorer() {
        let states = states_with_outlets(&[41.0, 47.0]);
        let committed = [0.0, 0.25];
        let scorer = FixedScorer(vec![1.5, -2.0]);
        let view = view(&states, &committed, 2, &scorer);
        assert_eq!(view.servers(), 2);
        assert_eq!(view.circulation_size(), 2);
        assert_eq!(view.state(1).outlet, Celsius::new(47.0));
        assert_eq!(view.committed(1), 0.25);
        assert_eq!(view.harvest_delta(0, Utilization::saturating(0.3)), 1.5);
        assert_eq!(view.harvest_delta(1, Utilization::saturating(0.3)), -2.0);
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let telemetry = JobsTelemetry::disabled();
        telemetry.placed.add(3);
        telemetry.queue_wait.record(5);
        // No registry to observe through; this is a smoke test that the
        // no-op sink accepts traffic without panicking.
    }
}
