//! Closed-loop thermal-aware job placement.
//!
//! Every earlier layer treats utilization as *exogenous*: a trace is
//! generated (or loaded) and the engine merely reacts. This crate
//! closes the loop. A [`PlacementEngine`] walks the control intervals
//! of a run, admits arriving [`Job`]s, asks a [`PlacementPolicy`] to
//! map each one onto a server — seeing the cluster's *previous-step*
//! thermal state — and synthesizes the per-server utilization column
//! the simulation engine consumes. Placement can therefore trade TEG
//! harvest, cooling energy, and throttle risk against each other,
//! which no load-oblivious trace ever could.
//!
//! # Determinism contract
//!
//! The placement engine is strictly sequential and its decisions
//! derive only from **prior-step** state (thermals, settings, safety
//! caps) plus the demand already committed *this* step, applied in a
//! deterministic admission order (queued jobs first, then arrivals by
//! `(arrival step, job id)`). The synthesized trace is therefore a
//! pure function of the job set, the policies, and the simulator
//! configuration — and because the engine *materializes* the trace
//! before the simulation drivers consume it, bit-identity across
//! worker counts, dense/kernel drivers, layouts, and cache states
//! follows from the existing engine contracts
//! (`crates/jobs/tests/jobs_transparency.rs` pins this down).
//!
//! # Examples
//!
//! ```
//! use h2p_core::simulation::Simulator;
//! use h2p_jobs::{synthetic_jobs, PlacementEngine, RoundRobin};
//! use h2p_sched::Original;
//! use h2p_workload::TraceKind;
//!
//! let sim = Simulator::paper_default()?;
//! let engine = PlacementEngine::new(&sim, &Original, 8, 12)?;
//! let jobs = synthetic_jobs(TraceKind::Common, 7, 8, 12, engine.interval());
//! let run = engine.place(&jobs, &mut RoundRobin::new())?;
//! let result = sim.run(&run.trace, &Original)?;
//! assert_eq!(result.steps().len(), 12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used as a deliberate NaN-rejecting validation idiom
// throughout (NaN fails the guard, unlike `x <= 0.0`).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Lock-order manifest (h2p-lint L10): this crate takes no locks. The
// placement engine is single-threaded by contract — determinism comes
// from sequential admission order, so there is nothing to lock.
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

mod engine;
mod job;
mod policy;
mod synth;

pub use engine::{
    ClusterView, JobsTelemetry, PlacementEngine, PlacementOutcome, PlacementRun, ServerState,
};
pub use job::{jobs_from_trace, Job};
pub use policy::{CoolestFirst, HarvestAware, PlacementPolicy, PlacementPolicyKind, RoundRobin};
pub use synth::synthetic_jobs;

use core::fmt;

/// Errors from job construction and placement.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobsError {
    /// A job field violated its invariant (non-finite or negative
    /// arrival, non-positive duration).
    InvalidJob {
        /// The offending job's id.
        id: u64,
        /// Which field was bad.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The placement engine needs at least one server and one step.
    EmptyCluster,
    /// The cooling optimizer could not serve a control utilization
    /// (cannot happen on the paper grid).
    NoFeasibleSetting {
        /// The control utilization that could not be served.
        control_utilization: f64,
    },
    /// A lookup-space evaluation failed while mirroring the engine's
    /// thermal step.
    Thermal(h2p_server::ServerError),
    /// The cooling optimizer could not be constructed for a cold-side
    /// temperature.
    Cooling(h2p_cooling::CoolingError),
    /// Trace assembly from the synthesized columns failed.
    Trace(h2p_workload::WorkloadError),
}

impl fmt::Display for JobsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobsError::InvalidJob { id, field, value } => {
                write!(f, "job {id}: {field} = {value} is invalid")
            }
            JobsError::EmptyCluster => {
                write!(f, "placement needs at least one server and one step")
            }
            JobsError::NoFeasibleSetting {
                control_utilization,
            } => write!(
                f,
                "no feasible cooling setting at control utilization {control_utilization}"
            ),
            JobsError::Thermal(e) => write!(f, "thermal evaluation failed: {e}"),
            JobsError::Cooling(e) => write!(f, "cooling optimizer construction failed: {e}"),
            JobsError::Trace(e) => write!(f, "synthesized trace invalid: {e}"),
        }
    }
}

impl std::error::Error for JobsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobsError::Thermal(e) => Some(e),
            JobsError::Cooling(e) => Some(e),
            JobsError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<h2p_server::ServerError> for JobsError {
    fn from(e: h2p_server::ServerError) -> Self {
        JobsError::Thermal(e)
    }
}

impl From<h2p_cooling::CoolingError> for JobsError {
    fn from(e: h2p_cooling::CoolingError) -> Self {
        JobsError::Cooling(e)
    }
}

impl From<h2p_workload::WorkloadError> for JobsError {
    fn from(e: h2p_workload::WorkloadError) -> Self {
        JobsError::Trace(e)
    }
}
