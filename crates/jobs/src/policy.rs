//! Placement policies.
//!
//! A policy maps one arriving [`Job`] onto a server, seeing only the
//! [`ClusterView`] the engine hands it (previous-step thermals plus
//! demand already committed this step). Returning a server the job
//! does not fit on — or `None` — defers the job to the admission
//! queue.
//!
//! All score comparisons use [`f64::total_cmp`]: placement scores flow
//! through optimizer lookups that can legitimately produce non-finite
//! sentinels, and a `partial_cmp().unwrap()` there would turn a NaN
//! into a panic inside the simulation loop (h2p-lint rule L11 rejects
//! that pattern in library policy impls).

use crate::engine::ClusterView;
use crate::Job;
use core::fmt;
use std::cmp::Ordering;

/// Maps arriving jobs onto servers. Implementations may keep state
/// (cursors, histories) — the engine calls them sequentially in a
/// deterministic admission order, so stateful policies stay
/// reproducible.
pub trait PlacementPolicy {
    /// The policy's stable display name.
    fn name(&self) -> &'static str;

    /// Chooses a server for `job`, or `None` to defer it to the
    /// admission queue. A choice the job does not fit on is treated as
    /// a deferral too.
    fn place(&mut self, job: &Job, view: &ClusterView<'_>) -> Option<usize>;
}

/// The load-oblivious oracle baseline: sweeps a cursor over the
/// servers and takes the first one with capacity. Because it never
/// reads thermal state, a `RoundRobin` run over jobs that reproduce a
/// generated trace's demands is bit-identical to running that trace
/// directly — which is what makes it the transparency baseline.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// A fresh cursor at server 0.
    #[must_use]
    pub fn new() -> Self {
        RoundRobin { cursor: 0 }
    }
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn place(&mut self, job: &Job, view: &ClusterView<'_>) -> Option<usize> {
        let n = view.servers();
        for offset in 0..n {
            let server = (self.cursor + offset) % n;
            if view.fits(server, job.demand()) {
                self.cursor = (server + 1) % n;
                return Some(server);
            }
        }
        None
    }
}

/// Places on the server with the lowest previous-step coolant outlet
/// temperature among those with capacity (ties break on the lower
/// index). Outlet tracks the server's heat directly, so this is the
/// classic thermal-aware greedy baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoolestFirst;

impl CoolestFirst {
    /// The (stateless) policy.
    #[must_use]
    pub fn new() -> Self {
        CoolestFirst
    }
}

impl PlacementPolicy for CoolestFirst {
    fn name(&self) -> &'static str {
        "coolest_first"
    }

    fn place(&mut self, job: &Job, view: &ClusterView<'_>) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for server in 0..view.servers() {
            if !view.fits(server, job.demand()) {
                continue;
            }
            let outlet = view.state(server).outlet.value();
            let better = match best {
                None => true,
                Some((incumbent, _)) => outlet.total_cmp(&incumbent) == Ordering::Less,
            };
            if better {
                best = Some((outlet, server));
            }
        }
        best.map(|(_, server)| server)
    }
}

/// Scores candidates by the marginal Eq. 3 TEG harvest of committing
/// the job there, minus a throttle-risk penalty when the tentative
/// demand would exceed the previous step's safety cap. Ties break on
/// the lower committed demand, then the lower index, so the policy
/// degenerates gracefully to load balancing when the harvest landscape
/// is flat.
#[derive(Debug, Clone, Copy, Default)]
pub struct HarvestAware;

impl HarvestAware {
    /// Weight of the throttle-risk penalty: watts of forgone score per
    /// unit of demand above the safety cap. Large enough that any risk
    /// dominates any realistic harvest delta.
    const THROTTLE_PENALTY: f64 = 1000.0;

    /// The (stateless) policy.
    #[must_use]
    pub fn new() -> Self {
        HarvestAware
    }
}

impl PlacementPolicy for HarvestAware {
    fn name(&self) -> &'static str {
        "harvest_aware"
    }

    fn place(&mut self, job: &Job, view: &ClusterView<'_>) -> Option<usize> {
        let mut best: Option<(f64, f64, usize)> = None;
        for server in 0..view.servers() {
            if !view.fits(server, job.demand()) {
                continue;
            }
            let committed = view.committed(server);
            let tentative = committed + job.demand().value();
            let risk = (tentative - view.state(server).safe_cap.value()).max(0.0);
            let raw = view.harvest_delta(server, job.demand()) - Self::THROTTLE_PENALTY * risk;
            // `total_cmp` ranks NaN above +inf; map it to the bottom so
            // a poisoned score can never win a placement.
            let score = if raw.is_nan() { f64::NEG_INFINITY } else { raw };
            let better = match best {
                None => true,
                Some((incumbent, incumbent_committed, _)) => match score.total_cmp(&incumbent) {
                    Ordering::Greater => true,
                    Ordering::Equal => committed.total_cmp(&incumbent_committed) == Ordering::Less,
                    Ordering::Less => false,
                },
            };
            if better {
                best = Some((score, committed, server));
            }
        }
        best.map(|(_, _, server)| server)
    }
}

/// The named placement policies, for CLI/serve plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicyKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`CoolestFirst`].
    CoolestFirst,
    /// [`HarvestAware`].
    HarvestAware,
}

impl PlacementPolicyKind {
    /// Every kind, in canonical order.
    pub const ALL: [PlacementPolicyKind; 3] = [
        PlacementPolicyKind::RoundRobin,
        PlacementPolicyKind::CoolestFirst,
        PlacementPolicyKind::HarvestAware,
    ];

    /// The canonical (snake_case) name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicyKind::RoundRobin => "round_robin",
            PlacementPolicyKind::CoolestFirst => "coolest_first",
            PlacementPolicyKind::HarvestAware => "harvest_aware",
        }
    }

    /// Parses a canonical name (case-insensitive; `-` and `_` are
    /// interchangeable).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        let canon = name.trim().to_ascii_lowercase().replace('-', "_");
        PlacementPolicyKind::ALL
            .into_iter()
            .find(|kind| kind.name() == canon)
    }

    /// Builds a fresh policy instance.
    #[must_use]
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementPolicyKind::RoundRobin => Box::new(RoundRobin::new()),
            PlacementPolicyKind::CoolestFirst => Box::new(CoolestFirst::new()),
            PlacementPolicyKind::HarvestAware => Box::new(HarvestAware::new()),
        }
    }
}

impl fmt::Display for PlacementPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::{states_with_outlets, FixedScorer};
    use crate::engine::view;
    use h2p_units::{Seconds, Utilization};

    fn job(demand: f64) -> Job {
        Job::new(
            0,
            Seconds::new(0.0),
            Seconds::new(300.0),
            Utilization::saturating(demand),
        )
        .unwrap()
    }

    #[test]
    fn round_robin_sweeps_and_skips_full_servers() {
        let states = states_with_outlets(&[50.0; 3]);
        let scorer = FixedScorer(vec![0.0; 3]);
        let mut policy = RoundRobin::new();

        let committed = [0.0, 0.0, 0.0];
        let view1 = view(&states, &committed, 3, &scorer);
        assert_eq!(policy.place(&job(0.5), &view1), Some(0));

        let committed = [0.5, 0.9, 0.0];
        let view2 = view(&states, &committed, 3, &scorer);
        // Cursor is at 1, which cannot take 0.5 — sweeps on to 2.
        assert_eq!(policy.place(&job(0.5), &view2), Some(2));

        let committed = [1.0, 1.0, 1.0];
        let view3 = view(&states, &committed, 3, &scorer);
        assert_eq!(policy.place(&job(0.5), &view3), None);
    }

    #[test]
    fn coolest_first_prefers_the_lowest_outlet_with_capacity() {
        let states = states_with_outlets(&[47.0, 41.0, 44.0]);
        let scorer = FixedScorer(vec![0.0; 3]);
        let mut policy = CoolestFirst::new();

        let committed = [0.0, 0.0, 0.0];
        let view1 = view(&states, &committed, 3, &scorer);
        assert_eq!(policy.place(&job(0.5), &view1), Some(1));

        // The coolest server is full: next-coolest wins.
        let committed = [0.0, 0.9, 0.0];
        let view2 = view(&states, &committed, 3, &scorer);
        assert_eq!(policy.place(&job(0.5), &view2), Some(2));
    }

    #[test]
    fn coolest_first_breaks_outlet_ties_on_the_lower_index() {
        let states = states_with_outlets(&[44.0, 44.0, 44.0]);
        let scorer = FixedScorer(vec![0.0; 3]);
        let mut policy = CoolestFirst::new();
        let committed = [0.0, 0.0, 0.0];
        let view1 = view(&states, &committed, 3, &scorer);
        assert_eq!(policy.place(&job(0.2), &view1), Some(0));
    }

    #[test]
    fn harvest_aware_maximizes_marginal_harvest() {
        let states = states_with_outlets(&[50.0, 50.0, 50.0]);
        let scorer = FixedScorer(vec![0.5, 2.0, 1.0]);
        let mut policy = HarvestAware::new();
        let committed = [0.0, 0.0, 0.0];
        let view1 = view(&states, &committed, 3, &scorer);
        assert_eq!(policy.place(&job(0.3), &view1), Some(1));
    }

    #[test]
    fn harvest_aware_penalizes_throttle_risk_and_balances_ties() {
        // Equal harvest everywhere; server 1 would exceed its safety
        // cap, server 2 carries less than server 0.
        let mut states = states_with_outlets(&[50.0, 50.0, 50.0]);
        states[1].safe_cap = Utilization::saturating(0.4);
        let scorer = FixedScorer(vec![1.0, 1.0, 1.0]);
        let mut policy = HarvestAware::new();
        let committed = [0.3, 0.3, 0.1];
        let view1 = view(&states, &committed, 3, &scorer);
        assert_eq!(policy.place(&job(0.3), &view1), Some(2));
    }

    #[test]
    fn harvest_aware_survives_nan_scores() {
        // A NaN score must neither panic nor win.
        let states = states_with_outlets(&[50.0, 50.0]);
        let scorer = FixedScorer(vec![f64::NAN, 0.5]);
        let mut policy = HarvestAware::new();
        let committed = [0.0, 0.0];
        let view1 = view(&states, &committed, 2, &scorer);
        assert_eq!(policy.place(&job(0.3), &view1), Some(1));
    }

    #[test]
    fn kind_round_trips_names_and_builds() {
        for kind in PlacementPolicyKind::ALL {
            assert_eq!(PlacementPolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(
            PlacementPolicyKind::parse("Harvest-Aware"),
            Some(PlacementPolicyKind::HarvestAware)
        );
        assert_eq!(PlacementPolicyKind::parse("nope"), None);
    }
}
