//! Property-based tests of the thermal substrate: energy conservation,
//! physical orderings and exchanger bounds under randomized inputs.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_thermal::network::ThermalNetwork;
use h2p_thermal::{ColdPlate, CounterflowExchanger, Stream};
use h2p_units::{Celsius, LitersPerHour, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    // Input ranges are chosen so every reachable temperature stays
    // inside the physics sanitizer's [-50, 150] degC envelope (worst
    // case here: coolant + power * (r1 + r2) = 50 + 120 * 0.8 = 146).
    fn chain_steady_state_orders_temperatures(
        power in 1.0..120.0f64,
        r1 in 0.01..0.4f64,
        r2 in 0.01..0.4f64,
        coolant in 10.0..50.0f64,
    ) {
        // die -R1- plate -R2- coolant with heat at the die: temperatures
        // must decrease along the heat-flow path, with exact superposition.
        let mut net = ThermalNetwork::new();
        let die = net.add_capacitive("die", 100.0, Celsius::new(coolant));
        let plate = net.add_capacitive("plate", 300.0, Celsius::new(coolant));
        let sink = net.add_boundary("sink", Celsius::new(coolant));
        net.connect_resistance(die, plate, r1);
        net.connect_resistance(plate, sink, r2);
        net.set_heat_input(die, Watts::new(power));
        let ss = net.steady_state().unwrap();
        let t_die = ss.temperature(die).value();
        let t_plate = ss.temperature(plate).value();
        prop_assert!(t_die >= t_plate && t_plate >= coolant - 1e-9);
        prop_assert!((t_die - (coolant + power * (r1 + r2))).abs() < 1e-6);
        prop_assert!((t_plate - (coolant + power * r2)).abs() < 1e-6);
    }

    #[test]
    fn transient_ledger_balances_for_random_networks(
        p1 in 0.0..150.0f64,
        p2 in 0.0..150.0f64,
        g1 in 0.1..20.0f64,
        g2 in 0.1..20.0f64,
        g3 in 0.1..20.0f64,
        // dt bounded so a single adiabatic-worst-case step stays inside
        // the sanitizer envelope: 30 + 150 W * 20 s / 50 J/K = 90 degC.
        dt in 0.1..20.0f64,
    ) {
        let mut net = ThermalNetwork::new();
        let a = net.add_capacitive("a", 50.0, Celsius::new(30.0));
        let b = net.add_capacitive("b", 120.0, Celsius::new(25.0));
        let sink = net.add_boundary("sink", Celsius::new(20.0));
        net.connect(a, b, g1);
        net.connect(b, sink, g2);
        net.connect(a, sink, g3);
        net.set_heat_input(a, Watts::new(p1));
        net.set_heat_input(b, Watts::new(p2));
        let report = net.step(Seconds::new(dt));
        let residual = report.source_input - report.boundary_outflow - report.stored_delta;
        let scale = report.source_input.value().abs().max(report.stored_delta.value().abs()).max(1.0);
        prop_assert!(residual.value().abs() < 1e-6 * scale, "residual {residual:?}");
    }

    #[test]
    // g >= 1 keeps the steady state (20 + power / g <= 140 degC) inside
    // the sanitizer envelope.
    fn transient_approaches_steady_state(
        power in 1.0..120.0f64,
        g in 1.0..10.0f64,
    ) {
        let mut net = ThermalNetwork::new();
        let die = net.add_capacitive("die", 40.0, Celsius::new(20.0));
        let sink = net.add_boundary("sink", Celsius::new(20.0));
        net.connect(die, sink, g);
        net.set_heat_input(die, Watts::new(power));
        let target = net.steady_state().unwrap().temperature(die);
        // Run 30 time constants.
        let tau = 40.0 / g;
        for _ in 0..300 {
            net.step(Seconds::new(tau / 10.0));
        }
        prop_assert!((net.temperature(die) - target).value().abs() < 0.01 * (target.value() - 20.0).abs().max(0.1));
    }

    #[test]
    fn exchanger_conserves_and_brackets(
        hot_flow in 10.0..500.0f64,
        cold_flow in 10.0..500.0f64,
        hot_in in 30.0..80.0f64,
        cold_in in 5.0..29.0f64,
        ua in 10.0..2000.0f64,
    ) {
        let hx = CounterflowExchanger::new(ua).unwrap();
        let hot = Stream::new(LitersPerHour::new(hot_flow).mass_flow(), Celsius::new(hot_in)).unwrap();
        let cold = Stream::new(LitersPerHour::new(cold_flow).mass_flow(), Celsius::new(cold_in)).unwrap();
        let out = hx.exchange(hot, cold);
        // First law.
        let q_hot = hot.mass_flow.capacity_rate() * (hot.inlet - out.hot_outlet).value();
        let q_cold = cold.mass_flow.capacity_rate() * (out.cold_outlet - cold.inlet).value();
        prop_assert!((q_hot - q_cold).abs() < 1e-6 * q_hot.abs().max(1.0));
        // Second law: outlets bracketed by inlets, effectiveness in [0, 1].
        prop_assert!(out.hot_outlet.value() <= hot_in + 1e-9);
        prop_assert!(out.hot_outlet.value() >= cold_in - 1e-9);
        prop_assert!(out.cold_outlet.value() >= cold_in - 1e-9);
        prop_assert!(out.cold_outlet.value() <= hot_in + 1e-9);
        prop_assert!((0.0..=1.0).contains(&out.effectiveness));
        prop_assert!(out.heat_transferred.value() >= 0.0);
    }

    #[test]
    fn cold_plate_resistance_monotone_in_flow(
        a in 5.0..500.0f64,
        b in 5.0..500.0f64,
    ) {
        let plate = ColdPlate::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let r_lo = plate.resistance(LitersPerHour::new(lo)).unwrap();
        let r_hi = plate.resistance(LitersPerHour::new(hi)).unwrap();
        prop_assert!(r_lo >= r_hi - 1e-12);
    }

    #[test]
    fn die_temperature_monotone_in_power(
        p1 in 0.0..100.0f64,
        p2 in 0.0..100.0f64,
        flow in 10.0..300.0f64,
        coolant in 20.0..60.0f64,
    ) {
        let plate = ColdPlate::paper_default();
        let f = LitersPerHour::new(flow);
        let c = Celsius::new(coolant);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let t_lo = plate.die_temperature(Watts::new(lo), c, f).unwrap();
        let t_hi = plate.die_temperature(Watts::new(hi), c, f).unwrap();
        prop_assert!(t_lo <= t_hi);
        prop_assert!(t_lo >= c);
    }
}
