//! Proof that the physics sanitizer fires: under `--features sanitize`
//! a solver that leaves the physical temperature envelope panics in
//! debug builds instead of silently propagating garbage downstream.

#![cfg(all(feature = "sanitize", debug_assertions))]
// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use h2p_thermal::network::ThermalNetwork;
use h2p_units::{Celsius, Seconds, Watts};

/// 10 kW into a die with only a weak path to the sink settles far above
/// 150 degC — the steady-state sanitizer must reject it.
#[test]
#[should_panic(expected = "sanitize: steady_state")]
fn steady_state_panics_outside_envelope() {
    let mut net = ThermalNetwork::new();
    let die = net.add_capacitive("die", 40.0, Celsius::new(25.0));
    let sink = net.add_boundary("sink", Celsius::new(25.0));
    net.connect(die, sink, 0.5);
    net.set_heat_input(die, Watts::new(10_000.0));
    let _ = net.steady_state();
}

/// The same runaway input caught mid-transient by the step sanitizer.
#[test]
#[should_panic(expected = "sanitize: step")]
fn step_panics_outside_envelope() {
    let mut net = ThermalNetwork::new();
    let die = net.add_capacitive("die", 40.0, Celsius::new(25.0));
    let sink = net.add_boundary("sink", Celsius::new(25.0));
    net.connect(die, sink, 0.5);
    net.set_heat_input(die, Watts::new(10_000.0));
    for _ in 0..1_000 {
        net.step(Seconds::new(10.0));
    }
}

/// In-envelope operation is untouched by the sanitizer.
#[test]
fn sanitizer_is_silent_in_envelope() {
    let mut net = ThermalNetwork::new();
    let die = net.add_capacitive("die", 40.0, Celsius::new(25.0));
    let sink = net.add_boundary("sink", Celsius::new(25.0));
    net.connect(die, sink, 2.0);
    net.set_heat_input(die, Watts::new(90.0));
    for _ in 0..100 {
        net.step(Seconds::new(5.0));
    }
    let ss = net.steady_state().unwrap();
    assert!(ss.temperature(die).value() < 150.0);
}
