//! Flow-dependent cold-plate thermal resistance.
//!
//! The prototype presses a 4 cm × 4 cm cold plate onto the CPU; coolant
//! flowing through the plate carries heat away. The die-to-coolant
//! resistance splits into a flow-independent conduction part (die, paste,
//! plate metal) and a convective part that shrinks with flow roughly as
//! `f^(-0.8)` (Dittus-Boelter turbulent forced convection). This is the
//! physics behind Fig. 11: at low flow the convective term dominates and
//! the CPU runs hotter, with diminishing returns past ~250 L/H — exactly
//! the saturation the paper observes.

use crate::ThermalError;
use h2p_units::{Celsius, DegC, LitersPerHour, Watts};

/// Cold-plate model mapping flow rate to die-to-coolant thermal
/// resistance.
///
/// ```
/// use h2p_thermal::ColdPlate;
/// use h2p_units::LitersPerHour;
///
/// let plate = ColdPlate::paper_default();
/// let r_slow = plate.resistance(LitersPerHour::new(20.0))?;
/// let r_fast = plate.resistance(LitersPerHour::new(250.0))?;
/// assert!(r_slow > r_fast);
/// # Ok::<(), h2p_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdPlate {
    /// Flow-independent conduction resistance (K/W).
    base_resistance: f64,
    /// Convective resistance at the reference flow (K/W).
    conv_resistance_at_ref: f64,
    /// Reference flow for the convective term.
    reference_flow: LitersPerHour,
    /// Flow exponent (0.8 for turbulent forced convection).
    exponent: f64,
}

impl ColdPlate {
    /// Creates a cold plate from its resistance decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NonPositiveParameter`] if any parameter is
    /// not strictly positive.
    pub fn new(
        base_resistance: f64,
        conv_resistance_at_ref: f64,
        reference_flow: LitersPerHour,
        exponent: f64,
    ) -> Result<Self, ThermalError> {
        for (name, value) in [
            ("base_resistance", base_resistance),
            ("conv_resistance_at_ref", conv_resistance_at_ref),
            ("reference_flow", reference_flow.value()),
            ("exponent", exponent),
        ] {
            if !(value > 0.0) {
                return Err(ThermalError::NonPositiveParameter { name, value });
            }
        }
        Ok(ColdPlate {
            base_resistance,
            conv_resistance_at_ref,
            reference_flow,
            exponent,
        })
    }

    /// The cold plate calibrated against the paper's prototype
    /// (Fig. 11): R(20 L/H) ≈ 0.31 K/W, R(250 L/H) ≈ 0.125 K/W, which —
    /// combined with the leakage feedback in the server model — spans the
    /// observed T_CPU-vs-coolant slopes k ∈ [1, 1.3].
    #[must_use]
    pub fn paper_default() -> Self {
        ColdPlate::new(0.11, 0.20, LitersPerHour::new(20.0), 0.8)
            // h2p-lint: allow(L2): hard-coded positive constants
            .expect("paper constants are valid")
    }

    /// Die-to-coolant resistance at a given flow (K/W):
    /// `R(f) = R_base + R_conv · (f_ref / f)^exponent`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NonPositiveParameter`] if `flow` is not
    /// strictly positive.
    pub fn resistance(&self, flow: LitersPerHour) -> Result<f64, ThermalError> {
        if !(flow.value() > 0.0) {
            return Err(ThermalError::NonPositiveParameter {
                name: "flow",
                value: flow.value(),
            });
        }
        let ratio = self.reference_flow.value() / flow.value();
        Ok(self.base_resistance + self.conv_resistance_at_ref * ratio.powf(self.exponent))
    }

    /// Equivalent conductance (W/K) at a given flow, for wiring the plate
    /// into a [`crate::ThermalNetwork`].
    ///
    /// # Errors
    ///
    /// As for [`resistance`](Self::resistance).
    pub fn conductance(&self, flow: LitersPerHour) -> Result<f64, ThermalError> {
        Ok(1.0 / self.resistance(flow)?)
    }

    /// Steady-state die temperature when dissipating `power` into coolant
    /// at `coolant_temperature` through this plate.
    ///
    /// # Errors
    ///
    /// As for [`resistance`](Self::resistance).
    pub fn die_temperature(
        &self,
        power: Watts,
        coolant_temperature: Celsius,
        flow: LitersPerHour,
    ) -> Result<Celsius, ThermalError> {
        let r = self.resistance(flow)?;
        Ok(coolant_temperature + DegC::new(power.value() * r))
    }
}

impl Default for ColdPlate {
    fn default() -> Self {
        ColdPlate::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_decreases_with_flow() {
        let plate = ColdPlate::paper_default();
        let mut prev = f64::INFINITY;
        for f in [10.0, 20.0, 50.0, 100.0, 200.0, 400.0] {
            let r = plate.resistance(LitersPerHour::new(f)).unwrap();
            assert!(r < prev, "R must shrink with flow (f = {f})");
            assert!(r > plate.base_resistance);
            prev = r;
        }
    }

    #[test]
    fn diminishing_returns_at_high_flow() {
        // Paper: above ~250 L/H flow has little effect. The marginal
        // improvement from 250->500 must be far smaller than 20->40.
        let plate = ColdPlate::paper_default();
        let r = |f: f64| plate.resistance(LitersPerHour::new(f)).unwrap();
        let low_gain = r(20.0) - r(40.0);
        let high_gain = r(250.0) - r(500.0);
        assert!(high_gain < low_gain / 5.0);
    }

    #[test]
    fn reference_flow_identity() {
        let plate = ColdPlate::new(0.1, 0.2, LitersPerHour::new(50.0), 0.8).unwrap();
        assert!((plate.resistance(LitersPerHour::new(50.0)).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn die_temperature_linear_in_power() {
        let plate = ColdPlate::paper_default();
        let coolant = Celsius::new(45.0);
        let f = LitersPerHour::new(20.0);
        let t1 = plate.die_temperature(Watts::new(40.0), coolant, f).unwrap();
        let t2 = plate.die_temperature(Watts::new(80.0), coolant, f).unwrap();
        let r = plate.resistance(f).unwrap();
        assert!(((t2 - t1).value() - 40.0 * r).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ColdPlate::new(0.0, 0.1, LitersPerHour::new(20.0), 0.8).is_err());
        assert!(ColdPlate::new(0.1, -0.1, LitersPerHour::new(20.0), 0.8).is_err());
        let plate = ColdPlate::paper_default();
        assert!(plate.resistance(LitersPerHour::new(0.0)).is_err());
    }

    #[test]
    fn conductance_is_reciprocal() {
        let plate = ColdPlate::paper_default();
        let f = LitersPerHour::new(100.0);
        let r = plate.resistance(f).unwrap();
        let g = plate.conductance(f).unwrap();
        assert!((r * g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_calibration_band() {
        // The calibrated plate must give ~0.31 K/W at 20 L/H and
        // ~0.12 K/W at 250 L/H (die-to-coolant for the E5-2650 V3 loop).
        let plate = ColdPlate::paper_default();
        let r20 = plate.resistance(LitersPerHour::new(20.0)).unwrap();
        let r250 = plate.resistance(LitersPerHour::new(250.0)).unwrap();
        assert!((0.28..=0.34).contains(&r20), "r20 = {r20}");
        assert!((0.10..=0.15).contains(&r250), "r250 = {r250}");
    }
}
