//! Material properties and slab-geometry helpers.
//!
//! The lumped parameters used across the workspace (the TEG's
//! ~1.45 K/W thermal resistance, cold-plate conduction, node heat
//! capacities) are derived from textbook material data and the
//! prototype's geometry. This module keeps that derivation explicit and
//! testable instead of burying magic constants.

use crate::ThermalError;

/// Bulk thermal properties of a material.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Human-readable name.
    pub name: &'static str,
    /// Thermal conductivity, W/(m·K).
    pub conductivity: f64,
    /// Density, kg/m³.
    pub density: f64,
    /// Specific heat capacity, J/(kg·K).
    pub specific_heat: f64,
}

impl Material {
    /// Copper (cold plates, heat spreaders).
    #[must_use]
    pub fn copper() -> Self {
        Material {
            name: "copper",
            conductivity: 385.0,
            density: 8960.0,
            specific_heat: 385.0,
        }
    }

    /// Aluminium (heat sinks, housings).
    #[must_use]
    pub fn aluminum() -> Self {
        Material {
            name: "aluminum",
            conductivity: 205.0,
            density: 2700.0,
            specific_heat: 900.0,
        }
    }

    /// Silicon (CPU die).
    #[must_use]
    pub fn silicon() -> Self {
        Material {
            name: "silicon",
            conductivity: 148.0,
            density: 2330.0,
            specific_heat: 700.0,
        }
    }

    /// Bismuth telluride (the SP 1848-27145's thermoelectric legs).
    #[must_use]
    pub fn bismuth_telluride() -> Self {
        Material {
            name: "Bi2Te3",
            conductivity: 1.5,
            density: 7700.0,
            specific_heat: 154.0,
        }
    }

    /// Thermal interface paste.
    #[must_use]
    pub fn thermal_paste() -> Self {
        Material {
            name: "thermal paste",
            conductivity: 8.0,
            density: 2500.0,
            specific_heat: 1000.0,
        }
    }

    /// Alumina ceramic (TEG face plates).
    #[must_use]
    pub fn alumina() -> Self {
        Material {
            name: "alumina",
            conductivity: 30.0,
            density: 3950.0,
            specific_heat: 880.0,
        }
    }

    /// Liquid water (coolant).
    #[must_use]
    pub fn water() -> Self {
        Material {
            name: "water",
            conductivity: 0.6,
            density: 1000.0,
            specific_heat: 4200.0,
        }
    }
}

/// A rectangular slab of material with one-dimensional heat flow
/// through its thickness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slab {
    material: Material,
    /// Face area, m².
    area: f64,
    /// Thickness along the heat-flow axis, m.
    thickness: f64,
}

impl Slab {
    /// Creates a slab.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NonPositiveParameter`] for a
    /// non-positive area or thickness.
    pub fn new(material: Material, area_m2: f64, thickness_m: f64) -> Result<Self, ThermalError> {
        for (name, value) in [("area", area_m2), ("thickness", thickness_m)] {
            if !(value > 0.0) {
                return Err(ThermalError::NonPositiveParameter { name, value });
            }
        }
        Ok(Slab {
            material,
            area: area_m2,
            thickness: thickness_m,
        })
    }

    /// Convenience constructor in centimetres.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn from_cm(
        material: Material,
        width_cm: f64,
        depth_cm: f64,
        thickness_cm: f64,
    ) -> Result<Self, ThermalError> {
        Slab::new(material, width_cm * depth_cm * 1e-4, thickness_cm * 1e-2)
    }

    /// The material.
    #[must_use]
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// Conductive thermal resistance through the thickness,
    /// `R = L / (λ·A)` in K/W.
    #[must_use]
    pub fn resistance(&self) -> f64 {
        self.thickness / (self.material.conductivity * self.area)
    }

    /// Lumped heat capacity, `C = ρ·V·c_p` in J/K.
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.material.density * self.area * self.thickness * self.material.specific_heat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teg_resistance_derives_from_geometry() {
        // SP 1848-27145: 40 mm x 40 mm, ~3.5 mm of Bi2Te3 legs (with
        // fill factor folded into the effective thickness). The slab
        // derivation must land on the spec's 1.45 K/W within ~20 %.
        let teg = Slab::from_cm(Material::bismuth_telluride(), 4.0, 4.0, 0.35).unwrap();
        let r = teg.resistance();
        assert!((1.1..=1.8).contains(&r), "r = {r}");
    }

    #[test]
    fn paste_joint_is_far_more_conductive_than_teg() {
        // The Fig. 3 asymmetry from first principles: a 0.1 mm paste
        // joint vs a TEG in the same 4 cm x 4 cm footprint.
        let paste = Slab::from_cm(Material::thermal_paste(), 4.0, 4.0, 0.01).unwrap();
        let teg = Slab::from_cm(Material::bismuth_telluride(), 4.0, 4.0, 0.35).unwrap();
        assert!(teg.resistance() > 100.0 * paste.resistance());
    }

    #[test]
    fn copper_plate_capacity_scale() {
        // A 4 cm x 24 cm x 1 cm copper cold plate: C = rho*V*c ≈ 331 J/K.
        let plate = Slab::from_cm(Material::copper(), 4.0, 24.0, 1.0).unwrap();
        assert!(
            (plate.capacity() - 331.0).abs() < 5.0,
            "{}",
            plate.capacity()
        );
    }

    #[test]
    fn resistance_scales_inversely_with_area() {
        let thin = Slab::from_cm(Material::silicon(), 2.0, 2.0, 0.1).unwrap();
        let wide = Slab::from_cm(Material::silicon(), 4.0, 4.0, 0.1).unwrap();
        assert!((thin.resistance() / wide.resistance() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn conductivity_ordering_is_physical() {
        let materials = [
            Material::water(),
            Material::bismuth_telluride(),
            Material::thermal_paste(),
            Material::alumina(),
            Material::silicon(),
            Material::aluminum(),
            Material::copper(),
        ];
        for pair in materials.windows(2) {
            assert!(
                pair[0].conductivity < pair[1].conductivity,
                "{} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn validation() {
        assert!(Slab::new(Material::copper(), 0.0, 0.1).is_err());
        assert!(Slab::new(Material::copper(), 0.1, -1.0).is_err());
    }
}
