//! Counterflow liquid-liquid heat exchanger (effectiveness-NTU method).
//!
//! In the paper's architecture (Fig. 1) the coolant distribution unit
//! (CDU) separates the technology cooling system (TCS) from the facility
//! water system (FWS) with a liquid-to-liquid heat exchanger; the warm
//! TCS coolant also rejects heat to the FWS *after* flowing through the
//! TEG modules. The effectiveness-NTU method computes the transferred
//! heat for given inlet conditions without iterating on outlet
//! temperatures.

use crate::ThermalError;
use h2p_units::{Celsius, KgPerSecond, Watts};

/// One side of a heat exchanger: a liquid stream with a mass flow and an
/// inlet temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stream {
    /// Mass flow of the stream.
    pub mass_flow: KgPerSecond,
    /// Inlet temperature of the stream.
    pub inlet: Celsius,
}

impl Stream {
    /// Creates a stream.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NonPositiveParameter`] if the mass flow is
    /// not strictly positive.
    pub fn new(mass_flow: KgPerSecond, inlet: Celsius) -> Result<Self, ThermalError> {
        if !(mass_flow.value() > 0.0) {
            return Err(ThermalError::NonPositiveParameter {
                name: "mass_flow",
                value: mass_flow.value(),
            });
        }
        Ok(Stream { mass_flow, inlet })
    }
}

/// Result of passing two streams through an exchanger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangerOutcome {
    /// Heat moved from the hot to the cold stream (non-negative).
    pub heat_transferred: Watts,
    /// Hot-side outlet temperature.
    pub hot_outlet: Celsius,
    /// Cold-side outlet temperature.
    pub cold_outlet: Celsius,
    /// Effectiveness ε ∈ \[0, 1\] actually achieved.
    pub effectiveness: f64,
}

/// A counterflow heat exchanger characterized by its UA product (W/K).
///
/// ```
/// use h2p_thermal::{CounterflowExchanger, Stream};
/// use h2p_units::{Celsius, LitersPerHour};
///
/// let hx = CounterflowExchanger::new(500.0)?;
/// let hot = Stream::new(LitersPerHour::new(200.0).mass_flow(), Celsius::new(50.0))?;
/// let cold = Stream::new(LitersPerHour::new(400.0).mass_flow(), Celsius::new(20.0))?;
/// let out = hx.exchange(hot, cold);
/// assert!(out.hot_outlet < Celsius::new(50.0));
/// assert!(out.cold_outlet > Celsius::new(20.0));
/// # Ok::<(), h2p_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterflowExchanger {
    ua: f64,
}

impl CounterflowExchanger {
    /// Creates an exchanger with overall conductance `ua` (W/K).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NonPositiveParameter`] if `ua` is not
    /// strictly positive.
    pub fn new(ua: f64) -> Result<Self, ThermalError> {
        if !(ua > 0.0) {
            return Err(ThermalError::NonPositiveParameter {
                name: "ua",
                value: ua,
            });
        }
        Ok(CounterflowExchanger { ua })
    }

    /// The UA product in W/K.
    #[must_use]
    pub fn ua(&self) -> f64 {
        self.ua
    }

    /// Effectiveness of a counterflow exchanger with capacity-rate ratio
    /// `cr = Cmin/Cmax` and `ntu = UA/Cmin`.
    #[must_use]
    pub fn effectiveness(ntu: f64, cr: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&cr));
        if (cr - 1.0).abs() < 1e-12 {
            ntu / (1.0 + ntu)
        } else {
            let e = (-ntu * (1.0 - cr)).exp();
            (1.0 - e) / (1.0 - cr * e)
        }
    }

    /// Computes the exchange between a hot and a cold stream. If the
    /// "hot" stream is actually colder than the "cold" one, heat flows
    /// the other way (negative `heat_transferred` is never produced —
    /// the streams are relabeled internally and outlets stay physical).
    #[must_use]
    pub fn exchange(&self, hot: Stream, cold: Stream) -> ExchangerOutcome {
        let (hot, cold, flipped) = if hot.inlet >= cold.inlet {
            (hot, cold, false)
        } else {
            (cold, hot, true)
        };
        let c_hot = hot.mass_flow.capacity_rate();
        let c_cold = cold.mass_flow.capacity_rate();
        let c_min = c_hot.min(c_cold);
        let c_max = c_hot.max(c_cold);
        let ntu = self.ua / c_min;
        let eff = Self::effectiveness(ntu, c_min / c_max);
        let q_max = c_min * (hot.inlet - cold.inlet).value();
        let q = eff * q_max;
        let hot_outlet = hot.inlet - h2p_units::DegC::new(q / c_hot);
        let cold_outlet = cold.inlet + h2p_units::DegC::new(q / c_cold);
        if flipped {
            ExchangerOutcome {
                heat_transferred: Watts::new(q),
                hot_outlet: cold_outlet,
                cold_outlet: hot_outlet,
                effectiveness: eff,
            }
        } else {
            ExchangerOutcome {
                heat_transferred: Watts::new(q),
                hot_outlet,
                cold_outlet,
                effectiveness: eff,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_units::LitersPerHour;

    fn stream(flow_lph: f64, inlet: f64) -> Stream {
        Stream::new(
            LitersPerHour::new(flow_lph).mass_flow(),
            Celsius::new(inlet),
        )
        .unwrap()
    }

    #[test]
    fn energy_balance_holds() {
        let hx = CounterflowExchanger::new(300.0).unwrap();
        let hot = stream(150.0, 52.0);
        let cold = stream(300.0, 20.0);
        let out = hx.exchange(hot, cold);
        let q_hot = hot.mass_flow.capacity_rate() * (hot.inlet - out.hot_outlet).value();
        let q_cold = cold.mass_flow.capacity_rate() * (out.cold_outlet - cold.inlet).value();
        assert!((q_hot - out.heat_transferred.value()).abs() < 1e-9);
        assert!((q_cold - out.heat_transferred.value()).abs() < 1e-9);
    }

    #[test]
    fn outlets_bracketed_by_inlets() {
        let hx = CounterflowExchanger::new(800.0).unwrap();
        let out = hx.exchange(stream(100.0, 50.0), stream(100.0, 20.0));
        assert!(out.hot_outlet.value() > 20.0 && out.hot_outlet.value() < 50.0);
        assert!(out.cold_outlet.value() > 20.0 && out.cold_outlet.value() < 50.0);
        assert!(out.effectiveness > 0.0 && out.effectiveness < 1.0);
    }

    #[test]
    fn effectiveness_increases_with_ua() {
        let hot = stream(100.0, 50.0);
        let cold = stream(100.0, 20.0);
        let mut prev = 0.0;
        for ua in [50.0, 100.0, 200.0, 400.0, 800.0] {
            let out = CounterflowExchanger::new(ua).unwrap().exchange(hot, cold);
            assert!(out.effectiveness > prev);
            prev = out.effectiveness;
        }
    }

    #[test]
    fn balanced_counterflow_formula() {
        // cr == 1: eps = NTU / (1 + NTU).
        let eff = CounterflowExchanger::effectiveness(2.0, 1.0);
        assert!((eff - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_ua_approaches_max_heat() {
        let hx = CounterflowExchanger::new(1e9).unwrap();
        let hot = stream(100.0, 50.0);
        let cold = stream(200.0, 20.0);
        let out = hx.exchange(hot, cold);
        // Cmin is hot side; hot outlet approaches cold inlet.
        assert!((out.hot_outlet.value() - 20.0).abs() < 1e-3);
    }

    #[test]
    fn reversed_labels_still_physical() {
        let hx = CounterflowExchanger::new(300.0).unwrap();
        // "hot" is actually the colder stream.
        let out = hx.exchange(stream(100.0, 20.0), stream(100.0, 50.0));
        assert!(out.heat_transferred.value() > 0.0);
        // The stream labelled hot warms up, the one labelled cold cools.
        assert!(out.hot_outlet.value() > 20.0);
        assert!(out.cold_outlet.value() < 50.0);
    }

    #[test]
    fn zero_temperature_difference_transfers_nothing() {
        let hx = CounterflowExchanger::new(300.0).unwrap();
        let out = hx.exchange(stream(100.0, 30.0), stream(100.0, 30.0));
        assert!(out.heat_transferred.value().abs() < 1e-12);
        assert_eq!(out.hot_outlet, Celsius::new(30.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(CounterflowExchanger::new(0.0).is_err());
        assert!(Stream::new(KgPerSecond::new(0.0), Celsius::new(20.0)).is_err());
    }
}
