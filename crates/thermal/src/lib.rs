//! Lumped-parameter thermal simulation substrate.
//!
//! The paper's measurements (Sec. IV) were taken on a physical prototype:
//! a CPU pressed by a cold plate, coolant loops, TEG modules sandwiched
//! between warm and cold plates. This crate provides the simulation
//! substrate that stands in for that hardware:
//!
//! * [`network`] — general RC thermal networks (capacitive nodes,
//!   conductive edges, fixed-temperature boundaries, heat sources) with a
//!   stability-aware explicit transient solver and a steady-state solver.
//!   Used for the Fig. 3 transient experiment (TEG between die and cold
//!   plate) and for the virtual prototype.
//! * [`coldplate`] — flow-dependent convective resistance of a cold
//!   plate, the `R(f)` behind Fig. 11's flow sensitivity.
//! * [`heat_exchanger`] — counterflow liquid-liquid heat exchanger
//!   (effectiveness-NTU), the CDU between the TCS and FWS loops (Fig. 1);
//! * [`materials`] — material data and slab geometry, from which the
//!   lumped resistances/capacities used elsewhere are derived.
//!
//! # Examples
//!
//! Steady state of a die heated at 80 W through a 0.25 K/W path to 45 °C
//! coolant:
//!
//! ```
//! use h2p_thermal::network::ThermalNetwork;
//! use h2p_units::{Celsius, Watts};
//!
//! let mut net = ThermalNetwork::new();
//! let die = net.add_capacitive("die", 150.0, Celsius::new(45.0));
//! let coolant = net.add_boundary("coolant", Celsius::new(45.0));
//! net.connect(die, coolant, 4.0); // 4 W/K == 0.25 K/W
//! net.set_heat_input(die, Watts::new(80.0));
//! let t = net.steady_state()?;
//! assert!((t.temperature(die).value() - 65.0).abs() < 1e-9);
//! # Ok::<(), h2p_thermal::ThermalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used as a deliberate NaN-rejecting validation idiom
// throughout (NaN fails the guard, unlike `x <= 0.0`).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

pub mod coldplate;
pub mod heat_exchanger;
pub mod materials;
pub mod network;

pub use coldplate::ColdPlate;
pub use heat_exchanger::{CounterflowExchanger, ExchangerOutcome, Stream};
pub use materials::{Material, Slab};
pub use network::{NodeId, SteadyState, ThermalNetwork};

use core::fmt;

/// Errors from the thermal substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A node id referenced a different network or was out of range.
    UnknownNode {
        /// The raw index.
        index: usize,
    },
    /// The steady-state system is singular: some capacitive node has no
    /// conductive path to any boundary.
    Floating {
        /// Label of (one of) the floating node(s), if identifiable.
        label: String,
    },
    /// An edge would connect a node to itself.
    SelfLoop {
        /// The raw index.
        index: usize,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::NonPositiveParameter { name, value } => {
                write!(f, "parameter {name} must be positive, got {value}")
            }
            ThermalError::UnknownNode { index } => write!(f, "unknown node index {index}"),
            ThermalError::Floating { label } => {
                write!(f, "node {label} has no path to a thermal boundary")
            }
            ThermalError::SelfLoop { index } => {
                write!(f, "edge would connect node {index} to itself")
            }
        }
    }
}

impl std::error::Error for ThermalError {}
