//! RC thermal networks with transient and steady-state solvers.
//!
//! A network is a graph of *capacitive* nodes (finite heat capacity,
//! evolving temperature), *boundary* nodes (fixed temperature — a coolant
//! stream or an ambient), conductive edges (W/K) and per-node heat
//! sources (W). This is the textbook lumped-parameter abstraction of the
//! paper's prototype: CPU die, thermal paste, cold plate, TEG ceramic
//! plates and coolant are each one node.

use crate::ThermalError;
use h2p_units::{Celsius, Joules, Seconds, Watts};

/// Handle to a node inside a [`ThermalNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The raw index (stable for the lifetime of the network).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, PartialEq)]
enum NodeKind {
    /// Finite heat capacity in J/K.
    Capacitive { capacity: f64 },
    /// Fixed-temperature boundary.
    Boundary,
}

#[derive(Debug, Clone)]
struct Node {
    label: String,
    kind: NodeKind,
    temperature: Celsius,
    heat_input: Watts,
    /// Adjacency: (other node, conductance W/K).
    edges: Vec<(usize, f64)>,
}

/// Energy bookkeeping for one [`ThermalNetwork::step`] call.
///
/// Forward Euler conserves energy exactly per substep, so
/// `source_input - boundary_outflow == stored_delta` up to rounding;
/// the property tests assert this.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepReport {
    /// Heat injected by sources over the step.
    pub source_input: Joules,
    /// Net heat pushed into boundary nodes over the step.
    pub boundary_outflow: Joules,
    /// Change in energy stored in capacitive nodes over the step.
    pub stored_delta: Joules,
    /// Number of internal substeps taken.
    pub substeps: usize,
}

/// A steady-state solution of a network (temperatures only).
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyState {
    temperatures: Vec<Celsius>,
}

impl SteadyState {
    /// Temperature of a node in the solution.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the solved network.
    #[must_use]
    pub fn temperature(&self, id: NodeId) -> Celsius {
        self.temperatures[id.0]
    }
}

/// A lumped-parameter thermal network.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct ThermalNetwork {
    nodes: Vec<Node>,
}

impl ThermalNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a capacitive node with heat capacity `capacity_j_per_k` (J/K)
    /// at an initial temperature.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j_per_k` is not strictly positive.
    pub fn add_capacitive(
        &mut self,
        label: impl Into<String>,
        capacity_j_per_k: f64,
        initial: Celsius,
    ) -> NodeId {
        assert!(
            capacity_j_per_k > 0.0,
            "heat capacity must be positive, got {capacity_j_per_k}"
        );
        self.push(Node {
            label: label.into(),
            kind: NodeKind::Capacitive {
                capacity: capacity_j_per_k,
            },
            temperature: initial,
            heat_input: Watts::zero(),
            edges: Vec::new(),
        })
    }

    /// Adds a fixed-temperature boundary node.
    pub fn add_boundary(&mut self, label: impl Into<String>, temperature: Celsius) -> NodeId {
        self.push(Node {
            label: label.into(),
            kind: NodeKind::Boundary,
            temperature,
            heat_input: Watts::zero(),
            edges: Vec::new(),
        })
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Connects two nodes with a conductance in W/K (the reciprocal of a
    /// thermal resistance in K/W). Parallel edges add.
    ///
    /// # Panics
    ///
    /// Panics if the conductance is not strictly positive, a node id is
    /// foreign, or `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, conductance_w_per_k: f64) {
        assert!(
            conductance_w_per_k > 0.0,
            "conductance must be positive, got {conductance_w_per_k}"
        );
        assert!(
            a.0 < self.nodes.len() && b.0 < self.nodes.len(),
            "unknown node"
        );
        assert_ne!(a, b, "self loops are not allowed");
        self.nodes[a.0].edges.push((b.0, conductance_w_per_k));
        self.nodes[b.0].edges.push((a.0, conductance_w_per_k));
    }

    /// Connects two nodes by a thermal *resistance* in K/W.
    ///
    /// # Panics
    ///
    /// As for [`connect`](Self::connect); additionally if
    /// `resistance_k_per_w` is not strictly positive.
    pub fn connect_resistance(&mut self, a: NodeId, b: NodeId, resistance_k_per_w: f64) {
        assert!(
            resistance_k_per_w > 0.0,
            "resistance must be positive, got {resistance_k_per_w}"
        );
        self.connect(a, b, 1.0 / resistance_k_per_w);
    }

    /// Sets the heat injected into a node (W). Replaces any previous value.
    ///
    /// # Panics
    ///
    /// Panics on a foreign node id.
    pub fn set_heat_input(&mut self, id: NodeId, power: Watts) {
        self.nodes[id.0].heat_input = power;
    }

    /// Re-pins a boundary node's temperature (e.g. the coolant warmed up).
    ///
    /// # Panics
    ///
    /// Panics if `id` is foreign or does not refer to a boundary node.
    pub fn set_boundary_temperature(&mut self, id: NodeId, temperature: Celsius) {
        let node = &mut self.nodes[id.0];
        assert!(
            matches!(node.kind, NodeKind::Boundary),
            "node {} is not a boundary",
            node.label
        );
        node.temperature = temperature;
    }

    /// Current temperature of a node.
    ///
    /// # Panics
    ///
    /// Panics on a foreign node id.
    #[must_use]
    pub fn temperature(&self, id: NodeId) -> Celsius {
        self.nodes[id.0].temperature
    }

    /// Label of a node.
    ///
    /// # Panics
    ///
    /// Panics on a foreign node id.
    #[must_use]
    pub fn label(&self, id: NodeId) -> &str {
        &self.nodes[id.0].label
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Largest stable explicit substep: `min_i C_i / ΣG_i`, halved for
    /// margin. Returns `None` when there are no capacitive nodes.
    fn stable_substep(&self) -> Option<f64> {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Capacitive { capacity } => {
                    let g: f64 = n.edges.iter().map(|&(_, g)| g).sum();
                    if g > 0.0 {
                        Some(capacity / g)
                    } else {
                        None
                    }
                }
                NodeKind::Boundary => None,
            })
            .min_by(f64::total_cmp)
            .map(|tau| 0.5 * tau)
    }

    /// Advances the transient simulation by `dt` using forward Euler with
    /// automatic stability substepping, and returns the energy ledger.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn step(&mut self, dt: Seconds) -> StepReport {
        assert!(dt.value() >= 0.0, "dt must be non-negative");
        // NaN-safe zero/invalid rejection: NaN fails the `>` guard.
        if !(dt.value() > 0.0) || self.nodes.is_empty() {
            return StepReport::default();
        }
        let max_h = self.stable_substep().unwrap_or(dt.value());
        // h2p-lint: allow(L3): ceil().max(1.0) of a finite positive ratio
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let substeps = (dt.value() / max_h).ceil().max(1.0) as usize;
        let h = dt.value() / substeps as f64; // h2p-lint: allow(L3): substep count -> f64, exact

        let mut report = StepReport {
            substeps,
            ..StepReport::default()
        };
        let n = self.nodes.len();
        let mut flux = vec![0.0_f64; n]; // net W into each node
        for _ in 0..substeps {
            flux.fill(0.0);
            for (i, node) in self.nodes.iter().enumerate() {
                flux[i] += node.heat_input.value();
                for &(j, g) in &node.edges {
                    // Each undirected edge is stored twice; accumulate
                    // inflow from the neighbour only, so both directions
                    // are covered exactly once per node.
                    flux[i] += g * (self.nodes[j].temperature.value() - node.temperature.value());
                }
            }
            for (i, node) in self.nodes.iter_mut().enumerate() {
                match node.kind {
                    NodeKind::Capacitive { capacity } => {
                        let dtemp = flux[i] * h / capacity;
                        node.temperature += h2p_units::DegC::new(dtemp);
                        report.stored_delta += Joules::new(flux[i] * h);
                    }
                    NodeKind::Boundary => {
                        // Positive flux into a boundary is heat leaving
                        // the capacitive part of the system.
                        report.boundary_outflow += Joules::new(flux[i] * h);
                        // Sources attached directly to a boundary pass
                        // straight through; exclude them from outflow so
                        // the ledger reflects the capacitive system only.
                        report.boundary_outflow -= Joules::new(node.heat_input.value() * h);
                    }
                }
                if !matches!(node.kind, NodeKind::Boundary) {
                    report.source_input += Joules::new(node.heat_input.value() * h);
                }
            }
        }
        #[cfg(feature = "sanitize")]
        self.sanitize_temperatures("step");
        report
    }

    /// Physics sanitizer (the `sanitize` feature): every temperature a
    /// solver produces must be finite and inside the plausible coolant
    /// envelope of a warm water-cooled datacenter, [-50, 150] °C. A
    /// violation means a diverged integration or corrupted input, and
    /// panics in debug builds rather than letting NaN propagate into
    /// the TEG and TCO layers.
    #[cfg(feature = "sanitize")]
    fn sanitize_temperatures(&self, solver: &str) {
        for node in &self.nodes {
            let t = node.temperature.value();
            debug_assert!(
                t.is_finite() && (-50.0..=150.0).contains(&t),
                "sanitize: {solver} left node `{}` at {t} degC (finite, \
                 [-50, 150] expected)",
                node.label
            );
        }
    }

    /// Solves for the steady-state temperatures (all `dT/dt = 0`) without
    /// modifying the network.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Floating`] if some capacitive node has no
    /// conductive path to any boundary (the system is singular).
    pub fn steady_state(&self) -> Result<SteadyState, ThermalError> {
        // Unknowns: temperatures of capacitive nodes.
        let unknowns: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Capacitive { .. }))
            .map(|(i, _)| i)
            .collect();
        let index_of: std::collections::HashMap<usize, usize> = unknowns
            .iter()
            .enumerate()
            .map(|(row, &node)| (node, row))
            .collect();
        let m = unknowns.len();
        if m == 0 {
            return Ok(SteadyState {
                temperatures: self.nodes.iter().map(|n| n.temperature).collect(),
            });
        }
        let mut a = vec![vec![0.0_f64; m]; m];
        let mut b = vec![0.0_f64; m];
        for (row, &i) in unknowns.iter().enumerate() {
            let node = &self.nodes[i];
            b[row] = node.heat_input.value();
            for &(j, g) in &node.edges {
                a[row][row] += g;
                match self.nodes[j].kind {
                    NodeKind::Capacitive { .. } => {
                        let col = index_of[&j];
                        a[row][col] -= g;
                    }
                    NodeKind::Boundary => {
                        b[row] += g * self.nodes[j].temperature.value();
                    }
                }
            }
        }
        let solution = gauss_solve(a, b).map_err(|row| ThermalError::Floating {
            label: self.nodes[unknowns[row]].label.clone(),
        })?;
        let mut temperatures: Vec<Celsius> = self.nodes.iter().map(|n| n.temperature).collect();
        for (row, &i) in unknowns.iter().enumerate() {
            temperatures[i] = Celsius::new(solution[row]);
        }
        #[cfg(feature = "sanitize")]
        for (i, t) in temperatures.iter().enumerate() {
            let t = t.value();
            debug_assert!(
                t.is_finite() && (-50.0..=150.0).contains(&t),
                "sanitize: steady_state left node `{}` at {t} degC (finite, \
                 [-50, 150] expected)",
                self.nodes[i].label
            );
        }
        Ok(SteadyState { temperatures })
    }

    /// Solves the steady state and writes the temperatures back into the
    /// network (a cheap way to start a transient from equilibrium).
    ///
    /// # Errors
    ///
    /// As for [`steady_state`](Self::steady_state).
    pub fn settle(&mut self) -> Result<(), ThermalError> {
        let ss = self.steady_state()?;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.temperature = ss.temperatures[i];
        }
        Ok(())
    }
}

/// Gaussian elimination with partial pivoting; `Err(row)` reports the
/// pivot row that vanished (mapped to a floating-node diagnostic).
fn gauss_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, usize> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            // h2p-lint: allow(L2): col..n is non-empty for col < n
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(col);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col][col..].to_vec();
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if !(factor.abs() > 0.0) {
                // Exact zero: nothing to eliminate. (A NaN factor also
                // lands here; the row is already poisoned either way.)
                continue;
            }
            for (ark, &pk) in a[row][col..].iter_mut().zip(&pivot_row) {
                *ark -= factor * pk;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for (xk, ark) in x.iter().zip(&a[row]).skip(row + 1) {
            acc -= ark * xk;
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_units::DegC;

    fn simple_die() -> (ThermalNetwork, NodeId, NodeId) {
        let mut net = ThermalNetwork::new();
        let die = net.add_capacitive("die", 100.0, Celsius::new(40.0));
        let coolant = net.add_boundary("coolant", Celsius::new(40.0));
        net.connect_resistance(die, coolant, 0.25);
        (net, die, coolant)
    }

    #[test]
    fn steady_state_single_resistance() {
        let (mut net, die, coolant) = simple_die();
        net.set_heat_input(die, Watts::new(80.0));
        let ss = net.steady_state().unwrap();
        // T = T_coolant + P*R = 40 + 20.
        assert!((ss.temperature(die).value() - 60.0).abs() < 1e-9);
        assert_eq!(ss.temperature(coolant), Celsius::new(40.0));
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let (mut net, die, _) = simple_die();
        net.set_heat_input(die, Watts::new(80.0));
        // tau = C*R = 25 s; run 24 tau so even the discrete fixed-point
        // iteration has fully converged.
        for _ in 0..600 {
            net.step(Seconds::new(1.0));
        }
        assert!((net.temperature(die).value() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn transient_exponential_shape() {
        let (mut net, die, _) = simple_die();
        net.set_heat_input(die, Watts::new(80.0));
        // One time constant in fine steps; first-order Euler tracks the
        // analytic exponential to well under a degree at h = tau/250.
        for _ in 0..250 {
            net.step(Seconds::new(0.1));
        }
        let expected = 40.0 + 20.0 * (1.0 - (-1.0_f64).exp());
        assert!(
            (net.temperature(die).value() - expected).abs() < 0.1,
            "got {}",
            net.temperature(die)
        );
    }

    #[test]
    fn energy_ledger_balances() {
        let (mut net, die, _) = simple_die();
        net.set_heat_input(die, Watts::new(80.0));
        let report = net.step(Seconds::new(10.0));
        let residual = report.source_input - report.boundary_outflow - report.stored_delta;
        assert!(
            residual.value().abs() < 1e-9 * report.source_input.value().max(1.0),
            "ledger residual {residual:?}"
        );
        assert!(report.substeps >= 1);
    }

    #[test]
    fn two_stage_chain_superposition() {
        // die -R1- plate -R2- coolant: T_die = T_c + P*(R1+R2).
        let mut net = ThermalNetwork::new();
        let die = net.add_capacitive("die", 50.0, Celsius::new(30.0));
        let plate = net.add_capacitive("plate", 200.0, Celsius::new(30.0));
        let coolant = net.add_boundary("coolant", Celsius::new(30.0));
        net.connect_resistance(die, plate, 0.1);
        net.connect_resistance(plate, coolant, 0.15);
        net.set_heat_input(die, Watts::new(60.0));
        let ss = net.steady_state().unwrap();
        assert!((ss.temperature(die).value() - (30.0 + 60.0 * 0.25)).abs() < 1e-9);
        assert!((ss.temperature(plate).value() - (30.0 + 60.0 * 0.15)).abs() < 1e-9);
    }

    #[test]
    fn floating_node_detected() {
        let mut net = ThermalNetwork::new();
        let lonely = net.add_capacitive("lonely", 10.0, Celsius::new(20.0));
        net.set_heat_input(lonely, Watts::new(1.0));
        match net.steady_state() {
            Err(ThermalError::Floating { label }) => assert_eq!(label, "lonely"),
            other => panic!("expected Floating, got {other:?}"),
        }
    }

    #[test]
    fn settle_writes_back() {
        let (mut net, die, _) = simple_die();
        net.set_heat_input(die, Watts::new(80.0));
        net.settle().unwrap();
        assert!((net.temperature(die).value() - 60.0).abs() < 1e-9);
        // After settling, a step changes nothing.
        net.step(Seconds::new(5.0));
        assert!((net.temperature(die).value() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn boundary_update_shifts_equilibrium() {
        let (mut net, die, coolant) = simple_die();
        net.set_heat_input(die, Watts::new(80.0));
        net.set_boundary_temperature(coolant, Celsius::new(50.0));
        let ss = net.steady_state().unwrap();
        assert!((ss.temperature(die).value() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_edges_add_conductance() {
        let mut net = ThermalNetwork::new();
        let die = net.add_capacitive("die", 10.0, Celsius::new(0.0));
        let sink = net.add_boundary("sink", Celsius::new(0.0));
        net.connect(die, sink, 2.0);
        net.connect(die, sink, 2.0);
        net.set_heat_input(die, Watts::new(8.0));
        let ss = net.steady_state().unwrap();
        assert!((ss.temperature(die).value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn step_with_zero_dt_is_noop() {
        let (mut net, die, _) = simple_die();
        let before = net.temperature(die);
        let report = net.step(Seconds::new(0.0));
        assert_eq!(net.temperature(die), before);
        assert_eq!(report.substeps, 0);
    }

    #[test]
    fn cooling_transient_decays() {
        let (mut net, die, _) = simple_die();
        // Start hot with no input; must decay toward coolant temperature.
        net.set_heat_input(die, Watts::zero());
        net.set_boundary_temperature(NodeId(1), Celsius::new(20.0));
        // Die starts at 40.
        let mut prev = net.temperature(die).value();
        for _ in 0..100 {
            net.step(Seconds::new(1.0));
            let now = net.temperature(die).value();
            assert!(now <= prev + 1e-12);
            prev = now;
        }
        assert!((prev - 20.0).abs() < 0.5);
    }

    #[test]
    fn labels_and_sizes() {
        let (net, die, coolant) = simple_die();
        assert_eq!(net.label(die), "die");
        assert_eq!(net.label(coolant), "coolant");
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
        assert_eq!(die.index(), 0);
    }

    #[test]
    fn delta_type_roundtrip() {
        // DegC used internally for increments behaves linearly.
        let t = Celsius::new(10.0) + DegC::new(5.0) - DegC::new(3.0);
        assert_eq!(t, Celsius::new(12.0));
    }
}
