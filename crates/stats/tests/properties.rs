//! Property-based tests of the numeric substrate.

// Test/bench code opts back into panicking unwraps (see [workspace.lints]).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use h2p_stats::{erf, erfc, fit, inverse_normal_cdf, order_stats, quadrature, Normal};
use proptest::prelude::*;

proptest! {
    #[test]
    fn erf_is_odd_and_bounded(x in -6.0..6.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erf_is_monotone(a in -6.0..6.0f64, b in -6.0..6.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(erf(lo) <= erf(hi) + 1e-15);
    }

    #[test]
    fn probit_roundtrip(p in 1e-6..0.999_999f64) {
        let x = inverse_normal_cdf(p);
        let back = Normal::standard().cdf(x);
        prop_assert!((back - p).abs() < 1e-7, "p {p}, back {back}");
    }

    #[test]
    fn normal_cdf_monotone_and_bounded(
        mu in -100.0..100.0f64,
        sigma in 0.01..50.0f64,
        a in -500.0..500.0f64,
        b in -500.0..500.0f64,
    ) {
        let n = Normal::new(mu, sigma).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-15);
        prop_assert!((0.0..=1.0).contains(&n.cdf(a)));
        prop_assert!(n.pdf(a) >= 0.0);
    }

    #[test]
    fn simpson_exact_on_cubics(
        c0 in -5.0..5.0f64,
        c1 in -5.0..5.0f64,
        c2 in -5.0..5.0f64,
        c3 in -5.0..5.0f64,
        a in -5.0..0.0f64,
        b in 0.0..5.0f64,
    ) {
        let f = |x: f64| c0 + c1 * x + c2 * x * x + c3 * x * x * x;
        let integral = quadrature::simpson(f, a, b, 16);
        let antider = |x: f64| c0 * x + c1 * x * x / 2.0 + c2 * x * x * x / 3.0 + c3 * x.powi(4) / 4.0;
        let exact = antider(b) - antider(a);
        prop_assert!((integral - exact).abs() < 1e-8 * exact.abs().max(1.0));
    }

    #[test]
    fn adaptive_matches_fixed_grid(a in -3.0..0.0f64, b in 0.0..3.0f64) {
        let f = |x: f64| (x * 1.3).sin() + 0.2 * x;
        let fixed = quadrature::simpson(f, a, b, 4000);
        let adaptive = quadrature::adaptive_simpson(f, a, b, 1e-10);
        prop_assert!((fixed - adaptive).abs() < 1e-7);
    }

    #[test]
    fn polyfit_recovers_random_quadratics(
        c0 in -10.0..10.0f64,
        c1 in -10.0..10.0f64,
        c2 in -10.0..10.0f64,
    ) {
        let xs: Vec<f64> = (0..25).map(|i| i as f64 * 0.4 - 5.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let p = fit::polyfit(&xs, &ys, 2).unwrap();
        prop_assert!((p.coefficients()[0] - c0).abs() < 1e-6);
        prop_assert!((p.coefficients()[1] - c1).abs() < 1e-6);
        prop_assert!((p.coefficients()[2] - c2).abs() < 1e-6);
    }

    #[test]
    fn linear_fit_residual_orthogonality(
        slope in -10.0..10.0f64,
        intercept in -10.0..10.0f64,
        noise_scale in 0.0..1.0f64,
    ) {
        // Least squares: residuals sum to ~0 for any fit with intercept.
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| slope * x + intercept + noise_scale * ((i * 37 % 11) as f64 - 5.0))
            .collect();
        let (a, b) = fit::linear_fit(&xs, &ys).unwrap();
        let residual_sum: f64 = xs.iter().zip(&ys).map(|(&x, &y)| y - (a * x + b)).sum();
        prop_assert!(residual_sum.abs() < 1e-6 * ys.len() as f64);
    }

    #[test]
    fn expected_max_monotone_in_n(
        mu in -50.0..80.0f64,
        sigma in 0.1..10.0f64,
        n in 1usize..200,
    ) {
        let d = Normal::new(mu, sigma).unwrap();
        let a = order_stats::expected_max(d, n);
        let b = order_stats::expected_max(d, n + 1);
        prop_assert!(b >= a - 1e-6, "n {n}: {a} vs {b}");
    }

    #[test]
    fn max_cdf_dominates_base_cdf(
        x in -10.0..10.0f64,
        n in 2usize..100,
    ) {
        // P(max <= x) = F^n(x) <= F(x).
        let d = Normal::standard();
        prop_assert!(order_stats::max_cdf(d, n, x) <= d.cdf(x) + 1e-15);
    }

    #[test]
    fn max_quantile_consistent(p in 0.01..0.99f64, n in 1usize..100) {
        let d = Normal::new(10.0, 2.0).unwrap();
        let x = order_stats::max_quantile(d, n, p);
        prop_assert!((order_stats::max_cdf(d, n, x) - p).abs() < 1e-7);
    }
}
