//! Error function and inverse normal CDF.
//!
//! `std` does not ship `erf`, so we implement it here near machine
//! precision: a Maclaurin series for small arguments and the classical
//! continued-fraction expansion of `erfc` (evaluated by the modified
//! Lentz algorithm) for large ones. The inverse uses Peter Acklam's
//! rational approximation followed by one step of Halley refinement.

/// Crossover between the series and the continued-fraction branches.
const ERF_SERIES_CUTOFF: f64 = 2.0;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Accurate to roughly machine precision over the whole real line.
///
/// ```
/// use h2p_stats::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-13);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-13);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    let z = x.abs();
    let val = if z < ERF_SERIES_CUTOFF {
        erf_series(z)
    } else {
        1.0 - erfc_cf(z)
    };
    if x < 0.0 {
        -val
    } else {
        val
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Accurate in the tails where `1 − erf(x)` would cancel.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let tail = if z < ERF_SERIES_CUTOFF {
        1.0 - erf_series(z)
    } else {
        erfc_cf(z)
    };
    if x < 0.0 {
        2.0 - tail
    } else {
        tail
    }
}

/// Maclaurin series `erf(z) = 2/√π Σ (−1)ⁿ z^{2n+1}/(n!(2n+1))`, `z ≥ 0`
/// and small.
fn erf_series(z: f64) -> f64 {
    if z == 0.0 {
        return 0.0;
    }
    let z2 = z * z;
    let mut term = z; // z^(2n+1) * (-1)^n / n!
    let mut sum = z; // running Σ term / (2n+1), n = 0 term folded in
    let mut n = 1.0;
    loop {
        term *= -z2 / n;
        let delta = term / (2.0 * n + 1.0);
        sum += delta;
        if delta.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
        n += 1.0;
        debug_assert!(n < 200.0, "erf series failed to converge");
    }
    core::f64::consts::FRAC_2_SQRT_PI * sum
}

/// Continued fraction for `erfc(z)`, `z ≥ 2`, via modified Lentz:
/// `erfc(z) = e^{−z²}/√π · 1/(z + 1/2/(z + 2/2/(z + …)))`.
fn erfc_cf(z: f64) -> f64 {
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-16;
    // Continued fraction K = z + (1/2)/(z + 1/(z + (3/2)/(z + ...))),
    // i.e. b_j = z and a_j = j/2; then erfc(z) = e^{−z²}/√π · 1/K.
    let mut f = z;
    let mut c = z;
    let mut d = 0.0;
    for j in 1..200 {
        let a = f64::from(j) / 2.0;
        d = z + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = z + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-z * z).exp() / core::f64::consts::PI.sqrt() / f
}

/// Inverse of the standard normal CDF (the probit function).
///
/// `inverse_normal_cdf(Φ(x)) == x` to ~1e-9 over `p ∈ (0, 1)`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
#[must_use]
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");

    // Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the accurate erfc-based CDF.
    let e = standard_cdf(x) - p;
    let u = e * (2.0 * core::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Standard normal CDF `Φ(x)` via [`erfc`].
#[must_use]
pub(crate) fn standard_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / core::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (1.5, 0.966_105_146_4),
            (2.0, 0.995_322_265_0),
            (3.0, 0.999_977_909_5),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_tail_positive_and_decreasing() {
        let mut prev = erfc(2.0);
        for i in 21..60 {
            let v = erfc(i as f64 * 0.1);
            assert!(v > 0.0);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn probit_inverts_cdf() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = inverse_normal_cdf(p);
            assert!((standard_cdf(x) - p).abs() < 1e-8, "p = {p}");
        }
    }

    #[test]
    fn probit_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.025) + 1.959_963_985).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn probit_rejects_zero() {
        let _ = inverse_normal_cdf(0.0);
    }
}
