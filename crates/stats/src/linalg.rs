//! Small dense linear solves for least-squares normal equations.

use crate::StatsError;

/// Solves `A x = b` in place by Gaussian elimination with partial
/// pivoting. `a` is row-major `n × n`.
///
/// Returns `Err(StatsError::SingularSystem)` when a pivot is (near) zero.
pub(crate) fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, StatsError> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|r| r.len() == n));
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            // h2p-lint: allow(L2): col..n is non-empty for col < n
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(StatsError::SingularSystem);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col][col..].to_vec();
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for (ark, &pk) in a[row][col..].iter_mut().zip(&pivot_row) {
                *ark -= factor * pk;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for (xk, ark) in x.iter().zip(&a[row]).skip(row + 1) {
            acc -= ark * xk;
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, -2.0]).unwrap();
        assert_eq!(x, vec![3.0, -2.0]);
    }

    #[test]
    fn solves_3x3() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(a, vec![8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the diagonal; succeeds only with row swaps.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(solve(a, vec![1.0, 2.0]), Err(StatsError::SingularSystem));
    }
}
