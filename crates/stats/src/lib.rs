//! Numeric substrate for the H2P reproduction.
//!
//! The paper's water-circulation design study (Sec. V-A) relies on the
//! order statistics of normally distributed CPU temperatures (Eqs. 13-18),
//! and its empirical models (Eqs. 3, 6, 20) are least-squares fits to
//! prototype measurements. Rather than pulling in a numerics stack, this
//! crate implements exactly the pieces the reproduction needs:
//!
//! * [`erf`]/[`erfc`] and an inverse normal CDF,
//! * the [`Normal`] distribution (pdf/cdf/quantile),
//! * expected extreme order statistics of iid normal samples
//!   ([`order_stats`]),
//! * composite/adaptive Simpson quadrature ([`quadrature`]),
//! * dense least-squares polynomial and shifted-log fitting ([`fit`]),
//! * descriptive statistics ([`descriptive`]).
//!
//! # Examples
//!
//! ```
//! use h2p_stats::{Normal, order_stats};
//!
//! let n = Normal::new(55.0, 4.0)?;
//! // Expected hottest CPU among 40 servers sharing a circulation.
//! let hottest = order_stats::expected_max(n, 40);
//! assert!(hottest > 55.0 && hottest < 55.0 + 4.0 * 3.0);
//! # Ok::<(), h2p_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used as a deliberate NaN-rejecting validation idiom
// throughout (NaN fails the guard, unlike `x <= 0.0`).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Test code opts back into panicking asserts/unwraps (see [workspace.lints]).
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::float_cmp,
        clippy::cast_lossless,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

pub mod descriptive;
mod erf;
pub mod fit;
mod linalg;
mod normal;
pub mod order_stats;
pub mod quadrature;

pub use erf::{erf, erfc, inverse_normal_cdf};
pub use normal::Normal;

use core::fmt;

/// Errors produced by the statistics substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// A scale/shape parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Input slices had mismatched or insufficient length.
    BadInputLength {
        /// What was expected of the input.
        expected: &'static str,
        /// The actual length received.
        actual: usize,
    },
    /// A linear system was singular (collinear fit inputs).
    SingularSystem,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NonPositiveParameter { name, value } => {
                write!(f, "parameter {name} must be positive, got {value}")
            }
            StatsError::BadInputLength { expected, actual } => {
                write!(f, "bad input length: expected {expected}, got {actual}")
            }
            StatsError::SingularSystem => write!(f, "linear system is singular"),
        }
    }
}

impl std::error::Error for StatsError {}
