//! Numerical integration.
//!
//! The expectation integrals of the circulation-design study (paper
//! Eq. 17) have smooth, rapidly decaying integrands, for which composite
//! Simpson on a truncated interval is accurate and fast. An adaptive
//! variant is provided for integrands with localized features.

/// Composite Simpson's rule over `[a, b]` with `n` panels (`n` is rounded
/// up to the next even number).
///
/// # Panics
///
/// Panics if `n == 0` or `a > b`.
///
/// ```
/// use h2p_stats::quadrature::simpson;
/// let integral = simpson(|x| x * x, 0.0, 1.0, 64);
/// assert!((integral - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "panel count must be positive");
    assert!(a <= b, "integration bounds inverted");
    // NaN-safe degenerate-interval test (L5 idiom).
    if !((b - a).abs() > 0.0) {
        return 0.0;
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        sum += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    sum * h / 3.0
}

/// Adaptive Simpson integration to absolute tolerance `tol`.
///
/// # Panics
///
/// Panics if `tol <= 0` or `a > b`.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(tol > 0.0, "tolerance must be positive");
    assert!(a <= b, "integration bounds inverted");
    // NaN-safe degenerate-interval test (L5 idiom).
    if !((b - a).abs() > 0.0) {
        return 0.0;
    }
    let m = 0.5 * (a + b);
    let fa = f(a);
    let fb = f(b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    adaptive_step(&f, a, b, fa, fm, fb, whole, tol, 50)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_step<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive_step(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + adaptive_step(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
}

/// Trapezoid rule over tabulated, not-necessarily-uniform samples
/// `(x, y)`. Used to integrate measured/simulated time series (e.g.
/// turning a generated-power series into energy).
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than 2 points, or
/// if `x` is not strictly increasing.
#[must_use]
pub fn trapezoid_tabulated(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 2, "need at least two samples");
    let mut acc = 0.0;
    for i in 1..x.len() {
        let dx = x[i] - x[i - 1];
        assert!(dx > 0.0, "x must be strictly increasing");
        acc += 0.5 * dx * (y[i] + y[i - 1]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_exact_for_cubics() {
        // Simpson is exact for polynomials up to degree 3.
        let integral = simpson(|x| 2.0 * x * x * x - x + 1.0, -1.0, 2.0, 2);
        let exact = 0.5 * (16.0 - 1.0) - (2.0 - 0.5) + 3.0;
        assert!((integral - exact).abs() < 1e-12);
    }

    #[test]
    fn simpson_handles_odd_n_and_empty_interval() {
        let a = simpson(|x| x.sin(), 0.0, core::f64::consts::PI, 101);
        assert!((a - 2.0).abs() < 1e-6);
        assert_eq!(simpson(|x| x, 3.0, 3.0, 10), 0.0);
    }

    #[test]
    fn adaptive_matches_smooth_integral() {
        let v = adaptive_simpson(|x| (-x * x).exp(), -6.0, 6.0, 1e-10);
        assert!((v - core::f64::consts::PI.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn adaptive_peaked_integrand() {
        // Narrow Gaussian bump the fixed grid would need many panels for.
        let v = adaptive_simpson(|x| (-(x * 100.0).powi(2)).exp(), -1.0, 1.0, 1e-12);
        assert!((v - core::f64::consts::PI.sqrt() / 100.0).abs() < 1e-9);
    }

    #[test]
    fn trapezoid_linear_exact() {
        let x = [0.0, 1.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((trapezoid_tabulated(&x, &y) - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn trapezoid_rejects_unsorted() {
        let _ = trapezoid_tabulated(&[0.0, 0.0], &[1.0, 1.0]);
    }
}
